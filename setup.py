"""Setup shim so that editable installs work in offline environments."""

from setuptools import setup

setup()
