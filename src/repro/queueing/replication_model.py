"""Simulation of the Section 2.1 replication queueing model.

The model: ``N`` independent identical FIFO servers, Poisson arrivals, ``k``
copies of every arriving request enqueued at ``k`` distinct servers chosen
uniformly at random, request response time = minimum completion time across
its copies (plus any client-side overhead charged for processing the extra
copies).

Two implementations are provided and cross-validated in the tests:

* :meth:`ReplicatedQueueingModel.run_fast` — a vectorised Lindley-recursion
  simulation.  Because each server is FIFO and copies arrive in global
  arrival order, a single pass over copies in arrival order with a
  "server free at" vector reproduces the exact sample path; this is the
  implementation the threshold search and the benchmarks use.
* :meth:`ReplicatedQueueingModel.run_event_driven` — the same model expressed
  on the discrete-event engine (:mod:`repro.sim`), used to validate the fast
  path and as a template for the richer cluster/network simulators.

The ``load`` parameter follows the paper's convention: it is the *base*
utilisation of each server before replication (arrival rate per server times
mean service time).  With ``k`` eager copies each server's actual utilisation
is ``k * load``, so the model refuses ``k * load >= 1``.

Replication is described by a :class:`~repro.core.policy.ReplicationPolicy`
(``policy=``, accepting a policy object or a spec string such as ``"k2"`` or
``"hedge:p95"``); ``copies=k`` remains supported as sugar for the eager
``k``-copies policy and routes through the original vectorised pass, so its
results are byte-identical to the historical integer-``copies`` API.
Non-eager (hedging) policies take a generalised pass: each backup copy's
arrival at its server is offset by the policy's launch delay and is
*suppressed* when the request already completed before the delay expired —
the defining property of the hedged request.  The fast path never cancels a
launched copy (its Lindley bookkeeping cannot retract queued work);
:meth:`ReplicatedQueueingModel.run_event_driven` additionally honours
``cancel_on_win`` by withdrawing still-queued losing copies when the first
copy completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.stats import LatencySummary
from repro.core.policy import (
    PolicyLike,
    ReplicationPolicy,
    eager_copies,
    policy_to_spec,
    resolve_policy,
    simulate_hedged_arrivals,
)
from repro.distributions.base import Distribution
from repro.exceptions import CapacityError, ConfigurationError
from repro.metrics import LatencyRecorder
from repro.sim.engine import Simulator
from repro.sim.resources import Server
from repro.sim.rng import substream


@dataclass(frozen=True)
class QueueingResults:
    """Results of one replication-model run.

    Attributes:
        response_times: Per-request response times (seconds), warmup excluded.
        load: Base per-server utilisation of the run.
        copies: Replication factor used (the policy's maximum copy count).
        summary: Precomputed latency summary of ``response_times``.
        policy_spec: Canonical spec of the replication policy the run used
            (``None`` for policies the spec language cannot express).
        copies_launched: Total copies that consumed service across all
            requests (warmup included) — for hedging policies this is smaller
            than ``copies * num_requests`` because suppressed backups never
            launch and cancelled copies are withdrawn before service.
    """

    response_times: np.ndarray
    load: float
    copies: int
    summary: LatencySummary = field(repr=False, default=None)  # type: ignore[assignment]
    policy_spec: Optional[str] = None
    copies_launched: Optional[int] = None

    def __post_init__(self) -> None:
        if self.summary is None:
            recorder = LatencyRecorder.from_samples(self.response_times, name="queueing")
            object.__setattr__(self, "summary", recorder.summary())

    @property
    def mean(self) -> float:
        """Mean response time."""
        return self.summary.mean

    def fraction_later_than(self, threshold: float) -> float:
        """Fraction of requests slower than ``threshold`` seconds."""
        return float(np.mean(self.response_times > threshold))


class ReplicatedQueueingModel:
    """The N-server, k-copy replication model of Section 2.1."""

    def __init__(
        self,
        service: Distribution,
        num_servers: int = 10,
        copies: Optional[int] = None,
        client_overhead: float = 0.0,
        seed: Optional[int] = 0,
        policy: Optional[PolicyLike] = None,
    ) -> None:
        """Configure the model.

        Args:
            service: Service-time distribution (shared by all servers).
            num_servers: Number of servers ``N`` (must be >= the policy's
                maximum copy count).  The paper notes the independence
                approximation is good for ``N >= 10`` with ``k = 2``.
            copies: Replication factor ``k`` >= 1 (1 disables replication).
                Sugar for ``policy=KCopies(k)``; mutually exclusive with
                ``policy``.  Defaults to the paper's eager 2 copies when
                neither is given.
            client_overhead: Extra latency added to every request *per extra
                copy actually launched*, expressed in the same time unit as
                the service distribution (Figure 4 sweeps this as a fraction
                of the mean service time).  For eager ``k``-copies this is the
                historical ``overhead * (copies - 1)``.
            seed: Base seed for reproducible runs (``None`` = fresh entropy).
            policy: A :class:`~repro.core.policy.ReplicationPolicy` or spec
                string (``"none"``, ``"k2"``, ``"hedge:10ms"``,
                ``"hedge:p95"``) governing how each request is replicated.

        Raises:
            ConfigurationError: If the policy's copy count exceeds
                ``num_servers`` or any parameter is invalid.
        """
        if num_servers < 1:
            raise ConfigurationError(f"num_servers must be >= 1, got {num_servers!r}")
        if copies is not None and (copies < 1 or int(copies) != copies):
            raise ConfigurationError(f"copies must be a positive integer, got {copies!r}")
        if client_overhead < 0:
            raise ConfigurationError(f"client_overhead must be >= 0, got {client_overhead!r}")
        self.policy: ReplicationPolicy = resolve_policy(policy, copies, default_copies=2)
        self._eager_k = eager_copies(self.policy)
        self.service = service
        self.num_servers = int(num_servers)
        self.copies = int(self.policy.max_copies)
        if self.copies > num_servers:
            raise ConfigurationError(
                f"copies ({self.copies}) cannot exceed num_servers ({num_servers})"
            )
        self.client_overhead = float(client_overhead)
        self.seed = seed

    @property
    def policy_spec(self) -> Optional[str]:
        """Canonical spec of the model's policy (``None`` if inexpressible)."""
        try:
            return policy_to_spec(self.policy)
        except ConfigurationError:
            return None

    # ------------------------------------------------------------------ #
    # Fast vectorised implementation
    # ------------------------------------------------------------------ #

    def run_fast(
        self,
        load: float,
        num_requests: int = 50_000,
        warmup_fraction: float = 0.1,
        arrival_stream: str = "arrivals",
    ) -> QueueingResults:
        """Simulate ``num_requests`` requests with the Lindley fast path.

        Args:
            load: Base per-server utilisation in ``[0, 1/copies)``.
            num_requests: Number of requests to generate.
            warmup_fraction: Fraction of the earliest requests discarded so the
                measurement reflects steady state.
            arrival_stream: Name of the RNG substream for arrivals; runs with
                the same seed and stream names share arrival times and service
                draws, enabling paired (common-random-number) comparisons of
                different ``copies`` values.

        Returns:
            A :class:`QueueingResults` with the retained response times.
        """
        self._validate_run(load, num_requests, warmup_fraction)

        mean_service = self.service.mean()
        arrivals_rng = substream(self.seed, arrival_stream)
        service_rng = substream(self.seed, "service")
        placement_rng = substream(self.seed, "placement")

        # Aggregate arrival rate so each server sees `load` before replication.
        total_rate = self.num_servers * load / mean_service
        if total_rate <= 0:
            raise ConfigurationError("load must be positive for a simulation run")
        gaps = arrivals_rng.exponential(1.0 / total_rate, num_requests)
        arrival_times = np.cumsum(gaps)

        # Choose `copies` distinct servers per request.
        servers = self._choose_servers(placement_rng, num_requests)

        # Independent service draw per copy.
        service_times = np.asarray(
            self.service.sample(service_rng, num_requests * self.copies), dtype=float
        ).reshape(num_requests, self.copies)

        if self._eager_k is not None:
            response = self._lindley_pass(arrival_times, servers, service_times)
            if self.copies > 1 and self.client_overhead > 0:
                response = response + self.client_overhead * (self.copies - 1)
            total_launched = num_requests * self.copies
        else:
            response, launched = self._policy_pass(arrival_times, servers, service_times)
            if self.client_overhead > 0:
                response = response + self.client_overhead * (launched - 1)
            total_launched = int(launched.sum())

        start = int(num_requests * warmup_fraction)
        retained = response[start:]
        return QueueingResults(
            response_times=retained,
            load=load,
            copies=self.copies,
            policy_spec=self.policy_spec,
            copies_launched=total_launched,
        )

    def _choose_servers(self, rng: np.random.Generator, num_requests: int) -> np.ndarray:
        """Choose ``copies`` distinct servers per request, uniformly at random."""
        if self.copies == 1:
            return rng.integers(0, self.num_servers, size=(num_requests, 1))
        # Rank a uniform matrix per row: the first `copies` ranks are a uniform
        # random subset (and ordering) of distinct servers.
        scores = rng.random((num_requests, self.num_servers))
        return np.argpartition(scores, self.copies - 1, axis=1)[:, : self.copies]

    def _lindley_pass(
        self,
        arrival_times: np.ndarray,
        servers: np.ndarray,
        service_times: np.ndarray,
    ) -> np.ndarray:
        """Single pass in arrival order computing min-of-copies response times.

        Each server is FIFO, so processing copies in global arrival order with
        a per-server "free at" clock reproduces the exact queueing dynamics.
        """
        num_requests, copies = servers.shape
        free_at = np.zeros(self.num_servers)
        response = np.empty(num_requests)
        for i in range(num_requests):
            arrival = arrival_times[i]
            best = np.inf
            for j in range(copies):
                server = servers[i, j]
                start = free_at[server] if free_at[server] > arrival else arrival
                finish = start + service_times[i, j]
                free_at[server] = finish
                elapsed = finish - arrival
                if elapsed < best:
                    best = elapsed
            response[i] = best
        return response

    def _policy_pass(
        self,
        arrival_times: np.ndarray,
        servers: np.ndarray,
        service_times: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Generalised single pass for policies with non-zero launch delays.

        Copies arrive at their servers offset by the policy's launch delays;
        a backup whose request already completed before its delay expired is
        suppressed (never launched).  Because every server is FIFO, a copy's
        completion time is known the moment it is enqueued, so suppression is
        decided exactly.  Launched copies are never cancelled here — the
        event-driven path is the one that models ``cancel_on_win``.

        Latency feedback for adaptive policies is released in completion-time
        order once a request's plan is fully resolved (all its backup launch
        decisions made), so a policy never observes the future.

        Returns:
            ``(response_times, copies_launched)`` arrays, one entry per
            request.
        """
        free_at = np.zeros(self.num_servers)

        def launch(request: int, copy: int, at: float) -> float:
            server = servers[request, copy]
            start = free_at[server] if free_at[server] > at else at
            finish = start + service_times[request, copy]
            free_at[server] = finish
            return finish

        finish_at, launched = simulate_hedged_arrivals(
            self.policy, arrival_times, servers.shape[1], launch
        )
        return finish_at - arrival_times, launched

    # ------------------------------------------------------------------ #
    # Event-driven implementation (validation / extension template)
    # ------------------------------------------------------------------ #

    def run_event_driven(
        self,
        load: float,
        num_requests: int = 10_000,
        warmup_fraction: float = 0.1,
    ) -> QueueingResults:
        """Simulate the same model on the discrete-event engine.

        Slower than :meth:`run_fast` but expressed in terms of
        :class:`repro.sim.resources.Server`, which is how the cluster and
        network substrates are built; the tests check both paths agree.

        Raises:
            ConfigurationError: Same parameter validation as :meth:`run_fast`
                (load, ``num_requests >= 10``, ``0 <= warmup_fraction < 1``).
        """
        self._validate_run(load, num_requests, warmup_fraction)
        mean_service = self.service.mean()
        arrivals_rng = substream(self.seed, "arrivals")
        service_rng = substream(self.seed, "service")
        placement_rng = substream(self.seed, "placement")

        total_rate = self.num_servers * load / mean_service
        gaps = arrivals_rng.exponential(1.0 / total_rate, num_requests)
        arrival_times = np.cumsum(gaps)
        servers_choice = self._choose_servers(placement_rng, num_requests)
        service_times = np.asarray(
            self.service.sample(service_rng, num_requests * self.copies), dtype=float
        ).reshape(num_requests, self.copies)

        sim = Simulator()
        servers = [Server(sim, name=f"server-{i}") for i in range(self.num_servers)]
        first_completion = np.full(num_requests, np.inf)

        if self._eager_k is not None:

            def on_complete(job, _start, finish):
                request_index, arrival = job
                elapsed = finish - arrival
                if elapsed < first_completion[request_index]:
                    first_completion[request_index] = elapsed

            def submit(request_index: int):
                arrival = arrival_times[request_index]
                for j in range(self.copies):
                    servers[servers_choice[request_index, j]].submit(
                        (request_index, arrival),
                        float(service_times[request_index, j]),
                        on_complete,
                    )

            for i in range(num_requests):
                sim.schedule_at(float(arrival_times[i]), submit, i)
            sim.run()

            response = first_completion
            if self.copies > 1 and self.client_overhead > 0:
                response = response + self.client_overhead * (self.copies - 1)
            total_launched = num_requests * self.copies
        else:
            launched = self._run_policy_events(
                sim, servers, arrival_times, servers_choice, service_times, first_completion
            )
            response = first_completion
            if self.client_overhead > 0:
                response = response + self.client_overhead * (launched - 1)
            total_launched = int(launched.sum())
        start = int(num_requests * warmup_fraction)
        return QueueingResults(
            response_times=response[start:],
            load=load,
            copies=self.copies,
            policy_spec=self.policy_spec,
            copies_launched=total_launched,
        )

    def _run_policy_events(
        self,
        sim: Simulator,
        servers: List[Server],
        arrival_times: np.ndarray,
        servers_choice: np.ndarray,
        service_times: np.ndarray,
        first_completion: np.ndarray,
    ) -> np.ndarray:
        """Event-driven execution of a non-eager policy, with cancel-on-win.

        Each request's first copy is submitted at its arrival; backup copies
        are scheduled after the policy's launch delays and *suppressed* if the
        request completed in the meantime.  When the first copy completes and
        the plan says ``cancel_on_win``, losing copies still waiting in a
        server queue are withdrawn (a copy already in service runs to
        completion — cancellation saves queueing, not work under way).
        Completed latencies are fed back to the policy in simulated-time
        order, so adaptive policies adapt exactly as they would live.

        Returns:
            Per-request counts of copies actually dispatched to a server.
        """
        num_requests = arrival_times.shape[0]
        launched = np.zeros(num_requests, dtype=np.int64)
        completed = np.zeros(num_requests, dtype=bool)
        cancel_on_win = np.zeros(num_requests, dtype=bool)
        queue_entries: dict[int, List[Tuple[Server, object]]] = {}

        def on_complete(job, _start, finish):
            request_index, arrival = job
            elapsed = finish - arrival
            if elapsed < first_completion[request_index]:
                first_completion[request_index] = elapsed
            if not completed[request_index]:
                completed[request_index] = True
                self.policy.record_latency(float(elapsed))
                if cancel_on_win[request_index]:
                    for server, entry in queue_entries.pop(request_index, ()):
                        if server.cancel(entry):
                            # A withdrawn copy consumes no service and yields
                            # no response, so it costs no client overhead.
                            launched[request_index] -= 1
                else:
                    queue_entries.pop(request_index, None)

        def submit_copy(request_index: int, copy: int) -> None:
            if copy > 0 and completed[request_index]:
                return  # the hedge is suppressed: the request already finished
            server = servers[servers_choice[request_index, copy]]
            entry = server.submit(
                (request_index, arrival_times[request_index]),
                float(service_times[request_index, copy]),
                on_complete,
            )
            launched[request_index] += 1
            queue_entries.setdefault(request_index, []).append((server, entry))

        def submit(request_index: int) -> None:
            plan = self.policy.plan()
            cancel_on_win[request_index] = plan.cancel_on_win
            delays = plan.launch_delays[: self.copies]
            submit_copy(request_index, 0)
            for copy, delay in enumerate(delays[1:], start=1):
                sim.schedule(float(delay), submit_copy, request_index, copy)

        for i in range(num_requests):
            sim.schedule_at(float(arrival_times[i]), submit, i)
        sim.run()
        return launched

    # ------------------------------------------------------------------ #

    def _validate_load(self, load: float) -> None:
        if load <= 0:
            raise ConfigurationError(f"load must be positive, got {load!r}")
        if self._eager_k is not None:
            if self.copies * load >= 1.0:
                raise CapacityError(
                    f"replicated utilisation {self.copies * load:.3f} >= 1: "
                    "the model has no steady state at this load"
                )
        elif load >= 1.0:
            # Hedging launches backups only for slow requests, so the true
            # utilisation lies between `load` and `max_copies * load`; only
            # the unconditional lower bound can be rejected up front.
            raise CapacityError(
                f"base utilisation {load:.3f} >= 1: the system is overloaded "
                "even before any hedged copies are launched"
            )

    def _validate_run(
        self, load: float, num_requests: int, warmup_fraction: float
    ) -> None:
        """Parameter validation shared by the fast and event-driven paths."""
        self._validate_load(load)
        if num_requests < 10:
            raise ConfigurationError(f"num_requests must be >= 10, got {num_requests!r}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction!r}"
            )


def simulate_replicated_mm1_system(
    load: float,
    copies: int,
    num_servers: int = 10,
    num_requests: int = 50_000,
    seed: int = 0,
) -> QueueingResults:
    """Convenience wrapper: the exponential-service case used to check Theorem 1.

    Args:
        load: Base per-server utilisation.
        copies: Replication factor.
        num_servers: Number of servers.
        num_requests: Requests to simulate.
        seed: Seed for reproducibility.
    """
    from repro.distributions.standard import Exponential

    model = ReplicatedQueueingModel(
        Exponential(1.0), num_servers=num_servers, copies=copies, seed=seed
    )
    return model.run_fast(load, num_requests=num_requests)
