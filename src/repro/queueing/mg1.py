"""M/G/1 analytics and the two-moment response-time approximation.

Two layers are provided:

* Exact M/G/1 mean results via the Pollaczek–Khinchine formula
  (:func:`pollaczek_khinchine_wait`, :class:`MG1Queue`).
* A *two-moment approximation of the full response-time distribution*
  (:func:`two_moment_response_survival`), standing in for the Myers–Vernon
  [SIGMETRICS PER 2012] approximation the paper uses as evidence for
  Conjecture 1.  The approximation keeps the exact Pollaczek–Khinchine mean
  and models the waiting time as ``0`` with probability ``1 - rho`` and an
  exponential with mean ``E[W] / rho`` with probability ``rho``.  This is
  exact for M/M/1 and matches the first two moments' structure for light
  tails; like the original it is documented as inappropriate for heavy-tailed
  service times (use :mod:`repro.queueing.heavy_tail` there).

The replication analysis needs the *whole* distribution because the benefit of
redundancy is ``E[min(T_1, T_2)] = ∫ P(T > t)^2 dt``; the module exposes
:func:`expected_minimum_response` built on the survival function.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import CapacityError, ConfigurationError


def pollaczek_khinchine_wait(service: Distribution, load: float) -> float:
    """Exact M/G/1 mean waiting time (Pollaczek–Khinchine).

    ``E[W] = lambda * E[S^2] / (2 * (1 - rho))`` with ``lambda = rho / E[S]``.

    Args:
        service: Service-time distribution (finite second moment required).
        load: Utilisation ``rho`` in ``[0, 1)``.

    Raises:
        CapacityError: If ``load >= 1``.
        ConfigurationError: If the service distribution has infinite variance
            (the formula needs a finite second moment).
    """
    if load < 0:
        raise ConfigurationError(f"load must be non-negative, got {load!r}")
    if load >= 1.0:
        raise CapacityError(f"M/G/1 is unstable at rho={load:.3f} >= 1")
    if load == 0.0:
        return 0.0
    second = service.second_moment()
    if math.isinf(second):
        raise ConfigurationError(
            "Pollaczek-Khinchine needs a finite second moment; "
            "use the heavy_tail module for infinite-variance service times"
        )
    arrival_rate = load / service.mean()
    return arrival_rate * second / (2.0 * (1.0 - load))


class MG1Queue:
    """An M/G/1 queue characterised by a service distribution and a load."""

    def __init__(self, service: Distribution, load: float) -> None:
        """Create an M/G/1 queue at utilisation ``load`` with the given service."""
        if load < 0:
            raise ConfigurationError(f"load must be non-negative, got {load!r}")
        if load >= 1.0:
            raise CapacityError(f"M/G/1 is unstable at rho={load:.3f} >= 1")
        self.service = service
        self.load = float(load)

    def mean_waiting_time(self) -> float:
        """Exact mean waiting time (Pollaczek–Khinchine)."""
        return pollaczek_khinchine_wait(self.service, self.load)

    def mean_response_time(self) -> float:
        """Exact mean response time: waiting plus mean service."""
        return self.mean_waiting_time() + self.service.mean()

    def waiting_time_survival(self, t: float) -> float:
        """Approximate P(W > t) under the two-moment exponential approximation."""
        if t <= 0:
            return 1.0 if self.load > 0 else 0.0
        if self.load == 0:
            return 0.0
        mean_wait = self.mean_waiting_time()
        if mean_wait == 0:
            return 0.0
        theta = mean_wait / self.load
        return self.load * math.exp(-t / theta)


def two_moment_response_survival(
    service: Distribution,
    load: float,
    t_grid: np.ndarray,
    service_samples: Optional[np.ndarray] = None,
    num_service_samples: int = 20_000,
    seed: int = 20131206,
) -> np.ndarray:
    """Approximate P(T > t) on a grid, where T = waiting + service.

    The waiting time uses the two-moment exponential approximation (see module
    docstring); the convolution with the service distribution is evaluated by
    averaging over a fixed set of service-time samples, so the function is
    deterministic for a given seed.

    Args:
        service: Service-time distribution.
        load: Utilisation ``rho`` in ``[0, 1)``.
        t_grid: Points at which to evaluate the survival function.
        service_samples: Optional pre-drawn service samples (reused across
            loads for common-random-number comparisons).
        num_service_samples: Number of samples to draw when not provided.
        seed: Seed for the internal sample draw.

    Returns:
        Array of P(T > t) values, same shape as ``t_grid``.
    """
    if load < 0:
        raise ConfigurationError(f"load must be non-negative, got {load!r}")
    if load >= 1.0:
        raise CapacityError(f"M/G/1 is unstable at rho={load:.3f} >= 1")
    t_grid = np.asarray(t_grid, dtype=float)
    if service_samples is None:
        rng = np.random.default_rng(seed)
        service_samples = np.asarray(service.sample(rng, num_service_samples), dtype=float)
    samples = np.asarray(service_samples, dtype=float)

    if load == 0.0:
        # No queueing: T = S exactly.
        return np.array([float(np.mean(samples > t)) for t in t_grid])

    mean_wait = pollaczek_khinchine_wait(service, load)
    theta = mean_wait / load if mean_wait > 0 else 0.0

    survival = np.empty_like(t_grid)
    for i, t in enumerate(t_grid):
        over = samples > t
        if theta > 0:
            under = ~over
            tail_from_wait = load * np.exp(-(t - samples[under]) / theta)
            survival[i] = float(np.mean(over) + tail_from_wait.sum() / samples.size)
        else:
            survival[i] = float(np.mean(over))
    return np.clip(survival, 0.0, 1.0)


def expected_minimum_response(
    survival: Callable[[np.ndarray], np.ndarray],
    copies: int,
    t_max: float,
    num_points: int = 4_000,
) -> float:
    """E[min of ``copies`` i.i.d. response times] from a survival function.

    Uses ``E[min] = ∫_0^inf P(T > t)^k dt`` evaluated by the trapezoid rule on
    ``[0, t_max]``; choose ``t_max`` large enough that the survival function is
    negligible there (the helper in :mod:`repro.queueing.threshold` picks it
    from the distribution's quantiles).

    Args:
        survival: Vectorised survival function P(T > t).
        copies: Number of i.i.d. copies (>= 1).
        t_max: Upper integration limit.
        num_points: Grid resolution.
    """
    if copies < 1:
        raise ConfigurationError(f"copies must be >= 1, got {copies!r}")
    if t_max <= 0:
        raise ConfigurationError(f"t_max must be positive, got {t_max!r}")
    t_grid = np.linspace(0.0, t_max, num_points)
    values = np.asarray(survival(t_grid), dtype=float) ** copies
    return float(np.trapezoid(values, t_grid))
