"""The Section 2.1 queueing model of replication.

``N`` identical servers, Poisson arrivals, ``k`` copies of every request sent
to ``k`` distinct servers chosen uniformly at random, response time = the
minimum across copies.  The package provides:

* :mod:`repro.queueing.replication_model` — simulation of the model, both an
  event-driven version (built on :mod:`repro.sim`) and a fast vectorised
  Lindley-recursion version, cross-validated in the tests.
* :mod:`repro.queueing.mm1` — exact M/M/1 results, including Theorem 1 (the
  threshold load is 1/3 with exponential service).
* :mod:`repro.queueing.mg1` — M/G/1 results (Pollaczek–Khinchine) and the
  two-moment response-time approximation used for Conjecture 1 evidence.
* :mod:`repro.queueing.heavy_tail` — the regularly-varying (heavy-tail)
  approximation and the Theorem 3 lower bound.
* :mod:`repro.queueing.threshold` — threshold-load search (simulated and
  approximation-based).
* :mod:`repro.queueing.client_overhead` — the client-side overhead model of
  Figure 4.
"""

from repro.queueing.mm1 import MM1Queue, mm1_replicated_mean_response, mm1_threshold_load
from repro.queueing.mg1 import MG1Queue, pollaczek_khinchine_wait, two_moment_response_survival
from repro.queueing.heavy_tail import (
    HEAVY_TAIL_ALPHA_LIMIT,
    heavy_tail_threshold_lower_bound,
    heavy_tail_wait_survival,
)
from repro.queueing.replication_model import (
    QueueingResults,
    ReplicatedQueueingModel,
    simulate_replicated_mm1_system,
)
from repro.queueing.threshold import (
    DETERMINISTIC_THRESHOLD_ESTIMATE,
    threshold_load,
    threshold_load_approximation,
)
from repro.queueing.client_overhead import overhead_threshold_curve

__all__ = [
    "MM1Queue",
    "mm1_replicated_mean_response",
    "mm1_threshold_load",
    "MG1Queue",
    "pollaczek_khinchine_wait",
    "two_moment_response_survival",
    "HEAVY_TAIL_ALPHA_LIMIT",
    "heavy_tail_threshold_lower_bound",
    "heavy_tail_wait_survival",
    "ReplicatedQueueingModel",
    "QueueingResults",
    "simulate_replicated_mm1_system",
    "threshold_load",
    "threshold_load_approximation",
    "DETERMINISTIC_THRESHOLD_ESTIMATE",
    "overhead_threshold_curve",
]
