"""Heavy-tailed (regularly varying) M/G/1 approximations.

For regularly varying service times (e.g. Pareto), the classic heavy-traffic /
heavy-tail result — of which Olvera-Cravioto, Blanchet and Glynn [Ann. Appl.
Prob. 2011], the reference the paper uses, is the modern refinement — is that
the stationary waiting time satisfies::

    P(W > x)  ≈  rho / (1 - rho) * F_I(x)

where ``F_I`` is the *integrated tail* (equilibrium) distribution of the
service time: ``F_I(x) = (1/E[S]) ∫_x^inf P(S > u) du``.

This module implements that approximation for Pareto service times (closed
form for the integrated tail) and records the paper's Theorem 3: within the
approximation, if the tail index satisfies ``alpha < 1 + sqrt(2)`` the
threshold load is greater than 30%.
"""

from __future__ import annotations

import math

from repro.distributions.standard import Pareto
from repro.exceptions import CapacityError, ConfigurationError

#: The tail-index condition of Theorem 3: the result applies when the service
#: time is "sufficiently heavy", i.e. ``alpha < 1 + sqrt(2)`` (a coefficient of
#: variation larger than the exponential distribution's).
HEAVY_TAIL_ALPHA_LIMIT: float = 1.0 + math.sqrt(2.0)

#: The threshold-load lower bound established by Theorem 3 under that condition.
HEAVY_TAIL_THRESHOLD_BOUND: float = 0.30


def pareto_integrated_tail(service: Pareto, x: float) -> float:
    """The integrated-tail (equilibrium) survival function of a Pareto service time.

    For a Pareto(alpha, xm) with ``alpha > 1``::

        F_I(x) = (1/E[S]) ∫_x^inf (xm/u)^alpha du = (xm/x)^(alpha-1) / (alpha E[S] / (alpha xm))

    which simplifies to ``(xm / x)^(alpha - 1)`` for ``x >= xm`` (and handles
    ``x < xm`` by integrating the flat part of the tail exactly).
    """
    if x < 0:
        return 1.0
    alpha, xm = service.alpha, service.xm
    mean = service.mean()
    if x <= xm:
        # ∫_x^xm 1 du + ∫_xm^inf (xm/u)^alpha du = (xm - x) + xm / (alpha - 1)
        integral = (xm - x) + xm / (alpha - 1.0)
    else:
        integral = (xm**alpha) * x ** (1.0 - alpha) / (alpha - 1.0)
    return min(1.0, integral / mean)


def heavy_tail_wait_survival(service: Pareto, load: float, x: float) -> float:
    """Approximate P(W > x) for an M/G/1 queue with Pareto service.

    Implements ``rho/(1-rho) * F_I(x)`` (capped at 1), the regularly-varying
    approximation described in the module docstring.

    Raises:
        CapacityError: If ``load >= 1``.
        ConfigurationError: If ``load < 0``.
    """
    if load < 0:
        raise ConfigurationError(f"load must be non-negative, got {load!r}")
    if load >= 1.0:
        raise CapacityError(f"M/G/1 is unstable at rho={load:.3f} >= 1")
    if load == 0.0:
        return 0.0
    return min(1.0, load / (1.0 - load) * pareto_integrated_tail(service, x))


def heavy_tail_response_survival(service: Pareto, load: float, t: float) -> float:
    """Approximate P(T > t) for the response time T = W + S.

    In the heavy-tailed regime the tail of a sum is dominated by the heavier
    component ("single big jump" principle), so the standard approximation is
    ``P(T > t) ≈ P(W > t) + P(S > t)`` (capped at 1).
    """
    service_tail = (service.xm / t) ** service.alpha if t > service.xm else 1.0
    return min(1.0, heavy_tail_wait_survival(service, load, t) + service_tail)


def heavy_tail_threshold_lower_bound(alpha: float) -> float:
    """The Theorem 3 lower bound on the threshold load for tail index ``alpha``.

    Args:
        alpha: Regular-variation tail index of the service time (must exceed 1
            for a finite mean).

    Returns:
        ``0.30`` when ``alpha < 1 + sqrt(2)`` (the theorem's condition holds);
        the trivial bound ``0.25`` otherwise (the conjectured general bound of
        the paper, rounded down from ≈25.8%).

    Raises:
        ConfigurationError: If ``alpha <= 1`` (the mean would be infinite and
            the model meaningless).
    """
    if alpha <= 1.0:
        raise ConfigurationError(f"alpha must exceed 1 for a finite mean, got {alpha!r}")
    if alpha < HEAVY_TAIL_ALPHA_LIMIT:
        return HEAVY_TAIL_THRESHOLD_BOUND
    return 0.25
