"""The client-side overhead model of Figure 4.

Figure 4 asks: if processing the extra replicated copy costs the client a
fixed amount of latency (expressed as a fraction of the mean service time),
how does the threshold load change?  The paper's findings, reproduced by
:func:`overhead_threshold_curve`:

* more variable service-time distributions tolerate more overhead;
* once the overhead approaches the mean service time, replication cannot
  improve mean latency at any load (the threshold collapses to 0);
* with deterministic service times even a few percent of overhead erases the
  benefit.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.distributions.base import Distribution
from repro.exceptions import ConfigurationError
from repro.queueing.threshold import threshold_load


def overhead_threshold_curve(
    service: Distribution,
    overhead_fractions: Sequence[float],
    copies: int = 2,
    num_servers: int = 10,
    num_requests: int = 40_000,
    seed: int = 0,
    tolerance: float = 0.01,
) -> Dict[float, float]:
    """Threshold load as a function of client-side overhead (Figure 4).

    Args:
        service: Service-time distribution.
        overhead_fractions: Overheads to evaluate, each expressed as a fraction
            of the mean service time (the paper sweeps 0 to 1).
        copies: Replication factor.
        num_servers: Servers in the simulated system.
        num_requests: Requests per simulation run.
        seed: Base seed for the paired simulations.
        tolerance: Bisection tolerance passed to :func:`threshold_load`.

    Returns:
        Mapping from overhead fraction to estimated threshold load.

    Raises:
        ConfigurationError: If any overhead fraction is negative.
    """
    if any(fraction < 0 for fraction in overhead_fractions):
        raise ConfigurationError("overhead fractions must be non-negative")
    mean_service = service.mean()
    curve: Dict[float, float] = {}
    for fraction in overhead_fractions:
        curve[float(fraction)] = threshold_load(
            service,
            copies=copies,
            num_servers=num_servers,
            num_requests=num_requests,
            client_overhead=fraction * mean_service,
            seed=seed,
            tolerance=tolerance,
        )
    return curve
