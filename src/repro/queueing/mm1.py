"""Exact M/M/1 results, including Theorem 1.

With exponential service times (mean 1, without loss of generality) and
per-server arrival rate ``rho``:

* Without replication each server is an M/M/1 queue and the response time is
  exponential with rate ``1 - rho``; the mean is ``1 / (1 - rho)``.
* With 2-copy replication each server sees arrival rate ``2*rho`` and each
  request takes the minimum of two (approximately independent) exponential
  response times with rate ``1 - 2*rho``; the minimum is exponential with
  rate ``2*(1 - 2*rho)`` and the mean is ``1 / (2*(1 - 2*rho))``.

Replication wins exactly when ``1/(k(1-k rho)) < 1/(1-rho)``, which for
``k = 2`` gives ``rho < 1/3`` — **Theorem 1: the threshold load is 33%**.
"""

from __future__ import annotations

import math

from repro.exceptions import CapacityError, ConfigurationError


class MM1Queue:
    """An M/M/1 queue with unit-mean exponential service.

    All quantities are expressed with the mean service time normalised to 1
    second (the paper's convention); rescale externally for other means.
    """

    def __init__(self, arrival_rate: float, service_rate: float = 1.0) -> None:
        """Create an M/M/1 queue.

        Args:
            arrival_rate: Poisson arrival rate ``lambda`` (>= 0).
            service_rate: Service rate ``mu`` (> 0, default 1).

        Raises:
            ConfigurationError: On negative rates.
            CapacityError: If ``lambda >= mu`` (no steady state).
        """
        if arrival_rate < 0 or service_rate <= 0:
            raise ConfigurationError(
                f"need arrival_rate >= 0 and service_rate > 0, got {arrival_rate!r}, {service_rate!r}"
            )
        if arrival_rate >= service_rate:
            raise CapacityError(
                f"M/M/1 is unstable at rho={arrival_rate / service_rate:.3f} >= 1"
            )
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)

    @property
    def utilization(self) -> float:
        """Server utilisation ``rho = lambda / mu``."""
        return self.arrival_rate / self.service_rate

    def mean_response_time(self) -> float:
        """Mean time in system: ``1 / (mu - lambda)``."""
        return 1.0 / (self.service_rate - self.arrival_rate)

    def mean_waiting_time(self) -> float:
        """Mean time in queue (excluding service)."""
        return self.mean_response_time() - 1.0 / self.service_rate

    def response_time_survival(self, t: float) -> float:
        """P(response time > t): ``exp(-(mu - lambda) * t)``."""
        if t < 0:
            return 1.0
        return math.exp(-(self.service_rate - self.arrival_rate) * t)

    def response_time_quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q < 1``) of the response time."""
        if not 0.0 <= q < 1.0:
            raise ConfigurationError(f"q must be in [0, 1), got {q!r}")
        return -math.log(1.0 - q) / (self.service_rate - self.arrival_rate)


def mm1_replicated_mean_response(load: float, copies: int = 2) -> float:
    """Mean response time with ``copies``-fold replication, exponential service.

    Each server's arrival rate becomes ``copies * load`` and the request takes
    the minimum of ``copies`` independent exponential response times with rate
    ``1 - copies*load``, i.e. an exponential with rate ``copies*(1 - copies*load)``.

    Args:
        load: Per-server base utilisation ``rho`` (before replication).
        copies: Replication factor ``k`` >= 1.

    Raises:
        ConfigurationError: If ``copies < 1`` or ``load < 0``.
        CapacityError: If ``copies * load >= 1`` (the replicated system has no
            steady state).
    """
    if copies < 1 or int(copies) != copies:
        raise ConfigurationError(f"copies must be a positive integer, got {copies!r}")
    if load < 0:
        raise ConfigurationError(f"load must be non-negative, got {load!r}")
    if copies * load >= 1.0:
        raise CapacityError(
            f"replicated load {copies * load:.3f} >= 1: the system is saturated"
        )
    return 1.0 / (copies * (1.0 - copies * load))


def mm1_replicated_response_survival(load: float, t: float, copies: int = 2) -> float:
    """P(replicated response time > t) under the independence approximation.

    The minimum of ``copies`` i.i.d. exponentials with rate ``1 - copies*load``
    exceeds ``t`` with probability ``exp(-copies*(1 - copies*load)*t)``.
    """
    if copies * load >= 1.0:
        raise CapacityError(f"replicated load {copies * load:.3f} >= 1")
    if t < 0:
        return 1.0
    return math.exp(-copies * (1.0 - copies * load) * t)


def mm1_threshold_load(copies: int = 2) -> float:
    """The exact threshold load for exponential service (Theorem 1 generalised).

    Replication with ``k`` copies improves the mean exactly when
    ``1/(k(1 - k*rho)) < 1/(1 - rho)``, i.e. ``rho < (k - 1)/(k^2 - 1) = 1/(k + 1)``.
    For ``k = 2`` this is 1/3 — the paper's Theorem 1.

    Args:
        copies: Replication factor ``k`` >= 2.

    Returns:
        The threshold load ``1 / (k + 1)``.

    Raises:
        ConfigurationError: If ``copies < 2`` (no replication, no threshold).
    """
    if copies < 2 or int(copies) != copies:
        raise ConfigurationError(f"copies must be an integer >= 2, got {copies!r}")
    return 1.0 / (copies + 1.0)
