"""Threshold-load computation.

The *threshold load* is the paper's central metric (Section 2.1): the largest
per-server utilisation below which replicating every request reduces the mean
response time.  Three ways of computing it are provided:

* :func:`threshold_load` — simulation-based search using the fast
  Lindley-recursion model with common random numbers across the replicated
  and unreplicated runs.
* :func:`threshold_load_approximation` — the two-moment (Myers–Vernon-style)
  response-time approximation of :mod:`repro.queueing.mg1`, suitable for
  light-tailed service times.
* :func:`repro.queueing.mm1.mm1_threshold_load` — the exact value for
  exponential service (Theorem 1).

The paper's key empirical facts this module reproduces: the threshold is
always in the 25–50% band, approaches 50% for very variable service times,
and is ≈25.8% in the conjectured worst case (deterministic service).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.policy import PolicyLike, eager_copies, parse_policy
from repro.distributions.base import Distribution
from repro.exceptions import ConfigurationError
from repro.queueing.mg1 import (
    expected_minimum_response,
    pollaczek_khinchine_wait,
    two_moment_response_survival,
)
from repro.queueing.replication_model import ReplicatedQueueingModel

#: The paper's simulation estimate of the threshold load with deterministic
#: service times (the conjectured worst case), "slightly less than 26% — more
#: precisely, ≈ 25.82%".
DETERMINISTIC_THRESHOLD_ESTIMATE: float = 0.2582

#: No service-time distribution can have a threshold above 50%: beyond that,
#: 2-copy replication would push utilisation past 100%.
THRESHOLD_UPPER_BOUND: float = 0.5


def replication_benefit_at(
    service: Distribution,
    load: float,
    copies: Optional[int] = None,
    num_servers: int = 10,
    num_requests: int = 40_000,
    client_overhead: float = 0.0,
    seed: int = 0,
    policy: Optional[PolicyLike] = None,
) -> float:
    """Mean-latency benefit of replication at one load (positive = helps).

    Runs the fast simulator once without replication and once with the
    replicated configuration — ``copies`` eager copies, or any
    :class:`~repro.core.policy.ReplicationPolicy` via ``policy=`` — sharing
    the arrival stream for a paired comparison, and returns
    ``mean_1copy - mean_replicated``.

    For adaptive policies pass a *spec string* (e.g. ``"hedge:p95"``) rather
    than a policy object: specs are re-parsed per run, so every simulation
    starts from fresh policy state.
    """
    if copies is None and policy is None:
        copies = 2
    baseline_model = ReplicatedQueueingModel(
        service, num_servers=num_servers, copies=1, seed=seed
    )
    replicated_model = ReplicatedQueueingModel(
        service,
        num_servers=num_servers,
        copies=copies,
        client_overhead=client_overhead,
        seed=seed,
        policy=policy,
    )
    baseline = baseline_model.run_fast(load, num_requests=num_requests)
    replicated = replicated_model.run_fast(load, num_requests=num_requests)
    return baseline.mean - replicated.mean


def threshold_load(
    service: Distribution,
    copies: Optional[int] = None,
    num_servers: int = 10,
    num_requests: int = 40_000,
    client_overhead: float = 0.0,
    seed: int = 0,
    tolerance: float = 0.01,
    low: float = 0.02,
    high: Optional[float] = None,
    policy: Optional[PolicyLike] = None,
) -> float:
    """Estimate the threshold load by bisection on simulated mean latencies.

    The benefit of replication is positive at low loads and negative at high
    loads (for every service distribution it eventually turns negative because
    the replicated utilisation approaches 1), so a sign-change bisection on the
    paired benefit estimate converges to the threshold.

    Args:
        service: Service-time distribution.
        copies: Eager replication factor (>= 2); mutually exclusive with
            ``policy`` and defaulting to the paper's 2 when neither is given.
        num_servers: Number of servers in the simulated system.
        num_requests: Requests per simulation run (larger = less noise).
        client_overhead: Fixed client-side overhead added to replicated
            requests (same unit as service times).
        seed: Base seed (paired across the two arms).
        tolerance: Bisection stops when the bracket is narrower than this.
        low: Lowest load probed.
        high: Highest load probed; defaults to just under ``1/max_copies``
            for eager policies (the hard capacity bound) and to just under
            the single-copy capacity for hedging policies, whose backups
            launch only for slow requests.
        policy: A :class:`~repro.core.policy.ReplicationPolicy` or spec
            string whose threshold is sought.  Pass adaptive policies as spec
            strings so each probed load starts from fresh policy state.

    Returns:
        The estimated threshold load.  If replication already hurts at ``low``
        the function returns 0.0; if it still helps at ``high`` it returns
        ``high`` (i.e. the threshold is at least the capacity bound).
    """
    if policy is not None:
        if copies is not None:
            raise ConfigurationError("pass either policy= or copies=, not both")
        resolved = parse_policy(policy)
        if resolved.max_copies < 2:
            raise ConfigurationError(
                f"threshold load needs a policy that replicates; "
                f"{policy!r} launches at most {resolved.max_copies} copy"
            )
        capacity_copies = resolved.max_copies if eager_copies(resolved) else 1
    else:
        copies = 2 if copies is None else copies
        if copies < 2:
            raise ConfigurationError(f"threshold load needs copies >= 2, got {copies!r}")
        capacity_copies = copies
    if high is None:
        high = 1.0 / capacity_copies - 0.02
    if not 0.0 < low < high < 1.0 / capacity_copies:
        raise ConfigurationError(
            f"need 0 < low < high < 1/copies, got low={low!r}, high={high!r}"
        )

    def benefit(load: float) -> float:
        return replication_benefit_at(
            service,
            load,
            copies=copies,
            num_servers=num_servers,
            num_requests=num_requests,
            client_overhead=client_overhead,
            seed=seed,
            policy=policy,
        )

    benefit_low = benefit(low)
    if benefit_low <= 0:
        return 0.0
    benefit_high = benefit(high)
    if benefit_high > 0:
        return high

    lo, hi = low, high
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if benefit(mid) > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def threshold_load_approximation(
    service: Distribution,
    copies: int = 2,
    client_overhead: float = 0.0,
    tolerance: float = 0.002,
    num_service_samples: int = 20_000,
    seed: int = 20131206,
) -> float:
    """Threshold load under the two-moment response-time approximation.

    Mean response without replication uses the exact Pollaczek–Khinchine
    formula; mean response with ``copies`` copies integrates the approximate
    survival function raised to the ``copies`` power (the independence
    approximation of the paper).  Appropriate for light-tailed service times;
    for heavy tails prefer :func:`threshold_load` (simulation).

    Returns:
        The approximate threshold load in ``[0, 1/copies)``.
    """
    if copies < 2:
        raise ConfigurationError(f"threshold load needs copies >= 2, got {copies!r}")
    mean_service = service.mean()
    rng = np.random.default_rng(seed)
    service_samples = np.asarray(service.sample(rng, num_service_samples), dtype=float)

    def mean_unreplicated(load: float) -> float:
        return pollaczek_khinchine_wait(service, load) + mean_service

    def mean_replicated(load: float) -> float:
        replicated_load = copies * load
        mean_wait = pollaczek_khinchine_wait(service, replicated_load)
        t_max = 40.0 * (mean_service + mean_wait) + 10.0 * float(service_samples.max())

        def survival(t_grid: np.ndarray) -> np.ndarray:
            return two_moment_response_survival(
                service,
                replicated_load,
                t_grid,
                service_samples=service_samples,
            )

        value = expected_minimum_response(survival, copies, t_max)
        return value + client_overhead * (copies - 1)

    def benefit(load: float) -> float:
        return mean_unreplicated(load) - mean_replicated(load)

    low = 1e-3
    high = 1.0 / copies - 1e-3
    if benefit(low) <= 0:
        return 0.0
    if benefit(high) > 0:
        return high
    lo, hi = low, high
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if benefit(mid) > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
