"""Exception hierarchy for the ``repro`` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause without
masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator is used incorrectly.

    Examples include scheduling an event in the past or running a simulator
    that has already been stopped.
    """


class ConfigurationError(ReproError):
    """Raised when an experiment or model is configured with invalid values.

    Examples include negative loads, a replication factor larger than the
    number of servers, or a cache ratio outside ``(0, inf)``.
    """


class DistributionError(ReproError):
    """Raised when a probability distribution is mis-parameterised."""


class RoutingError(ReproError):
    """Raised when the network substrate cannot find a route for a packet."""


class CapacityError(ReproError):
    """Raised when an offered load would exceed the capacity of the system.

    The queueing substrates refuse to simulate loads at or beyond saturation
    (for instance a replicated load of 2 x 0.6 = 1.2) because the model has no
    steady state there; callers should treat such configurations as invalid
    rather than receiving meaningless numbers.
    """
