"""The injectable clock seam for ``repro.serve``.

Every sleep, timeout and timestamp in the serving layer goes through a
:class:`Clock` so the same proxy + load-generator code runs in two modes:

* :class:`RealClock` — ``time.monotonic()`` and ``asyncio.sleep`` on a real
  event loop.  This is the *only* wall-clock surface of the package and is
  sanctioned by the DET003 ALLOWLIST entry for this module (live serving
  measures real latency by design; its reports are never canonical
  artifacts unless produced under a :class:`VirtualClock`).
* :class:`VirtualClock` — a virtual-time event loop.  The clock owns a
  private asyncio loop whose selector is patched so that *waiting* advances
  virtual time instead of blocking: a 10-second sleep completes in
  microseconds of real time, and ``clock.now()`` reads exactly 10.0.  Runs
  are therefore seeded, wall-clock-free and byte-reproducible — the
  property the deterministic test harness and the CI ``cmp`` smoke pin.

The virtual loop trades generality for determinism: it refuses to wait
forever (``select(None)`` raises, surfacing virtual-time deadlocks such as
awaiting a future nobody will set) and it must not be mixed with real I/O
readiness (sockets never become ready, because time jumps instead of
waiting).  ``SimBackend`` pools never touch I/O, so the whole simulated
serving stack runs under it unchanged.
"""

from __future__ import annotations

import abc
import asyncio
import time
from typing import Any, Awaitable, TypeVar

T = TypeVar("T")

__all__ = ["Clock", "RealClock", "VirtualClock"]


class Clock(abc.ABC):
    """Time source + sleep primitive: the only clock API ``repro.serve`` uses."""

    #: Stable identifier recorded in run reports (``"real"`` / ``"virtual"``).
    name: str = "clock"

    @abc.abstractmethod
    def now(self) -> float:
        """The current time in seconds (monotonic; origin is clock-defined)."""

    @abc.abstractmethod
    async def sleep(self, delay: float) -> None:
        """Suspend the calling task for ``delay`` seconds."""


class RealClock(Clock):
    """Wall-clock time on a normal asyncio event loop.

    The ``time.monotonic()`` read below is the package's entire sanctioned
    wall-clock surface (see the DET003 ALLOWLIST).  Everything else in
    ``repro.serve`` asks this object for the time.
    """

    name = "real"

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)


class VirtualClock(Clock):
    """A deterministic virtual-time clock owning a patched asyncio loop.

    :meth:`run` drives a coroutine to completion on a fresh event loop whose
    selector never blocks: whenever the loop would wait ``timeout`` seconds
    for I/O, the clock instead advances virtual time by ``timeout`` and
    polls.  Because ``loop.time`` is overridden to the virtual time, every
    ``asyncio.sleep`` / ``call_later`` / ``wait_for`` in the coroutine tree
    observes exact, reproducible timestamps with zero real waiting.
    """

    name = "virtual"

    def __init__(self, start: float = 0.0) -> None:
        self._time = float(start)

    def now(self) -> float:
        return self._time

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)

    def run(self, main: Awaitable[T]) -> T:
        """Run ``main`` to completion under virtual time and return its result."""
        loop = asyncio.new_event_loop()
        self._install(loop)
        try:
            return loop.run_until_complete(main)
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    def _install(self, loop: asyncio.AbstractEventLoop) -> None:
        """Patch ``loop`` so waiting advances ``self._time`` instead of blocking."""
        selector = loop._selector  # type: ignore[attr-defined]
        orig_select = selector.select

        def virtual_select(timeout: Any = None) -> Any:
            if timeout is None:
                raise RuntimeError(
                    "virtual-time deadlock: the event loop would wait forever "
                    "(a task awaits something no timer will ever resolve)"
                )
            if timeout > 0:
                self._time += timeout
            return orig_select(0)

        selector.select = virtual_select
        loop.time = self.now  # type: ignore[method-assign]
        asyncio.set_event_loop(loop)
