"""Run reports for the serving layer: latency table + cost counters.

A :class:`RunReport` is the single output surface of ``repro.serve run``.
Under a :class:`~repro.serve.clock.VirtualClock` it is a *canonical*
artifact — seeded, clock-free, byte-reproducible — so :meth:`to_json`
serialises with sorted keys and fixed float formatting, exactly like the
experiment artifacts (the CI smoke ``cmp``'s two invocations).  Under a
:class:`~repro.serve.clock.RealClock` the same structure carries measured
wall-latency and is *not* canonical (the report says so via ``clock``).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Union

from repro.analysis.stats import LatencySummary

__all__ = ["RunReport"]

#: Artifact schema identifier (bump on incompatible change).
SCHEMA = "serve-report/2"

Number = Union[int, float]


@dataclasses.dataclass
class RunReport:
    """Everything one ``repro.serve`` run produced.

    Attributes:
        clock: ``"virtual"`` or ``"real"`` — whether the numbers are
            simulated (canonical) or measured.
        policy: Canonical spec of the policy the run *started* with.
        swaps: Any mid-run hot-swaps, as ``{"at": t, "policy": spec}``.
        events: Any mid-run membership events, as
            ``{"at": t, "action": "add"|"remove"|"crash", "backend": i}``.
        rate: Offered open-loop arrival rate (requests/second).
        duration_s: Span from first arrival to last completion (clock units).
        seed: The run seed.
        backends: Pool size.
        summary: Latency summary (p50/p90/p95/p99/p99.9 etc.).
        counters: Cost counters from the proxy (duplicate-rate, wasted work).
        per_backend_completions: Completed copies per backend, in ring order.
    """

    clock: str
    policy: str
    swaps: List[Dict[str, Union[float, str]]]
    events: List[Dict[str, Union[float, int, str]]]
    rate: float
    duration_s: float
    seed: int
    backends: int
    summary: LatencySummary
    counters: Dict[str, Number]
    per_backend_completions: List[int]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "clock": self.clock,
            "policy": self.policy,
            "swaps": self.swaps,
            "events": self.events,
            "rate": self.rate,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "backends": self.backends,
            "latency": dataclasses.asdict(self.summary),
            "counters": dict(self.counters),
            "per_backend_completions": list(self.per_backend_completions),
        }

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, newline-terminated."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def table(self, throughput: Optional[float] = None) -> str:
        """Human-readable latency/cost table for the terminal."""
        s = self.summary
        counters = self.counters
        scale, unit = (1e3, "ms") if s.p99 < 1.0 else (1.0, "s")
        width = 8 + len(unit)
        lines = [
            f"policy {self.policy}  clock {self.clock}  "
            f"backends {self.backends}  rate {self.rate:g}/s  seed {self.seed}",
            f"{'requests':>12}  {'p50':>{width}}  {'p95':>{width}}  "
            f"{'p99':>{width}}  {'dup-rate':>9}  {'wasted':>9}",
            f"{counters['requests']:>12}  "
            f"{s.p50 * scale:>8.3f}{unit}  "
            f"{s.p95 * scale:>8.3f}{unit}  "
            f"{s.p99 * scale:>8.3f}{unit}  "
            f"{counters['duplicate_rate']:>8.1%}  "
            f"{counters['wasted_service_s']:>8.3f}s",
        ]
        for swap in self.swaps:
            lines.append(f"  swap @ {swap['at']:g}s -> {swap['policy']}")
        for event in self.events:
            lines.append(
                f"  {event['action']} backend {event['backend']} @ {event['at']:g}s"
            )
        extras = [
            f"hedges fired {counters['hedges_fired']}",
            f"suppressed {counters['hedges_suppressed']}",
            f"cancelled {counters['copies_cancelled']}",
            f"failed copies {counters['failed_copies']}",
        ]
        lines.append("  " + "  ".join(extras))
        if throughput is not None:
            lines.append(f"  measured throughput {throughput:,.0f} req/s")
        return "\n".join(lines)
