"""Open-loop Poisson load generation against a :class:`RedundancyProxy`.

Open-loop means arrivals do not wait for completions — the defining load
model of the paper's analysis (Section 2) and of the offline substrates'
``PoissonArrivals`` traces, reused here verbatim.  The generator:

* draws the full arrival offset vector and key vector up front from seeded
  substreams (``substream(seed, "serve-arrivals")`` /
  ``("serve-keys")``) — identical seeds therefore mean identical traffic,
  which is what makes virtual-clock runs byte-reproducible;
* walks the timeline on the injected clock, dispatching each request the
  moment its arrival time is due — through the proxy's synchronous fast
  path when the current plan allows it, else as a racing task;
* optionally hot-swaps the proxy policy and applies membership events
  (backend add / graceful remove / crash) at scheduled times mid-run;
* drains the proxy and assembles the :class:`~repro.serve.report.RunReport`.

The ``resolution`` knob batches arrivals closer together than one sleep
granule into a single wakeup: under a virtual clock it should be 0 (every
arrival gets its exact timestamp); under a real clock ~1 ms keeps the issue
loop from being scheduler-bound at six-figure request rates.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.clock import Clock
from repro.serve.proxy import RedundancyProxy
from repro.serve.report import RunReport
from repro.sim.rng import substream
from repro.workloads.arrivals import PoissonArrivals

__all__ = ["LoadGenConfig", "run_load"]


@dataclasses.dataclass
class LoadGenConfig:
    """Parameters of one load-generation run.

    Attributes:
        rate: Offered arrival rate, requests/second.
        num_requests: Stop after this many arrivals (exclusive with
            ``duration_s``; exactly one must be set).
        duration_s: Stop issuing at this horizon (open interval).
        seed: Run seed; arrivals and keys come from substreams of it.
        keyspace: Keys are drawn uniformly from ``range(keyspace)``.
        resolution: Sleep granule (seconds); arrivals due within the same
            granule are issued in one wakeup.  ``0`` issues each arrival at
            its exact timestamp (virtual-clock mode).
        swaps: Scheduled policy hot-swaps, as ``(at_seconds, spec)`` pairs.
        events: Scheduled membership events, as ``(at_seconds, action,
            backend_index)`` triples with ``action`` one of ``"add"``,
            ``"remove"`` (graceful drain) or ``"crash"`` (dead eviction).
    """

    rate: float
    num_requests: Optional[int] = None
    duration_s: Optional[float] = None
    seed: int = 0
    keyspace: int = 10_000
    resolution: float = 0.0
    swaps: Sequence[Tuple[float, str]] = ()
    events: Sequence[Tuple[float, str, int]] = ()

    def __post_init__(self) -> None:
        if (self.num_requests is None) == (self.duration_s is None):
            raise ValueError("set exactly one of num_requests / duration_s")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate!r}")
        for _at, action, _backend in self.events:
            if action not in ("add", "remove", "crash"):
                raise ValueError(
                    f"event action must be add/remove/crash, got {action!r}"
                )


def _draw_traffic(config: LoadGenConfig) -> Tuple[np.ndarray, np.ndarray]:
    """The seeded ``(arrival_offsets, keys)`` vectors for the whole run."""
    arrivals = PoissonArrivals(config.rate, substream(config.seed, "serve-arrivals"))
    if config.num_requests is not None:
        offsets = arrivals.times_count(config.num_requests)
    else:
        offsets = arrivals.times_until(config.duration_s)
    keys = substream(config.seed, "serve-keys").integers(
        0, config.keyspace, size=len(offsets)
    )
    return offsets, keys


async def run_load(
    proxy: RedundancyProxy, clock: Clock, config: LoadGenConfig
) -> RunReport:
    """Drive ``proxy`` with open-loop Poisson traffic; return the report."""
    offsets, keys = _draw_traffic(config)
    initial_policy = proxy.policy_spec
    # Full-width table: a plan never uses more copies than there are
    # backends, so this keeps every policy (including k>8 and hot-swaps)
    # on the vectorised fast path.  int64 keyspace x backends is small.
    proxy.prepare_keyspace(config.keyspace, len(proxy.backends))
    start = clock.now()
    # One time-ordered control schedule covers policy swaps and membership
    # events; ties break swaps-before-events, then input order (stable sort).
    controls: List[Tuple[float, int, tuple]] = sorted(
        [(float(at), 0, (spec,)) for at, spec in config.swaps]
        + [(float(at), 1, (action, int(backend))) for at, action, backend in config.events],
        key=lambda control: control[:2],
    )

    def apply_control(kind: int, payload: tuple) -> None:
        if kind == 0:
            proxy.set_policy(payload[0])
        else:
            action, backend = payload
            if action == "add":
                proxy.add_backend(backend)
            else:
                proxy.remove_backend(backend, dead=(action == "crash"))

    issued_tasks: List[asyncio.Task] = []
    index = 0
    total = len(offsets)
    while index < total:
        due = float(offsets[index])
        while controls and controls[0][0] <= due:
            control_at, kind, payload = controls.pop(0)
            delay = (start + control_at) - clock.now()
            if delay > 0:
                await clock.sleep(delay)
            apply_control(kind, payload)
        delay = (start + due) - clock.now()
        if delay > config.resolution:
            await clock.sleep(delay)
        # Issue every arrival due within the current granule in one wakeup,
        # never crossing a scheduled control point (arrivals at exactly the
        # control time run under the new policy/membership, matching the
        # scalar path).
        horizon = (clock.now() - start) + config.resolution
        end = int(np.searchsorted(offsets, horizon, side="right"))
        if controls:
            end = min(end, int(np.searchsorted(offsets, controls[0][0], side="left")))
        end = max(end, index + 1)
        if end - index > 1 and proxy.submit_batch(
            keys[index:end], start + offsets[index:end]
        ):
            index = end
            continue
        while index < end:
            key = int(keys[index])
            if not proxy.submit_nowait(key):
                issued_tasks.append(asyncio.ensure_future(proxy.request(key)))
            index += 1
    for control_at, kind, payload in controls:
        delay = (start + control_at) - clock.now()
        if delay > 0:
            await clock.sleep(delay)
        apply_control(kind, payload)
    if issued_tasks:
        await asyncio.gather(*issued_tasks, return_exceptions=True)
    await proxy.drain()
    proxy.finalize()
    duration = max(clock.now(), proxy.last_finish_at) - start
    return RunReport(
        clock=clock.name,
        policy=initial_policy,
        swaps=list(proxy.policy_swaps),
        events=list(proxy.membership_events),
        rate=config.rate,
        duration_s=duration,
        seed=config.seed,
        backends=len(proxy.backends),
        summary=proxy.recorder.summary(),
        counters=proxy.counters(),
        per_backend_completions=[b.completed for b in proxy.backends],
    )
