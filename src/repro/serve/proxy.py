"""The redundancy-aware request proxy.

:class:`RedundancyProxy` fronts a pool of backends placed on a virtual-node
consistent-hash ring and applies a ``PolicySpec`` per request:

* ``none`` routes each key to its primary ring successor;
* ``k2``/``k3`` send eager copies to the k *distinct* ring successors
  (``ConsistentHashRing.replicas_for``) and keep the first answer;
* ``hedge:<delay>[...]`` launches the primary immediately and duplicate
  copies after the configured delays, via tasks parked on the injected
  clock;
* ``hedge:p95`` asks the live policy object for its current delay before
  every request — the proxy feeds each completed latency back through
  ``policy.record_latency``, so the streaming recorder inside
  ``HedgeOnPercentile`` warms up and the hedge delay adapts online;
* cancel-on-win (the paper's "cancel the rest") is plain
  ``asyncio`` task cancellation of the losing copies.

:meth:`RedundancyProxy.set_policy` hot-swaps the policy mid-run: requests
already in flight finish under the plan they were launched with; new
requests pick up the new plan.  Both dispatch paths (below) share the
backends' single reservation state, so a swap never corrupts queue state.

Membership is live too.  :meth:`RedundancyProxy.remove_backend` evicts a
backend from the hash ring mid-run — ``dead=True`` (a crash) additionally
marks it failed so copies already racing toward it error out and fail over;
``dead=False`` is a graceful drain: no *new* copies route to it, but
dispatched copies complete.  :meth:`RedundancyProxy.add_backend` brings a
pool slot (back) onto the ring; stable vnode identity means a re-added
backend reclaims exactly the keys it owned before.  Every membership event
rebuilds the precomputed replica table against the live ring, so both
dispatch paths re-home keys immediately and deterministically.

Two dispatch paths, one accounting surface:

* the **race path** (:meth:`request`) creates one task per copy and races
  them — required whenever a plan hedges, cancels on win, or must survive
  backend failure;
* the **fast path** (:meth:`submit_nowait`) covers eager plans without
  cancel-on-win: every copy's finish time is known at dispatch from the
  reservation math, so the proxy computes the winner synchronously and
  schedules a single ``call_at`` timer for the completion callback.  This
  is what makes ``bench`` sustain >100k req/s — no per-copy tasks, no
  races, one heap entry per request.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.consistent_hash import ConsistentHashRing
from repro.core.policy import (
    PolicyLike,
    ReplicationPolicy,
    RequestPlan,
    parse_policy,
    policy_to_spec,
)
from repro.metrics.recorder import LatencyRecorder
from repro.serve.backends import Backend, BackendError
from repro.serve.clock import Clock

__all__ = ["RedundancyProxy"]


class RedundancyProxy:
    """Race redundant copies of each request across ring-placed backends.

    Args:
        backends: The pool; ``backends[i]`` sits at ring position ``i``.
        clock: Injected time source — the proxy never reads a wall clock.
        policy: Initial replication policy (any ``PolicySpec`` or object).
        virtual_nodes: Virtual nodes per backend on the hash ring.
        recorder_name: Name for the internal streaming latency recorder.
    """

    def __init__(
        self,
        backends: Sequence[Backend],
        clock: Clock,
        policy: PolicyLike = "none",
        virtual_nodes: int = 64,
        recorder_name: str = "serve",
    ) -> None:
        if not backends:
            raise ValueError("RedundancyProxy needs at least one backend")
        self.backends = list(backends)
        self.clock = clock
        self.ring = ConsistentHashRing(len(self.backends), virtual_nodes=virtual_nodes)
        self.policy: ReplicationPolicy = parse_policy(policy)
        self.recorder = LatencyRecorder(recorder_name, mode="streaming")
        # Counters — the cost side of the latency/cost trade-off.
        self.requests = 0
        self.copies_launched = 0
        self.hedges_fired = 0
        self.hedges_suppressed = 0
        self.copies_cancelled = 0
        self.failed_copies = 0
        self.failed_requests = 0
        self.useful_service_s = 0.0
        self.policy_swaps: List[Dict[str, Union[float, str]]] = []
        self.membership_events: List[Dict[str, Union[float, int, str]]] = []
        self._replica_table: Optional[np.ndarray] = None
        self._table_copies = 0
        self._keyspace: Optional[int] = None
        self._keyspace_copies = 0
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._strays: set = set()
        self._fast_plan: Optional[RequestPlan] = None
        self._pending_latencies: List[float] = []
        self._pending_chunks: List[np.ndarray] = []
        self._last_finish = 0.0
        self._refresh_fast_plan()

    # ------------------------------------------------------------------
    # Policy management
    # ------------------------------------------------------------------

    def set_policy(self, policy: PolicyLike, record_swap: bool = True) -> None:
        """Hot-swap the replication policy; in-flight requests are unaffected."""
        self.policy = parse_policy(policy)
        self._refresh_fast_plan()
        if record_swap:
            self.policy_swaps.append(
                {"at": self.clock.now(), "policy": policy_to_spec(self.policy)}
            )

    def _refresh_fast_plan(self) -> None:
        """Cache the plan iff the fast path may serve it: static + eager +
        no cancel-on-win, and every backend able to reserve synchronously
        (real-socket backends cannot know their finish at dispatch).
        Adaptive and hedging plans always race."""
        if not all(hasattr(backend, "submit") for backend in self.backends):
            self._fast_plan = None
            return
        plan = self.policy.plan() if self.policy.is_static else None
        if plan is not None and plan.is_eager and not plan.cancel_on_win:
            self._fast_plan = plan
        else:
            self._fast_plan = None

    @property
    def policy_spec(self) -> str:
        return policy_to_spec(self.policy)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def live_backends(self) -> Tuple[int, ...]:
        """Indices of the backends currently on the ring, ascending."""
        return self.ring.servers

    def remove_backend(self, index: int, dead: bool = True) -> None:
        """Evict ``backends[index]`` from the ring (failover / scale-down).

        With ``dead=True`` the backend is also marked failed — crash
        semantics: racing copies already headed its way raise
        :class:`BackendError` and fail over to surviving replicas, while
        copies *in service* complete (fail-stop at dispatch, matching the
        offline substrates).  ``dead=False`` is a graceful drain: the
        backend just stops receiving new copies.

        Raises:
            ConfigurationError: If the index is not on the ring, or it is
                the last live backend.
        """
        self.ring.remove_server(index)
        backend = self.backends[index]
        if dead and hasattr(backend, "set_failed"):
            backend.set_failed(True)
        self.membership_events.append(
            {
                "at": self.clock.now(),
                "action": "crash" if dead else "remove",
                "backend": int(index),
            }
        )
        self._rebuild_replica_table()

    def add_backend(self, index: int) -> None:
        """Bring pool slot ``index`` (back) onto the ring.

        A previously crashed backend is revived (``set_failed(False)``)
        before it rejoins.  Stable vnode identity means a re-added backend
        reclaims exactly the keys it owned before its removal.

        Raises:
            ValueError: If ``index`` is not a pool slot.
            ConfigurationError: If the backend is already on the ring.
        """
        if not 0 <= index < len(self.backends):
            raise ValueError(
                f"backend index must be in [0, {len(self.backends)}), got {index!r}"
            )
        backend = self.backends[index]
        if getattr(backend, "failed", False) and hasattr(backend, "set_failed"):
            backend.set_failed(False)
        self.ring.add_server(index)
        self.membership_events.append(
            {"at": self.clock.now(), "action": "add", "backend": int(index)}
        )
        self._rebuild_replica_table()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def prepare_keyspace(self, num_keys: int, max_copies: int) -> None:
        """Precompute the replica table for keys ``0..num_keys-1``.

        One vectorised ``ring.replica_table`` pass replaces a per-request
        blake2b + bisect — load-bearing for the bench throughput target.
        The table is rebuilt automatically on every membership event, so
        ``max_copies`` is remembered (clamped to the live pool each time).
        """
        self._keyspace = int(num_keys)
        self._keyspace_copies = max(1, int(max_copies))
        self._rebuild_replica_table()

    def _rebuild_replica_table(self) -> None:
        """Recompute the replica table against the live ring membership."""
        if self._keyspace is None:
            return
        copies = min(self._keyspace_copies, self.ring.num_servers)
        self._replica_table = self.ring.replica_table(range(self._keyspace), copies)
        self._table_copies = copies

    def replicas(self, key: int, copies: int) -> List[int]:
        """The ``copies`` distinct live backend indices serving ``key``."""
        if self._replica_table is not None and key < len(self._replica_table):
            if copies <= self._table_copies:
                return [int(b) for b in self._replica_table[key, :copies]]
        return self.ring.replicas_for(key, copies)

    # ------------------------------------------------------------------
    # Fast path: eager plans without cancel-on-win
    # ------------------------------------------------------------------

    def submit_nowait(self, key: int, record: bool = True) -> bool:
        """Dispatch ``key`` without creating tasks, if the plan allows it.

        Returns ``False`` when the current plan hedges, adapts or cancels
        on win — the caller must fall back to :meth:`request`.  Otherwise
        reserves every copy synchronously: with eager launches and no
        cancellation, every copy's finish is fixed by the reservation math
        at dispatch and cannot be affected by later requests, so the winner
        is known immediately — no task, no timer, no race.
        """
        plan = self._fast_plan
        if plan is None:
            return False
        now = self.clock.now()
        max_copies = min(plan.copies, self.ring.num_servers)
        win_finish = None
        win_service = 0.0
        launched = 0
        for backend_index in self.replicas(key, max_copies):
            backend = self.backends[backend_index]
            if backend.failed:
                self.failed_copies += 1
                continue
            finish, service = backend.submit(key, now)
            launched += 1
            if win_finish is None or finish < win_finish:
                win_finish = finish
                win_service = service
        self.requests += 1
        self.copies_launched += launched
        if win_finish is None:
            self.failed_requests += 1
            return True
        self.useful_service_s += win_service
        if win_finish > self._last_finish:
            self._last_finish = win_finish
        if record:
            self._pending_latencies.append(win_finish - now)
            self.policy.record_latency(win_finish - now)
        return True

    def submit_batch(
        self, keys: np.ndarray, arrivals: np.ndarray, record: bool = True
    ) -> bool:
        """Vectorised :meth:`submit_nowait` for a block of due arrivals.

        ``arrivals`` are absolute, ascending timestamps.  Copies are grouped
        per backend (in arrival order, preserving each backend's FIFO and
        draw order) and reserved with one :meth:`SimBackend.submit_many`
        call each — the dispatch path the ``bench`` throughput target
        measures.  Falls back to ``False`` (caller loops scalar) when the
        plan is not fast-path eligible, a backend is down, or a backend
        lacks vectorised submission.
        """
        plan = self._fast_plan
        if plan is None or self._replica_table is None:
            return False
        # Only the *live* members receive batch copies — a crashed backend
        # off the ring must not refuse the batch for everyone else.
        if any(
            self.backends[i].failed or not hasattr(self.backends[i], "submit_many")
            for i in self.ring.servers
        ):
            return False
        count = len(keys)
        copies = min(plan.copies, self.ring.num_servers)
        if copies > self._table_copies:
            # A narrower table than the plan would leave the tail columns of
            # the finish/service arrays unfilled — fall back to scalar
            # dispatch, which recomputes replicas off-table.
            return False
        replicas = self._replica_table[keys, :copies]
        finishes = np.empty((count, copies))
        services = np.empty((count, copies))
        for index, backend in enumerate(self.backends):
            rows, cols = np.nonzero(replicas == index)
            if len(rows) == 0:
                continue
            finishes[rows, cols], services[rows, cols] = backend.submit_many(
                arrivals[rows]
            )
        winner = np.argmin(finishes, axis=1)
        lanes = np.arange(count)
        win_finish = finishes[lanes, winner]
        latencies = win_finish - arrivals
        self.requests += count
        self.copies_launched += count * copies
        self.useful_service_s += float(services[lanes, winner].sum())
        last = float(win_finish.max())
        if last > self._last_finish:
            self._last_finish = last
        if record:
            self._pending_chunks.append(latencies)
        return True

    def finalize(self) -> None:
        """Flush deferred fast-path latencies into the recorder."""
        if self._pending_latencies:
            self.recorder.record_many(self._pending_latencies)
            self._pending_latencies = []
        for chunk in self._pending_chunks:
            self.recorder.record_many(chunk)
        self._pending_chunks = []

    @property
    def last_finish_at(self) -> float:
        """Latest known completion time (fast-path completions included)."""
        return self._last_finish

    # ------------------------------------------------------------------
    # Race path: hedged / cancel-on-win / failure-tolerant dispatch
    # ------------------------------------------------------------------

    async def request(self, key: int, record: bool = True) -> float:
        """Serve one request under the current plan; return its latency.

        Launches one task per copy (delayed copies park on ``clock.sleep``),
        races them, feeds the winner's latency to the recorder and the
        policy, and — when the plan says so — cancels the losers.
        """
        plan = self.policy.plan()
        started = self.clock.now()
        max_copies = min(plan.copies, self.ring.num_servers)
        replicas = self.replicas(key, max_copies)
        self.requests += 1
        self._begin()
        tasks = []
        launched_flags = {}
        for copy, delay in enumerate(plan.launch_delays[:max_copies]):
            flag = [False]
            task = asyncio.ensure_future(
                self._copy(self.backends[replicas[copy]], key, delay, delay > 0, flag)
            )
            tasks.append(task)
            launched_flags[task] = flag
        try:
            winner_latency: Optional[float] = None
            winner_service = 0.0
            pending = set(tasks)
            launch_index = {task: position for position, task in enumerate(tasks)}
            while pending and winner_latency is None:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                # ``done`` is an unordered set; on a (virtual-time) tie the
                # winner must not depend on set iteration order, so visit
                # copies in launch order — the byte-reproducibility contract.
                for task in sorted(done, key=launch_index.__getitem__):
                    if task.cancelled() or task.exception() is not None:
                        continue
                    if task.result() is not None:
                        winner_latency = self.clock.now() - started
                        winner_service = task.result()
                        break
            if winner_latency is None:
                self.failed_requests += 1
                raise BackendError(f"all copies of request {key} failed")
            # A backup still parked on its delay is always suppressed (it
            # never reached a backend — matching simulate_hedged_arrivals);
            # copies already under way are cancelled only when the plan
            # says cancel-on-win, else they run to completion as strays.
            to_cancel = {
                task
                for task in pending
                if plan.cancel_on_win or not launched_flags[task][0]
            }
            for task in pending - to_cancel:
                self._strays.add(task)
                task.add_done_callback(self._strays.discard)
            if to_cancel:
                for task in to_cancel:
                    task.cancel()
                # Await the cancellations so the backends reclaim their
                # reservation tails before the next request reserves.
                await asyncio.wait(to_cancel)
            self.useful_service_s += winner_service
            if record:
                self.recorder.record(winner_latency)
                self.policy.record_latency(winner_latency)
            return winner_latency
        finally:
            self._end()

    async def _copy(
        self,
        backend: Backend,
        key: int,
        delay: float,
        is_hedge: bool,
        launched_flag: List[bool],
    ) -> Optional[float]:
        """One (possibly delayed) copy; ``None`` means the copy failed.

        Counter semantics match ``core.hedging.hedged_call``: a hedge
        cancelled while still parked on its delay never reached a backend
        and counts as *suppressed*; one cancelled mid-service counts as a
        launched-then-*cancelled* copy.
        """
        if delay > 0:
            try:
                await self.clock.sleep(delay)
            except asyncio.CancelledError:
                self.hedges_suppressed += 1
                raise
        launched_flag[0] = True
        if is_hedge:
            self.hedges_fired += 1
        self.copies_launched += 1
        try:
            return await backend.handle(key)
        except asyncio.CancelledError:
            self.copies_cancelled += 1
            raise
        except BackendError:
            self.failed_copies += 1
            return None

    # ------------------------------------------------------------------
    # Drain / bookkeeping
    # ------------------------------------------------------------------

    def _begin(self) -> None:
        self._in_flight += 1
        self._idle.clear()

    def _end(self) -> None:
        self._in_flight -= 1
        if self._in_flight == 0:
            self._idle.set()

    @property
    def in_flight(self) -> int:
        return self._in_flight

    async def drain(self) -> None:
        """Wait until every accepted request has completed."""
        await self._idle.wait()
        while self._strays:
            await asyncio.wait(set(self._strays))

    def counters(self) -> Dict[str, Union[int, float]]:
        """The cost-side counters as a plain dict (stable key order)."""
        duplicate_rate = (
            self.copies_launched / self.requests - 1.0 if self.requests else 0.0
        )
        consumed = sum(backend.consumed_s for backend in self.backends)
        return {
            "requests": self.requests,
            "copies_launched": self.copies_launched,
            "duplicate_rate": duplicate_rate,
            "hedges_fired": self.hedges_fired,
            "hedges_suppressed": self.hedges_suppressed,
            "copies_cancelled": self.copies_cancelled,
            "failed_copies": self.failed_copies,
            "failed_requests": self.failed_requests,
            "service_consumed_s": consumed,
            "useful_service_s": self.useful_service_s,
            "wasted_service_s": max(0.0, consumed - self.useful_service_s),
        }
