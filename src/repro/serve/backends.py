"""Backend abstraction for the live serving layer.

A :class:`Backend` answers one request at a time cost; the proxy races k of
them.  :class:`SimBackend` is the workhorse: service times drawn from any
existing substrate :class:`~repro.distributions.base.Distribution` on a
seeded substream, with a single-server FIFO discipline expressed as a
*reservation*::

    start  = max(now, busy_until)
    finish = start + service
    busy_until = finish

— the same math as ``StorageServerModel``/the memcached ``free_at`` array,
so the online layer and the offline substrates agree on what a queue is.

Cancellation is conservative, matching ``sim.resources.Server.cancel``: a
cancelled copy gives back only the *tail* of its reservation, and only when
nothing was queued behind it — cancellation saves queueing, not work
already under way.

Two call surfaces share that one ``busy_until`` state:

* ``async handle(key)`` — coroutine path used by the racing proxy: reserves,
  sleeps on the injected clock until the reserved finish, reclaims on
  cancellation.
* ``submit(key, now)`` — synchronous fast path used by the proxy's
  no-cancel eager dispatch: reserves and returns the absolute finish time
  without creating a task.  Because both paths drive the same reservation,
  a policy hot-swap mid-run never leaves the pool with two disagreeing
  pictures of its queues.

``queueing=False`` turns the backend into an infinite-server station (no
reservation coupling between requests) — the configuration the ``bench``
mode uses so throughput measurement is not confounded by simulated
saturation.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from repro.distributions import Distribution, Exponential
from repro.serve.clock import Clock
from repro.sim.rng import substream

__all__ = ["Backend", "BackendError", "SimBackend"]

#: Service draws are replenished in blocks of this many samples.
_DRAW_BLOCK = 4096


class BackendError(RuntimeError):
    """A backend refused a request (e.g. it was marked failed)."""


class Backend(abc.ABC):
    """One addressable server in the pool, identified by its ring index."""

    def __init__(self, index: int) -> None:
        self.index = int(index)
        #: Completed copies (winners and losers both; cancelled copies not).
        self.completed = 0
        #: Simulated seconds of service actually consumed on this backend.
        self.consumed_s = 0.0

    @property
    @abc.abstractmethod
    def failed(self) -> bool:
        """Whether the backend currently refuses requests."""

    @abc.abstractmethod
    async def handle(self, key: int) -> float:
        """Serve ``key``; return the service time spent (seconds)."""


class SimBackend(Backend):
    """A simulated backend: seeded service-time draws + FIFO reservations.

    Args:
        index: Position of this backend in the pool (names its substream).
        clock: The injected clock; all waiting goes through it.
        seed: Pool-level seed; the backend draws from
            ``substream(seed, "serve-backend", index)``.
        service: Service-time distribution (seconds). Defaults to an
            exponential with 1 ms mean.
        queueing: ``True`` for single-server FIFO (the default), ``False``
            for an infinite-server station (bench mode).
    """

    def __init__(
        self,
        index: int,
        clock: Clock,
        seed: int,
        service: Optional[Distribution] = None,
        queueing: bool = True,
    ) -> None:
        super().__init__(index)
        self._clock = clock
        self._service = service if service is not None else Exponential(mean=0.001)
        self._rng = substream(seed, "serve-backend", index)
        self._queueing = bool(queueing)
        self._busy_until = 0.0
        self._failed = False
        self._block = np.empty(0)
        self._cursor = 0

    @property
    def failed(self) -> bool:
        return self._failed

    def set_failed(self, failed: bool = True) -> None:
        """Mark the backend down (``handle``/``submit`` raise) or back up."""
        self._failed = bool(failed)

    def draw_service(self) -> float:
        """Next seeded service time (block-buffered for throughput)."""
        if self._cursor >= len(self._block):
            self._block = np.asarray(
                self._service.sample(self._rng, size=_DRAW_BLOCK), dtype=float
            )
            self._cursor = 0
        value = float(self._block[self._cursor])
        self._cursor += 1
        return value

    def draw_many(self, count: int) -> np.ndarray:
        """Next ``count`` seeded service times, from the same block stream.

        Consumes the identical draw sequence as ``count`` calls to
        :meth:`draw_service`, so batched and scalar dispatch agree on which
        service time each copy gets.
        """
        parts = []
        remaining = count
        while remaining > 0:
            available = len(self._block) - self._cursor
            if available == 0:
                self._block = np.asarray(
                    self._service.sample(self._rng, size=max(_DRAW_BLOCK, remaining)),
                    dtype=float,
                )
                self._cursor = 0
                continue
            take = min(available, remaining)
            parts.append(self._block[self._cursor : self._cursor + take])
            self._cursor += take
            remaining -= take
        return parts[0].copy() if len(parts) == 1 else np.concatenate(parts)

    def submit(self, key: int, now: float) -> Tuple[float, float]:
        """Reserve service for ``key`` at ``now``; return ``(finish, service)``.

        The synchronous fast path: no task, no sleep — the caller is
        responsible for delivering the completion at ``finish``.
        """
        if self._failed:
            raise BackendError(f"backend {self.index} is marked failed")
        service = self.draw_service()
        if self._queueing:
            start = max(now, self._busy_until)
            finish = start + service
            self._busy_until = finish
        else:
            finish = now + service
        self.completed += 1
        self.consumed_s += service
        return finish, service

    def submit_many(self, arrivals: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`submit` for a batch of copies.

        ``arrivals`` must be ascending (the load generator issues arrivals
        in time order).  Returns ``(finishes, services)``.  The FIFO
        recurrence ``finish_i = max(arrival_i, finish_{i-1}) + service_i``
        is evaluated in closed form: with ``C = cumsum(services)``,
        ``finish_i = max(busy, max_{j<=i}(arrival_j - C_{j-1})) + C_i``.
        """
        if self._failed:
            raise BackendError(f"backend {self.index} is marked failed")
        services = self.draw_many(len(arrivals))
        if self._queueing:
            csum = np.cumsum(services)
            slack = np.maximum.accumulate(arrivals - (csum - services))
            finishes = np.maximum(slack, self._busy_until) + csum
            self._busy_until = float(finishes[-1])
        else:
            finishes = arrivals + services
        self.completed += len(arrivals)
        self.consumed_s += float(services.sum())
        return finishes, services

    async def handle(self, key: int) -> float:
        """Serve ``key`` on the coroutine path; cancellable while queued.

        Reserves exactly like :meth:`submit`, then sleeps the injected clock
        until the reserved finish.  On cancellation the reservation tail is
        reclaimed only if this copy is still the last reservation (nothing
        queued behind it) — and never below the work already performed.
        """
        if self._failed:
            raise BackendError(f"backend {self.index} is marked failed")
        now = self._clock.now()
        service = self.draw_service()
        if self._queueing:
            prev_busy = self._busy_until
            start = max(now, prev_busy)
            finish = start + service
            self._busy_until = finish
        else:
            prev_busy = now
            start = now
            finish = now + service
        try:
            delay = finish - now
            if delay > 0:
                await self._clock.sleep(delay)
        except BaseException:
            if self._queueing and self._busy_until == finish:
                cancel_at = self._clock.now()
                self._busy_until = max(prev_busy, min(cancel_at, finish))
                self.consumed_s += max(0.0, min(cancel_at, finish) - start)
            else:
                self.completed += 1
                self.consumed_s += service
            raise
        self.completed += 1
        self.consumed_s += service
        return service
