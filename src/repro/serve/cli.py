"""``python -m repro.serve`` — run the live serving loop or benchmark it.

Two subcommands:

``run``
    One load-generation run: ``--policy``, ``--rate`` and exactly one of
    ``--requests`` / ``--duration``.  ``--clock virtual`` (the default)
    executes the whole stack under the deterministic virtual-time loop and
    emits a canonical, byte-reproducible report; ``--clock real`` paces the
    same run on the wall clock.  ``--swap T:SPEC`` hot-swaps the policy
    mid-run and ``--event T:ACTION:INDEX`` applies a membership event
    (``add`` / ``remove`` / ``crash`` of one backend) mid-run — both
    repeatable.  ``--backend echo`` swaps the simulated pool for real
    loopback TCP echo servers (real clock only).

``bench``
    Throughput measurement: saturates the proxy's dispatch path with
    pre-drawn traffic per policy and reports sustained requests/second.
    ``--assert-floor N`` exits non-zero unless the *best* measured policy
    sustains at least N req/s — the CI floor assertion.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional, Sequence, Tuple

from repro.core.policy import canonical_policy_spec
from repro.distributions import Exponential
from repro.serve.backends import SimBackend
from repro.serve.clock import Clock, RealClock, VirtualClock
from repro.serve.loadgen import LoadGenConfig, run_load
from repro.serve.proxy import RedundancyProxy
from repro.serve.report import RunReport

__all__ = ["main"]


def _parse_swap(text: str) -> Tuple[float, str]:
    """``T:SPEC`` — seconds into the run, then a PolicySpec (may contain :)."""
    head, sep, spec = text.partition(":")
    if not sep or not spec:
        raise argparse.ArgumentTypeError(
            f"--swap wants T:SPEC (e.g. 0.5:hedge:2ms), got {text!r}"
        )
    try:
        at = float(head)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad --swap time in {text!r}") from exc
    canonical_policy_spec(spec)  # unknown spec -> loud failure at parse time
    return at, spec


def _parse_event(text: str) -> Tuple[float, str, int]:
    """``T:ACTION:INDEX`` — e.g. ``0.4:crash:1`` kills backend 1 at 0.4 s."""
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"--event wants T:ACTION:INDEX (e.g. 0.4:crash:1), got {text!r}"
        )
    head, action, tail = parts
    try:
        at = float(head)
        index = int(tail)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad --event time/index in {text!r}") from exc
    if action not in ("add", "remove", "crash"):
        raise argparse.ArgumentTypeError(
            f"--event action must be add/remove/crash, got {action!r}"
        )
    return at, action, index


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.split("\n\n")[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one load-generation run")
    run.add_argument("--policy", default="none", help="initial PolicySpec")
    run.add_argument("--rate", type=float, default=2000.0, help="arrivals/second")
    stop = run.add_mutually_exclusive_group()
    stop.add_argument("--requests", type=int, default=None, help="stop after N arrivals")
    stop.add_argument("--duration", type=float, default=None, help="stop after T seconds")
    run.add_argument("--backends", type=int, default=8, help="pool size")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--clock", choices=("virtual", "real"), default="virtual")
    run.add_argument("--backend", choices=("sim", "echo"), default="sim")
    run.add_argument(
        "--service-mean", type=float, default=0.001,
        help="SimBackend mean service time, seconds",
    )
    run.add_argument("--keyspace", type=int, default=10_000)
    run.add_argument(
        "--swap", action="append", type=_parse_swap, default=[],
        metavar="T:SPEC", help="hot-swap the policy T seconds into the run",
    )
    run.add_argument(
        "--event", action="append", type=_parse_event, default=[],
        metavar="T:ACTION:INDEX",
        help="membership event T seconds into the run: add, remove "
             "(graceful drain) or crash (dead eviction) of backend INDEX",
    )
    run.add_argument("--json", default=None, help="write the canonical report here")
    run.add_argument("--quiet", action="store_true")

    bench = sub.add_parser("bench", help="dispatch-path throughput measurement")
    bench.add_argument(
        "--policies", default="none,k2,hedge:1ms,hedge:p95",
        help="comma-separated PolicySpecs to bench",
    )
    bench.add_argument("--requests", type=int, default=200_000, help="per policy")
    bench.add_argument("--backends", type=int, default=8)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--assert-floor", type=float, default=None, metavar="REQ_PER_S",
        help="exit 1 unless the best policy sustains at least this",
    )
    bench.add_argument("--quiet", action="store_true")
    return parser


def _sim_pool(
    count: int, clock: Clock, seed: int, mean_s: float, queueing: bool = True
) -> List[SimBackend]:
    service = Exponential(mean=mean_s)
    return [
        SimBackend(i, clock, seed=seed, service=service, queueing=queueing)
        for i in range(count)
    ]


def cmd_run(args: argparse.Namespace) -> int:
    if args.requests is None and args.duration is None:
        args.requests = 5_000
    if args.backend == "echo" and args.clock == "virtual":
        print("--backend echo requires --clock real", file=sys.stderr)
        return 2
    clock: Clock = VirtualClock() if args.clock == "virtual" else RealClock()
    config = LoadGenConfig(
        rate=args.rate,
        num_requests=args.requests,
        duration_s=args.duration,
        seed=args.seed,
        keyspace=args.keyspace,
        resolution=0.0 if args.clock == "virtual" else 0.001,
        swaps=args.swap,
        events=args.event,
    )

    async def drive() -> RunReport:
        if args.backend == "echo":
            from repro.serve.echo import EchoBackend, EchoServer

            servers = [EchoServer() for _ in range(args.backends)]
            ports = [await server.start() for server in servers]
            pool = [
                EchoBackend(i, clock, port) for i, port in enumerate(ports)
            ]
            try:
                proxy = RedundancyProxy(pool, clock, policy=args.policy)
                return await run_load(proxy, clock, config)
            finally:
                for backend in pool:
                    await backend.close()
                for server in servers:
                    await server.stop()
        pool = _sim_pool(args.backends, clock, args.seed, args.service_mean)
        proxy = RedundancyProxy(pool, clock, policy=args.policy)
        return await run_load(proxy, clock, config)

    if isinstance(clock, VirtualClock):
        report = clock.run(drive())
    else:
        report = asyncio.run(drive())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    if not args.quiet:
        print(report.table())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.core.policy import parse_policy

    policies = [spec.strip() for spec in args.policies.split(",") if spec.strip()]
    wall = RealClock()
    rows: List[Tuple[str, float, int, str]] = []
    for spec in policies:
        policy = parse_policy(spec)
        plan = policy.plan() if policy.is_static else None
        fast = plan is not None and plan.is_eager and not plan.cancel_on_win
        clock = RealClock()
        # Infinite-server backends: bench measures the dispatch path, not
        # simulated queueing, so saturation cannot confound throughput.
        pool = _sim_pool(args.backends, clock, args.seed, 0.001, queueing=False)
        proxy = RedundancyProxy(pool, clock, policy=spec)
        if fast:
            # An offered rate far beyond any achievable throughput turns the
            # open-loop generator into a saturation test: every arrival is
            # already due, so the issue loop never sleeps.
            requests = args.requests
            config = LoadGenConfig(
                rate=1e9, num_requests=requests, seed=args.seed, resolution=0.05
            )
        else:
            # Racing policies spend one task per copy; an unbounded offered
            # rate would just pile up in-flight tasks and measure event-loop
            # collapse, not capacity.  Offer a rate near capacity instead.
            requests = min(args.requests, 8_000)
            config = LoadGenConfig(
                rate=8_000.0, num_requests=requests, seed=args.seed, resolution=0.001
            )
        started = wall.now()
        asyncio.run(run_load(proxy, clock, config))
        elapsed = wall.now() - started
        rows.append((spec, requests / elapsed, requests, "batch" if fast else "race"))
    best = max(throughput for _, throughput, _, _ in rows)
    if not args.quiet:
        print(f"{'policy':<16} {'path':<6} {'requests':>9} {'req/s':>12}   "
              f"({args.backends} SimBackends, dispatch-path)")
        for spec, throughput, requests, path in rows:
            print(f"{spec:<16} {path:<6} {requests:>9} {throughput:>12,.0f}")
        print(f"{'best':<16} {'':<6} {'':>9} {best:>12,.0f}")
    if args.assert_floor is not None and best < args.assert_floor:
        print(
            f"bench floor failed: best {best:,.0f} req/s < "
            f"floor {args.assert_floor:,.0f} req/s",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    return cmd_bench(args)
