"""Live redundancy-aware serving layer (``repro.serve``).

The offline substrates (PRs 1-7) evaluate "duplicate the request, keep the
first answer, cancel the rest" against *simulated* traces.  ``repro.serve``
composes the same building blocks — the virtual-node consistent-hash ring,
the ``PolicySpec`` mini-language and the streaming latency recorder — into
an *online* asyncio serving loop:

* :mod:`repro.serve.clock` — the injectable :class:`~repro.serve.clock.Clock`
  seam.  Every sleep/timeout in this package goes through it, so the entire
  proxy + load-generator stack runs under a seeded virtual-time event loop
  in tests (byte-reproducible summaries, zero wall-clock reads).
* :mod:`repro.serve.backends` — the backend abstraction:
  :class:`~repro.serve.backends.SimBackend` draws service times from the
  existing substrate distributions on seeded substreams; an optional
  real-socket echo backend lives in :mod:`repro.serve.echo`.
* :mod:`repro.serve.proxy` — :class:`~repro.serve.proxy.RedundancyProxy`,
  which places backends on the ring and applies any ``PolicySpec`` per
  request: eager k-copies to the k distinct ring successors, ``hedge:<d>``
  via delayed duplicate tasks, ``hedge:p95`` driven live by the streaming
  recorder, cancel-on-win via task cancellation — with live policy hot-swap.
* :mod:`repro.serve.loadgen` / :mod:`repro.serve.report` — the open-loop
  Poisson load generator and its latency/cost report.
* :mod:`repro.serve.cli` — ``python -m repro.serve run|bench``.
"""

from repro.serve.backends import Backend, BackendError, SimBackend
from repro.serve.clock import Clock, RealClock, VirtualClock
from repro.serve.loadgen import LoadGenConfig, run_load
from repro.serve.proxy import RedundancyProxy
from repro.serve.report import RunReport

__all__ = [
    "Backend",
    "BackendError",
    "Clock",
    "LoadGenConfig",
    "RealClock",
    "RedundancyProxy",
    "RunReport",
    "SimBackend",
    "VirtualClock",
    "run_load",
]
