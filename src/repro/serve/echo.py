"""An optional real-socket echo backend for end-to-end plumbing checks.

:class:`EchoServer` is a loopback TCP server that reads newline-delimited
request ids and echoes them back; :class:`EchoBackend` satisfies the
:class:`~repro.serve.backends.Backend` contract by round-tripping each
request over its own connection and reporting the measured round-trip as
the "service" time.

This pair exists to prove the proxy's dispatch, cancellation and failure
paths against real I/O — it is *not* deterministic and therefore requires
a :class:`~repro.serve.clock.RealClock` (under a virtual clock a socket
await would be a virtual-time deadlock, and the clock refuses to wait
forever rather than hang).  Latency numbers it produces never become
canonical artifacts.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.serve.backends import Backend, BackendError
from repro.serve.clock import Clock, VirtualClock

__all__ = ["EchoBackend", "EchoServer"]


class EchoServer:
    """A loopback TCP echo server (one line in, the same line out)."""

    def __init__(self) -> None:
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    async def start(self) -> int:
        """Bind on an ephemeral loopback port; return the port."""
        self._server = await asyncio.start_server(self._serve, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                writer.write(line)
                await writer.drain()
        except asyncio.CancelledError:
            pass  # server shutdown while a round-trip was parked on read
        finally:
            writer.close()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class EchoBackend(Backend):
    """A backend that round-trips each request over a real TCP connection."""

    def __init__(self, index: int, clock: Clock, port: int) -> None:
        if isinstance(clock, VirtualClock):
            raise ValueError(
                "EchoBackend does real socket I/O and cannot run under a "
                "VirtualClock; use RealClock (or SimBackend for virtual time)"
            )
        super().__init__(index)
        self._clock = clock
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        self._failed = False

    @property
    def failed(self) -> bool:
        return self._failed

    def set_failed(self, failed: bool = True) -> None:
        self._failed = bool(failed)

    async def _connect(self) -> None:
        if self._reader is None:
            self._reader, self._writer = await asyncio.open_connection(
                "127.0.0.1", self._port
            )

    async def handle(self, key: int) -> float:
        if self._failed:
            raise BackendError(f"backend {self.index} is marked failed")
        started = self._clock.now()
        try:
            # One in-flight round-trip per connection; concurrent copies
            # queue here — the socket analogue of the SimBackend FIFO.
            async with self._lock:
                await self._connect()
                assert self._writer is not None and self._reader is not None
                self._writer.write(f"{self.index}:{key}\n".encode("ascii"))
                await self._writer.drain()
                reply = await self._reader.readline()
        except asyncio.CancelledError:
            # A cancelled round-trip may leave an unread reply in the
            # stream; drop the connection so the next copy starts clean.
            self._reset()
            raise
        if not reply:
            self.set_failed(True)
            raise BackendError(f"backend {self.index} connection closed")
        elapsed = self._clock.now() - started
        self.completed += 1
        self.consumed_s += elapsed
        return elapsed

    def _reset(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._reader = None
        self._writer = None

    async def close(self) -> None:
        self._reset()
