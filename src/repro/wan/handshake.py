"""The Section 3.1 TCP connection-establishment model.

The paper's back-of-the-envelope analysis, implemented exactly:

* The three handshake packets (SYN, SYN-ACK, ACK) are sent over an idealised
  network: a packet is delivered after RTT/2 with probability ``1 - p`` and
  lost with probability ``p``, independently per transmission attempt.
* ``p`` is 0.0048 when one copy of each packet is sent and 0.0007 when each
  packet is duplicated back-to-back (the measured correlated pair-loss rate).
* Timeouts follow the Linux kernel: 3 seconds initially for SYN and SYN-ACK,
  ``3 x RTT`` for the final ACK, with exponential backoff on each loss.

The model is evaluated both analytically (exact expectation and quantiles of
the geometric retry process) and by Monte Carlo, and the resulting savings are
converted into the paper's ms/KB cost-effectiveness unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.costbenefit import CostBenefitAnalysis, DEFAULT_BREAK_EVEN_MS_PER_KB
from repro.core.policy import PolicyLike, eager_copies, parse_policy, policy_to_spec
from repro.exceptions import ConfigurationError
from repro.metrics import LatencyRecorder
from repro.sim.rng import substream
from repro.wan.loss import PAIR_LOSS_PROBABILITY, SINGLE_LOSS_PROBABILITY

#: Seed of the generator used when a sampling method is called without an
#: explicit ``rng``.  Library entry points never construct *unseeded*
#: generators (the repo-wide determinism contract, lint rule DET001): an
#: omitted ``rng`` means "give me the deterministic default stream", not
#: "give me fresh OS entropy".
DEFAULT_SAMPLING_SEED = 0


@dataclass(frozen=True)
class HandshakeResult:
    """Summary of handshake completion times for one configuration.

    Attributes:
        copies: Number of copies of each handshake packet.
        mean: Mean handshake completion time in seconds.
        p99: 99th-percentile completion time in seconds.
        p999: 99.9th-percentile completion time in seconds.
        loss_probability: Per-packet loss probability used.
    """

    copies: int
    mean: float
    p99: float
    p999: float
    loss_probability: float


@dataclass(frozen=True)
class HandshakePolicyResult:
    """Monte-Carlo summary of handshake completion under a replication policy.

    Attributes:
        policy_spec: Canonical spec of the policy (``None`` if inexpressible).
        mean: Mean handshake completion time in seconds.
        p99: 99th-percentile completion time in seconds.
        p999: 99.9th-percentile completion time in seconds.
        backup_packets_per_handshake: Average number of duplicate packets the
            policy actually sent per handshake — the traffic cost.  Eager
            duplication pays ``(copies - 1) * 3``; deferred hedging pays only
            for packets whose response was still outstanding at the hedge
            delay.
        num_samples: Monte-Carlo sample count.
    """

    policy_spec: Optional[str]
    mean: float
    p99: float
    p999: float
    backup_packets_per_handshake: float
    num_samples: int


class HandshakeModel:
    """Completion time of a TCP three-way handshake under packet loss."""

    def __init__(
        self,
        rtt: float = 0.05,
        syn_timeout: float = 3.0,
        single_loss: float = SINGLE_LOSS_PROBABILITY,
        pair_loss: float = PAIR_LOSS_PROBABILITY,
        max_retries: int = 12,
    ) -> None:
        """Create the model.

        Args:
            rtt: Round-trip time in seconds.
            syn_timeout: Initial retransmission timeout for SYN and SYN-ACK
                (3 s in Linux/Windows, 1 s in OS X; the paper uses 3 s).
            single_loss: Loss probability for a single copy of a packet.
            pair_loss: Loss probability when a packet is sent twice
                back-to-back.
            max_retries: Cap on retransmission attempts per packet (keeps the
                analytic series and the Monte-Carlo bounded; real kernels give
                up far earlier).

        Raises:
            ConfigurationError: On non-positive RTT/timeout or invalid
                probabilities.
        """
        if rtt <= 0 or syn_timeout <= 0:
            raise ConfigurationError("rtt and syn_timeout must be positive")
        if not 0.0 <= pair_loss <= single_loss <= 1.0:
            raise ConfigurationError("need 0 <= pair_loss <= single_loss <= 1")
        if max_retries < 1:
            raise ConfigurationError("max_retries must be >= 1")
        self.rtt = float(rtt)
        self.syn_timeout = float(syn_timeout)
        self.single_loss = float(single_loss)
        self.pair_loss = float(pair_loss)
        self.max_retries = int(max_retries)

    # ------------------------------------------------------------------ #

    def loss_probability(self, copies: int) -> float:
        """Per-packet loss probability when each packet is sent ``copies`` times."""
        if copies < 1:
            raise ConfigurationError(f"copies must be >= 1, got {copies!r}")
        if copies == 1:
            return self.single_loss
        if copies == 2:
            return self.pair_loss
        ratio = self.pair_loss / self.single_loss if self.single_loss else 0.0
        return self.single_loss * ratio ** (copies - 1)

    def _packet_timeouts(self) -> List[float]:
        """Initial timeout of each of the three handshake packets.

        SYN and SYN-ACK use the kernel's fixed initial timeout; the final ACK
        is recovered via the SYN-ACK retransmission path, which the paper
        approximates as a ``3 x RTT`` penalty.
        """
        return [self.syn_timeout, self.syn_timeout, 3.0 * self.rtt]

    def expected_packet_delay(self, initial_timeout: float, loss: float) -> float:
        """Expected completion contribution of one handshake packet.

        The packet is delivered on attempt ``i`` (0-based) with probability
        ``(1 - loss) * loss^i``, having waited the sum of the first ``i``
        exponentially backed-off timeouts — ``initial_timeout * (2^i - 1)`` —
        before the successful attempt, plus RTT/2 for the delivery itself.
        The series is truncated at ``max_retries`` (success is assumed on the
        final attempt, matching the Monte-Carlo truncation).
        """
        expected = self.rtt / 2.0
        for attempt in range(self.max_retries + 1):
            if attempt < self.max_retries:
                probability = (1.0 - loss) * loss**attempt
            else:
                probability = loss**attempt
            waited = initial_timeout * (2.0**attempt - 1.0)
            expected += probability * waited
        return expected

    def expected_completion_time(self, copies: int = 1) -> float:
        """Expected total handshake completion time with ``copies`` copies per packet."""
        loss = self.loss_probability(copies)
        return sum(
            self.expected_packet_delay(timeout, loss) for timeout in self._packet_timeouts()
        )

    def expected_savings(self, copies: int = 2) -> float:
        """Expected saving from duplicating every handshake packet, in seconds.

        The paper's closed form for the mean saving is
        ``(3 + 3 + 3*RTT) * (p1 - p2)`` — each packet's expected retransmission
        wait is (to first order) its initial timeout times its loss
        probability, so duplication saves ``timeout * (p1 - p2)`` per packet.
        The exact expectation computed here includes the higher-order backoff
        terms and is therefore slightly larger.
        """
        return self.expected_completion_time(1) - self.expected_completion_time(copies)

    def first_order_savings(self, copies: int = 2) -> float:
        """The paper's first-order approximation of the mean saving."""
        p1 = self.loss_probability(1)
        pk = self.loss_probability(copies)
        return sum(self._packet_timeouts()) * (p1 - pk)

    # ------------------------------------------------------------------ #

    def sample_completion_times(
        self, copies: int, num_samples: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Monte-Carlo handshake completion times.

        Args:
            copies: Copies of each handshake packet.
            num_samples: Number of handshakes to simulate.
            rng: Random generator; omitted, a deterministic substream seeded
                with :data:`DEFAULT_SAMPLING_SEED` is used, so repeated calls
                return identical samples.
        """
        if num_samples < 1:
            raise ConfigurationError("num_samples must be >= 1")
        rng = rng if rng is not None else substream(DEFAULT_SAMPLING_SEED, "wan.handshake")
        loss = self.loss_probability(copies)
        total = np.zeros(num_samples)
        for initial_timeout in self._packet_timeouts():
            attempts = rng.geometric(1.0 - loss, num_samples)  # 1 = first try succeeds
            attempts = np.minimum(attempts, self.max_retries + 1)
            # Wait before the successful attempt: sum of the first (attempts-1)
            # exponentially backed-off timeouts = timeout * (2^(attempts-1) - 1).
            waited = initial_timeout * (np.power(2.0, attempts - 1) - 1.0)
            total += waited + self.rtt / 2.0
        return total

    def result(self, copies: int, num_samples: int = 200_000, seed: int = 0) -> HandshakeResult:
        """Monte-Carlo summary for one copy count."""
        samples = self.sample_completion_times(copies, num_samples, np.random.default_rng(seed))
        summary = LatencyRecorder.from_samples(samples, name="handshake").summary()
        return HandshakeResult(
            copies=copies,
            mean=summary.mean,
            p99=summary.p99,
            p999=summary.p999,
            loss_probability=self.loss_probability(copies),
        )

    # ------------------------------------------------------------------ #
    # Policy-first evaluation (deferred duplication, beyond the paper)
    # ------------------------------------------------------------------ #

    def sample_completion_times_policy(
        self,
        policy: PolicyLike,
        num_samples: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, int]:
        """Monte-Carlo completion times under a replication policy.

        Eager policies delegate to :meth:`sample_completion_times` (identical
        bytes for identical ``rng`` state).  A :class:`HedgeAfterDelay` policy
        models *deferred* duplication: the duplicate of each handshake packet
        is sent only once the packet has gone ``delay`` seconds without a
        response (the sender learns of delivery one RTT after sending), and
        never after the attempt's retransmission timer would fire anyway.
        Because the two copies are separated in time rather than back-to-back,
        their losses are independent (probability ``single_loss`` each) instead
        of correlated (``pair_loss``) — deferred duplication trades added
        recovery delay for escaping burst loss and for sending far fewer
        duplicate packets.

        Args:
            policy: A policy object or spec string; must be static (adaptive
                percentile hedging has no per-handshake latency feedback loop
                at the packet layer).
            num_samples: Number of handshakes to simulate.
            rng: Random generator; omitted, a deterministic substream seeded
                with :data:`DEFAULT_SAMPLING_SEED` is used.

        Returns:
            ``(completion_times, backup_packets_sent)`` — the per-handshake
            completion times and the total number of duplicate packets sent
            across all samples.

        Raises:
            ConfigurationError: For adaptive policies.
        """
        resolved = parse_policy(policy)
        eager = eager_copies(resolved)
        if eager is not None:
            samples = self.sample_completion_times(eager, num_samples, rng)
            return samples, (eager - 1) * 3 * num_samples
        if not resolved.is_static:
            raise ConfigurationError(
                "the handshake model supports static policies only ('none', "
                "'k<N>', 'hedge:<delay>'): packet duplication has no "
                "per-request latency feedback loop"
            )
        if num_samples < 1:
            raise ConfigurationError("num_samples must be >= 1")
        rng = rng if rng is not None else substream(DEFAULT_SAMPLING_SEED, "wan.handshake")
        delays = resolved.plan().launch_delays
        loss = self.single_loss
        total = np.zeros(num_samples)
        backups_sent = 0
        for initial_timeout in self._packet_timeouts():
            remaining = np.arange(num_samples)
            waited = np.zeros(num_samples)
            arrival = np.zeros(num_samples)
            for attempt in range(self.max_retries + 1):
                if remaining.size == 0:
                    break
                if attempt == self.max_retries:
                    # Same truncation as the eager Monte-Carlo: the final
                    # attempt is assumed to succeed.
                    arrival[remaining] = waited[remaining] + self.rtt / 2.0
                    break
                timeout_now = initial_timeout * (2.0 ** attempt)
                count = remaining.size
                delivered = rng.random(count) >= loss
                deliver_at = np.where(delivered, self.rtt / 2.0, np.inf)
                response_at = np.where(delivered, self.rtt, np.inf)
                for delay in delays[1:]:
                    # The duplicate goes out only if no response arrived by
                    # its hedge delay and the retransmission timer has not
                    # already taken over.
                    sendable = (response_at > delay) & (delay < timeout_now)
                    backups_sent += int(sendable.sum())
                    delivered_backup = sendable & (rng.random(count) >= loss)
                    deliver_at = np.where(
                        delivered_backup,
                        np.minimum(deliver_at, delay + self.rtt / 2.0),
                        deliver_at,
                    )
                    response_at = np.where(
                        delivered_backup,
                        np.minimum(response_at, delay + self.rtt),
                        response_at,
                    )
                success = np.isfinite(deliver_at)
                done = remaining[success]
                arrival[done] = waited[done] + deliver_at[success]
                failed = remaining[~success]
                waited[failed] += timeout_now
                remaining = failed
            total += arrival
        return total, backups_sent

    def policy_result(
        self, policy: PolicyLike, num_samples: int = 200_000, seed: int = 0
    ) -> HandshakePolicyResult:
        """Monte-Carlo summary for one policy (the policy analogue of :meth:`result`)."""
        resolved = parse_policy(policy)
        samples, backups = self.sample_completion_times_policy(
            resolved, num_samples, np.random.default_rng(seed)
        )
        summary = LatencyRecorder.from_samples(samples, name="handshake").summary()
        try:
            spec: Optional[str] = policy_to_spec(resolved)
        except ConfigurationError:
            spec = None
        return HandshakePolicyResult(
            policy_spec=spec,
            mean=summary.mean,
            p99=summary.p99,
            p999=summary.p999,
            backup_packets_per_handshake=backups / num_samples,
            num_samples=num_samples,
        )


def handshake_cost_benefit(
    model: Optional[HandshakeModel] = None,
    packet_bytes: float = 50.0,
    copies: int = 2,
    num_samples: int = 200_000,
    seed: int = 0,
) -> dict:
    """The Section 3.1 cost-effectiveness numbers.

    Duplicating the three handshake packets adds ``3 * packet_bytes`` of
    traffic (the paper assumes 50-byte packets, 150 bytes total) and saves the
    difference in completion time; the result reports the mean and
    99.9th-percentile savings and their ms/KB ratios against the 16 ms/KB
    break-even benchmark.

    Returns:
        A dict with keys ``baseline`` and ``replicated`` (:class:`HandshakeResult`),
        ``mean_analysis`` and ``tail_analysis`` (:class:`CostBenefitAnalysis`).
    """
    model = model or HandshakeModel()
    baseline = model.result(1, num_samples=num_samples, seed=seed)
    replicated = model.result(copies, num_samples=num_samples, seed=seed + 1)
    extra_bytes = (copies - 1) * 3 * packet_bytes
    mean_analysis = CostBenefitAnalysis(
        latency_saved_ms=(baseline.mean - replicated.mean) * 1000.0,
        extra_bytes=extra_bytes,
        break_even_ms_per_kb=DEFAULT_BREAK_EVEN_MS_PER_KB,
    )
    # The tail comparison uses the 99th percentile: with the measured loss
    # rates, a handshake loses at least one packet ~1.4% of the time without
    # duplication (so the 99th percentile sits at the 3 s SYN timeout) but only
    # ~0.2% of the time with duplication (so the 99th percentile collapses to a
    # normal round trip).  Exactly at the 99.9th percentile both configurations
    # still contain a timeout, which is why the paper phrases its 880 ms tail
    # number as a lower bound; EXPERIMENTS.md discusses the comparison.
    tail_analysis = CostBenefitAnalysis(
        latency_saved_ms=(baseline.p99 - replicated.p99) * 1000.0,
        extra_bytes=extra_bytes,
        break_even_ms_per_kb=DEFAULT_BREAK_EVEN_MS_PER_KB,
    )
    return {
        "baseline": baseline,
        "replicated": replicated,
        "mean_analysis": mean_analysis,
        "tail_analysis": tail_analysis,
    }
