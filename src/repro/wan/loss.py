"""Packet-loss channels for the wide-area models.

Section 3.1 relies on the loss-pair measurements of Chan et al. [IMC 2010]:
between PlanetLab hosts the probability of losing a single packet was
≈ 0.0048, while the probability of losing *both* packets of a back-to-back
pair was ≈ 0.0007 — far higher than the ≈ 2.3e-5 expected under independence
(losses are correlated) but still 7x lower than the single-packet loss rate.
Those two constants are exposed here and used by the handshake model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError

#: Measured probability that a single packet is lost (Chan et al., cited in §3.1).
SINGLE_LOSS_PROBABILITY: float = 0.0048

#: Measured probability that *both* packets of a back-to-back pair are lost.
PAIR_LOSS_PROBABILITY: float = 0.0007


class CorrelatedLossChannel:
    """A lossy channel with explicit single- and pair-loss probabilities.

    The channel answers one question per transmission attempt: was the packet
    (or the duplicated pair) lost?  It does not model delay — the handshake
    model adds RTT/2 per delivered packet itself.
    """

    def __init__(
        self,
        single_loss: float = SINGLE_LOSS_PROBABILITY,
        pair_loss: float = PAIR_LOSS_PROBABILITY,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> None:
        """Create a channel.

        Args:
            single_loss: Probability a lone packet is lost.
            pair_loss: Probability both packets of a duplicated pair are lost
                (must not exceed ``single_loss``; correlation cannot make a
                pair *more* likely to vanish than a single packet).
            rng: Random generator for Monte-Carlo use; omitted, a generator
                seeded with ``seed`` is constructed (library entry points
                never construct unseeded generators implicitly — the repo's
                determinism contract, lint rule DET001).
            seed: Seed of the fallback generator when ``rng`` is omitted.

        Raises:
            ConfigurationError: On probabilities outside [0, 1] or
                ``pair_loss > single_loss``.
        """
        if not 0.0 <= single_loss <= 1.0 or not 0.0 <= pair_loss <= 1.0:
            raise ConfigurationError("loss probabilities must be in [0, 1]")
        if pair_loss > single_loss:
            raise ConfigurationError(
                f"pair_loss ({pair_loss}) cannot exceed single_loss ({single_loss})"
            )
        self.single_loss = float(single_loss)
        self.pair_loss = float(pair_loss)
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def loss_probability(self, copies: int) -> float:
        """Probability that *all* ``copies`` transmissions of a packet are lost.

        ``copies = 1`` returns the single-packet loss rate and ``copies = 2``
        the measured pair-loss rate; beyond 2 the measured correlation is
        extrapolated geometrically (each extra copy multiplies the loss
        probability by the same pair/single ratio), which is conservative
        relative to independence.
        """
        if copies < 1:
            raise ConfigurationError(f"copies must be >= 1, got {copies!r}")
        if copies == 1:
            return self.single_loss
        ratio = self.pair_loss / self.single_loss if self.single_loss > 0 else 0.0
        return self.single_loss * ratio ** (copies - 1)

    def is_lost(self, copies: int = 1) -> bool:
        """Monte-Carlo draw: were all ``copies`` transmissions lost?"""
        return bool(self._rng.random() < self.loss_probability(copies))

    def independence_pair_loss(self) -> float:
        """The pair-loss probability losses *would* have if they were independent."""
        return self.single_loss**2
