"""The Section 3.2 DNS replication experiment.

The paper's experiment: from 15 PlanetLab vantage points, query 10 public DNS
servers for names drawn from the Alexa top-1M list.  Stage 1 ranks the servers
by mean response time; Stage 2 repeatedly either queries one individual server
or queries the best ``k`` servers in parallel (k = 1..10), treating responses
slower than 2 seconds as lost (and counting them as 2 s).

PlanetLab and the public resolvers are not reachable offline, so this module
substitutes a synthetic vantage-point model with the structure that drives the
paper's result:

* each (vantage point, server) pair has a log-normal base response time whose
  median depends on both the server's quality and the vantage's location;
* each query to a server independently suffers loss (→ 2 s timeout) or an
  episode of server/path congestion with small probability — these are the
  outliers replication masks, because they are nearly independent across
  servers;
* each *query* may also hit a vantage-local problem (access-link congestion)
  that delays every copy equally — this correlated component is what keeps the
  replicated tail from vanishing entirely, matching the measured 6.5x / 50x
  (rather than unbounded) tail reductions.

All Figure 15-17 quantities are computed by :class:`DnsExperiment`.

Beyond the paper's eager "query the best k in parallel",
:meth:`DnsExperiment.run_policy` evaluates any
:class:`~repro.core.policy.ReplicationPolicy`: ``"hedge:50ms"`` queries the
best-ranked server and sends the query to the next-ranked server only if no
response arrived within 50 ms, which preserves most of the tail benefit at a
fraction of the extra queries.  Eager policies (``"k2"``) reuse the exact
sample streams of :meth:`DnsExperiment.run`, so ``policy="k2"`` is
byte-identical to ``copies_list=[2]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import LatencySummary
from repro.core.costbenefit import CostBenefitAnalysis, marginal_cost_benefit
from repro.core.policy import (
    PolicyLike,
    ReplicationPolicy,
    eager_copies,
    parse_policy,
    policy_to_spec,
)
from repro.exceptions import ConfigurationError
from repro.metrics import LatencyRecorder
from repro.sim.rng import substream


@dataclass(frozen=True)
class DnsServerModel:
    """Response-time model of one (vantage point, server) pair.

    Attributes:
        median_s: Median of the log-normal base response time.
        sigma: Log-normal shape parameter of the base response time.
        loss_probability: Probability a query is lost (counted as the timeout).
        congestion_probability: Probability of an independent congestion
            episode on this server/path.
        congestion_mean_s: Mean extra delay of a congestion episode.
    """

    median_s: float
    sigma: float = 0.5
    loss_probability: float = 0.008
    congestion_probability: float = 0.02
    congestion_mean_s: float = 0.3

    def __post_init__(self) -> None:
        if self.median_s <= 0 or self.sigma < 0:
            raise ConfigurationError("median_s must be positive and sigma non-negative")
        for p in (self.loss_probability, self.congestion_probability):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError("probabilities must be in [0, 1]")
        if self.congestion_mean_s < 0:
            raise ConfigurationError("congestion_mean_s must be >= 0")

    def sample(self, rng: np.random.Generator, size: int, timeout_s: float) -> np.ndarray:
        """Draw ``size`` response times, applying the 2 s loss/timeout rule."""
        base = rng.lognormal(np.log(self.median_s), self.sigma, size)
        congested = rng.random(size) < self.congestion_probability
        base = base + rng.exponential(self.congestion_mean_s, size) * congested
        lost = rng.random(size) < self.loss_probability
        base = np.where(lost, timeout_s, base)
        return np.minimum(base, timeout_s)

    def true_mean(self, timeout_s: float, rng: np.random.Generator, samples: int = 50_000) -> float:
        """Monte-Carlo estimate of the pair's mean response time."""
        return float(self.sample(rng, samples, timeout_s).mean())


@dataclass(frozen=True)
class VantagePoint:
    """One measurement vantage point and its view of every DNS server.

    Attributes:
        name: Identifier (e.g. ``"vp-03"``).
        servers: Per-server response-time models, indexed by server id.
        local_problem_probability: Probability that a query suffers a
            vantage-local problem affecting every copy (correlated component).
        local_problem_mean_s: Mean extra delay of such a problem.
    """

    name: str
    servers: List[DnsServerModel]
    local_problem_probability: float = 0.004
    local_problem_mean_s: float = 0.4

    def __post_init__(self) -> None:
        if not self.servers:
            raise ConfigurationError("a vantage point needs at least one server model")
        if not 0.0 <= self.local_problem_probability <= 1.0:
            raise ConfigurationError("local_problem_probability must be in [0, 1]")


@dataclass(frozen=True)
class DnsExperimentConfig:
    """Configuration of the synthetic DNS replication experiment.

    Attributes:
        num_vantage_points: Number of vantage points (15 in the paper).
        num_servers: Number of DNS servers (10 in the paper).
        timeout_s: Loss/timeout threshold (2 s in the paper).
        stage1_queries_per_server: Ranking queries per server per vantage.
        stage2_queries_per_config: Stage-2 trials per configuration per
            vantage.
        bytes_per_extra_server: Extra traffic per additional server queried
            (query + response; the paper's analysis corresponds to ~500 B).
        seed: Base random seed.
    """

    num_vantage_points: int = 15
    num_servers: int = 10
    timeout_s: float = 2.0
    stage1_queries_per_server: int = 300
    stage2_queries_per_config: int = 2_000
    bytes_per_extra_server: float = 500.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_vantage_points < 1 or self.num_servers < 2:
            raise ConfigurationError("need >= 1 vantage point and >= 2 servers")
        if self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if self.stage1_queries_per_server < 10 or self.stage2_queries_per_config < 10:
            raise ConfigurationError("need at least 10 queries per stage configuration")
        if self.bytes_per_extra_server <= 0:
            raise ConfigurationError("bytes_per_extra_server must be positive")


@dataclass(frozen=True)
class DnsResults:
    """Everything the Figures 15-17 pipeline needs.

    Attributes:
        config: The experiment configuration.
        samples_by_copies: Response-time samples (pooled across vantage
            points) for querying the best ``k`` servers in parallel, keyed by
            ``k``.
        best_single_samples: Response times of the per-vantage best-ranked
            single server, pooled across vantage points (the Figure 16
            baseline).
        reduction_percent: ``reduction_percent[metric][k]`` is the average (over
            vantage points) percentage reduction of ``metric`` when querying
            ``k`` servers versus the best single server; metrics are ``"mean"``,
            ``"median"``, ``"p95"``, ``"p99"``.
    """

    config: DnsExperimentConfig
    samples_by_copies: Dict[int, np.ndarray]
    best_single_samples: np.ndarray
    reduction_percent: Dict[str, Dict[int, float]]
    _recorders: Dict[int, LatencyRecorder] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _recorder(self, copies: int) -> LatencyRecorder:
        """The (cached) recorder over the pooled samples for ``copies`` servers."""
        recorder = self._recorders.get(copies)
        if recorder is None:
            recorder = LatencyRecorder.from_samples(self.samples_by_copies[copies], name="dns")
            self._recorders[copies] = recorder
        return recorder

    def fraction_later_than(self, threshold_s: float, copies: int) -> float:
        """Fraction of queries slower than ``threshold_s`` with ``copies`` servers."""
        return self._recorder(copies).fraction_later_than(threshold_s)

    def tail_improvement(self, threshold_s: float, copies: int) -> float:
        """How many times rarer late responses become with ``copies`` servers."""
        base = self.fraction_later_than(threshold_s, 1)
        replicated = self.fraction_later_than(threshold_s, copies)
        if replicated == 0:
            return float("inf")
        return base / replicated

    def summary(self, copies: int) -> LatencySummary:
        """Pooled latency summary for querying ``copies`` servers in parallel.

        Cached by the underlying recorder, so repeated queries sort the
        pooled samples once.
        """
        return self._recorder(copies).summary()

    def mean_latency_ms_by_copies(self) -> List[float]:
        """Mean response time (ms) for each copy count 1..num_servers."""
        return [self._recorder(k).mean() * 1000.0 for k in sorted(self.samples_by_copies)]

    def percentile_latency_ms_by_copies(self, percentile: float) -> List[float]:
        """A percentile of response time (ms) for each copy count."""
        return [
            self._recorder(k).percentile(percentile) * 1000.0
            for k in sorted(self.samples_by_copies)
        ]

    def marginal_analysis(self, metric: str = "mean") -> List[CostBenefitAnalysis]:
        """Figure 17: marginal ms/KB value of each extra server.

        Args:
            metric: ``"mean"`` or ``"p99"``.
        """
        if metric == "mean":
            latencies = self.mean_latency_ms_by_copies()
        elif metric == "p99":
            latencies = self.percentile_latency_ms_by_copies(99.0)
        else:
            raise ConfigurationError(f"unknown metric {metric!r}; use 'mean' or 'p99'")
        return marginal_cost_benefit(latencies, self.config.bytes_per_extra_server)


@dataclass(frozen=True)
class DnsPolicyResult:
    """Outcome of evaluating one replication policy over every vantage point.

    Attributes:
        config: The experiment configuration.
        policy_spec: Canonical spec of the evaluated policy (``None`` for
            policies the spec language cannot express).
        samples: Response-time samples under the policy, pooled across
            vantage points.
        best_single_samples: The best-single-server baseline samples, pooled
            (identical streams to :class:`DnsResults` — policies share the
            baseline).
        reduction_percent: Average (over vantage points) percentage reduction
            of each metric (``"mean"``, ``"median"``, ``"p95"``, ``"p99"``)
            versus the best single server.
        queries_launched: Total queries actually sent across all vantage
            points and trials — the policy's traffic cost.  The eager ``k``
            policy sends ``k`` per trial; hedging sends between 1 and
            ``max_copies``.
        num_trials: Total stage-2 trials the samples pool over.
    """

    config: DnsExperimentConfig
    policy_spec: Optional[str]
    samples: np.ndarray
    best_single_samples: np.ndarray
    reduction_percent: Dict[str, float]
    queries_launched: int
    num_trials: int
    _recorders: Dict[str, LatencyRecorder] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _recorder(self, which: str) -> LatencyRecorder:
        recorder = self._recorders.get(which)
        if recorder is None:
            samples = self.samples if which == "policy" else self.best_single_samples
            recorder = LatencyRecorder.from_samples(samples, name=f"dns-{which}")
            self._recorders[which] = recorder
        return recorder

    @property
    def mean_queries_per_trial(self) -> float:
        """Average queries sent per trial (the extra-traffic axis of Figure 17)."""
        return self.queries_launched / self.num_trials if self.num_trials else 0.0

    def summary(self) -> LatencySummary:
        """Pooled latency summary under the policy."""
        return self._recorder("policy").summary()

    def fraction_later_than(self, threshold_s: float) -> float:
        """Fraction of queries slower than ``threshold_s`` under the policy."""
        return self._recorder("policy").fraction_later_than(threshold_s)

    def tail_improvement(self, threshold_s: float) -> float:
        """How many times rarer late responses are than the best-single baseline."""
        base = self._recorder("baseline").fraction_later_than(threshold_s)
        replicated = self.fraction_later_than(threshold_s)
        if replicated == 0:
            return float("inf")
        return base / replicated


class DnsExperiment:
    """Builds the synthetic vantage points and runs the two-stage protocol."""

    def __init__(self, config: Optional[DnsExperimentConfig] = None) -> None:
        """Create the experiment (default configuration matches the paper's scale)."""
        self.config = config or DnsExperimentConfig()
        self.vantage_points = self._build_vantage_points()

    # ------------------------------------------------------------------ #

    def _build_vantage_points(self) -> List[VantagePoint]:
        """Generate vantage points with heterogeneous server quality.

        Server quality has two components: a global per-server factor (some
        anycast providers are simply faster) and a per-vantage factor
        (geographic distance), so the best server differs across vantage
        points — which is why the paper needs the per-vantage ranking stage.
        """
        config = self.config
        rng = substream(config.seed, "vantage-build")
        server_quality = rng.uniform(0.015, 0.060, config.num_servers)
        vantage_points: List[VantagePoint] = []
        for vp_index in range(config.num_vantage_points):
            distance_factor = rng.uniform(0.8, 2.5, config.num_servers)
            servers = []
            for server_index in range(config.num_servers):
                median = float(server_quality[server_index] * distance_factor[server_index])
                servers.append(
                    DnsServerModel(
                        median_s=median,
                        sigma=float(rng.uniform(0.4, 0.7)),
                        loss_probability=float(rng.uniform(0.004, 0.015)),
                        congestion_probability=float(rng.uniform(0.01, 0.03)),
                        congestion_mean_s=float(rng.uniform(0.2, 0.4)),
                    )
                )
            vantage_points.append(
                VantagePoint(
                    name=f"vp-{vp_index:02d}",
                    servers=servers,
                    local_problem_probability=0.004,
                    local_problem_mean_s=0.4,
                )
            )
        return vantage_points

    # ------------------------------------------------------------------ #

    def rank_servers(self, vantage: VantagePoint) -> List[int]:
        """Stage 1: rank servers by measured mean response time at ``vantage``."""
        config = self.config
        rng = substream(config.seed, "stage1", vantage.name)
        means = []
        for server_id, server in enumerate(vantage.servers):
            samples = server.sample(rng, config.stage1_queries_per_server, config.timeout_s)
            means.append((float(samples.mean()), server_id))
        means.sort()
        return [server_id for _mean, server_id in means]

    def _stage2_samples(
        self, vantage: VantagePoint, ranking: Sequence[int], copies: int
    ) -> np.ndarray:
        """Stage 2 samples for querying the ``copies`` best servers in parallel."""
        config = self.config
        rng = substream(config.seed, "stage2", vantage.name, copies)
        count = config.stage2_queries_per_config
        chosen = list(ranking[:copies])
        per_server = np.stack(
            [vantage.servers[s].sample(rng, count, config.timeout_s) for s in chosen], axis=1
        )
        best = per_server.min(axis=1)
        local = rng.random(count) < vantage.local_problem_probability
        best = best + rng.exponential(vantage.local_problem_mean_s, count) * local
        return np.minimum(best, config.timeout_s)

    def run(self, copies_list: Optional[Sequence[int]] = None) -> DnsResults:
        """Run the full two-stage experiment at every vantage point.

        Args:
            copies_list: Copy counts to evaluate (default 1..num_servers).

        Returns:
            A :class:`DnsResults` pooling samples across vantage points.
        """
        config = self.config
        if copies_list is None:
            copies_list = list(range(1, config.num_servers + 1))
        copies_list = sorted(set(int(k) for k in copies_list))
        if any(k < 1 or k > config.num_servers for k in copies_list):
            raise ConfigurationError(
                f"copy counts must be in [1, {config.num_servers}], got {copies_list!r}"
            )

        pooled: Dict[int, List[np.ndarray]] = {k: [] for k in copies_list}
        best_single: List[np.ndarray] = []
        reductions: Dict[str, Dict[int, List[float]]] = {
            metric: {k: [] for k in copies_list} for metric in ("mean", "median", "p95", "p99")
        }

        def vantage_stats(samples: np.ndarray) -> Dict[str, float]:
            s = LatencyRecorder.from_samples(samples, name="dns-vantage").summary()
            return {"mean": s.mean, "median": s.p50, "p95": s.p95, "p99": s.p99}

        for vantage in self.vantage_points:
            ranking = self.rank_servers(vantage)
            baseline = self._stage2_samples(vantage, ranking, 1)
            best_single.append(baseline)
            baseline_stats = vantage_stats(baseline)
            for k in copies_list:
                samples = baseline if k == 1 else self._stage2_samples(vantage, ranking, k)
                pooled[k].append(samples)
                stats = vantage_stats(samples)
                for metric, base_value in baseline_stats.items():
                    if base_value > 0:
                        reductions[metric][k].append(
                            100.0 * (base_value - stats[metric]) / base_value
                        )

        reduction_percent = {
            metric: {k: float(np.mean(values)) for k, values in per_metric.items()}
            for metric, per_metric in reductions.items()
        }
        return DnsResults(
            config=config,
            samples_by_copies={k: np.concatenate(arrays) for k, arrays in pooled.items()},
            best_single_samples=np.concatenate(best_single),
            reduction_percent=reduction_percent,
        )

    # ------------------------------------------------------------------ #
    # Policy-first evaluation (hedged querying, beyond the paper)
    # ------------------------------------------------------------------ #

    def _stage2_samples_policy(
        self, vantage: VantagePoint, ranking: Sequence[int], policy: ReplicationPolicy
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stage-2 samples under a non-eager policy, with backup suppression.

        Queries are sequential, so each trial's response is fed back to the
        policy before the next trial — adaptive (percentile) hedging adapts
        exactly as a live client would.  A backup to the next-ranked server
        launches only if no response arrived before its hedge delay; the
        vantage-local problem delays every copy equally and therefore does not
        trigger extra backups (the client is stalled, not the servers).

        Returns:
            ``(samples, queries_launched)`` arrays, one entry per trial.
        """
        config = self.config
        try:
            stream_key = policy_to_spec(policy)
        except ConfigurationError:
            stream_key = type(policy).__name__
        rng = substream(config.seed, "stage2-policy", vantage.name, stream_key)
        count = config.stage2_queries_per_config
        max_copies = min(int(policy.max_copies), config.num_servers)
        chosen = list(ranking[:max_copies])
        per_server = np.stack(
            [vantage.servers[s].sample(rng, count, config.timeout_s) for s in chosen], axis=1
        )
        local = rng.random(count) < vantage.local_problem_probability
        local_extra = rng.exponential(vantage.local_problem_mean_s, count) * local

        samples = np.empty(count)
        launched = np.zeros(count, dtype=np.int64)
        for i in range(count):
            delays = policy.plan().launch_delays[:max_copies]
            best = np.inf
            sent = 0
            for j, delay in enumerate(delays):
                if j > 0 and best <= delay:
                    continue  # a response already arrived: the backup is suppressed
                sent += 1
                response = delay + per_server[i, j]
                if response < best:
                    best = response
            value = min(best + local_extra[i], config.timeout_s)
            samples[i] = value
            launched[i] = sent
            policy.record_latency(float(value))
        return samples, launched

    def run_policy(self, policy: PolicyLike) -> DnsPolicyResult:
        """Evaluate one replication policy at every vantage point.

        Eager policies (``"none"``, ``"k2"``, ...) reuse the exact stage-2
        sample streams of :meth:`run`, so their pooled samples are
        byte-identical to ``run(copies_list=[k])``; hedging policies take the
        suppression-aware path of :meth:`_stage2_samples_policy`.

        Args:
            policy: A :class:`~repro.core.policy.ReplicationPolicy` or spec
                string (``"k2"``, ``"hedge:50ms"``, ``"hedge:p95"``).

        Returns:
            A :class:`DnsPolicyResult` pooling samples across vantage points.
        """
        config = self.config
        resolved = parse_policy(policy)
        if resolved.max_copies > config.num_servers:
            raise ConfigurationError(
                f"policy wants up to {resolved.max_copies} copies but only "
                f"{config.num_servers} servers exist"
            )
        eager = eager_copies(resolved)
        count = config.stage2_queries_per_config

        pooled: List[np.ndarray] = []
        best_single: List[np.ndarray] = []
        reductions: Dict[str, List[float]] = {
            metric: [] for metric in ("mean", "median", "p95", "p99")
        }
        queries_launched = 0

        def vantage_stats(samples: np.ndarray) -> Dict[str, float]:
            s = LatencyRecorder.from_samples(samples, name="dns-vantage").summary()
            return {"mean": s.mean, "median": s.p50, "p95": s.p95, "p99": s.p99}

        for vantage in self.vantage_points:
            ranking = self.rank_servers(vantage)
            baseline = self._stage2_samples(vantage, ranking, 1)
            best_single.append(baseline)
            if eager is not None:
                samples = (
                    baseline
                    if eager == 1
                    else self._stage2_samples(vantage, ranking, eager)
                )
                queries_launched += eager * count
            else:
                samples, launched = self._stage2_samples_policy(vantage, ranking, resolved)
                queries_launched += int(launched.sum())
            pooled.append(samples)
            baseline_stats = vantage_stats(baseline)
            stats = vantage_stats(samples)
            for metric, base_value in baseline_stats.items():
                if base_value > 0:
                    reductions[metric].append(
                        100.0 * (base_value - stats[metric]) / base_value
                    )

        try:
            spec: Optional[str] = policy_to_spec(resolved)
        except ConfigurationError:
            spec = None
        return DnsPolicyResult(
            config=config,
            policy_spec=spec,
            samples=np.concatenate(pooled),
            best_single_samples=np.concatenate(best_single),
            reduction_percent={
                metric: float(np.mean(values)) if values else 0.0
                for metric, values in reductions.items()
            },
            queries_launched=queries_launched,
            num_trials=count * len(self.vantage_points),
        )
