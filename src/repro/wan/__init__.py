"""Wide-area substrates for Section 3 (the "individual view").

* :mod:`repro.wan.loss` — Bernoulli and correlated packet-loss channels,
  parameterised by the loss-pair measurements the paper cites (single-packet
  loss probability ≈ 0.0048, back-to-back pair loss ≈ 0.0007).
* :mod:`repro.wan.handshake` — the Section 3.1 TCP-handshake completion-time
  model (3 s SYN timeouts, exponential backoff), analytic and Monte-Carlo.
* :mod:`repro.wan.dns` — the Section 3.2 DNS replication experiment: synthetic
  vantage points and public resolvers, the two-stage ranking + replication
  protocol, and the Figures 15-17 metrics.
"""

from repro.wan.loss import CorrelatedLossChannel, PAIR_LOSS_PROBABILITY, SINGLE_LOSS_PROBABILITY
from repro.wan.handshake import (
    HandshakeModel,
    HandshakePolicyResult,
    HandshakeResult,
    handshake_cost_benefit,
)
from repro.wan.dns import (
    DnsExperiment,
    DnsExperimentConfig,
    DnsPolicyResult,
    DnsServerModel,
    VantagePoint,
)

__all__ = [
    "SINGLE_LOSS_PROBABILITY",
    "PAIR_LOSS_PROBABILITY",
    "CorrelatedLossChannel",
    "HandshakeModel",
    "HandshakeResult",
    "HandshakePolicyResult",
    "handshake_cost_benefit",
    "DnsServerModel",
    "VantagePoint",
    "DnsExperimentConfig",
    "DnsPolicyResult",
    "DnsExperiment",
]
