"""Vectorised LRU hit detection for equal-sized cache items.

:class:`~repro.cluster.cache.LRUByteCache` answers one access at a time; at
paper scale the database substrate pushes ~100k accesses per grid point
through it, and the Python-level dict walk dominates the point cost.  When
every item has the same size the cache holds a fixed number of items ``C``,
and LRU admits a closed-form batch formulation:

* ``prev[t]`` — the previous access of the same key — is computable for the
  whole stream with one sort.
* An access hits iff its key is among the ``C`` most recently used distinct
  keys, i.e. iff ``prev[t] >= b(t)`` where ``b(t)`` is the position of the
  C-th most recently used distinct key just before access ``t``.
* ``b`` is **monotone non-decreasing**: each step adds a new most-recent
  position and retires at most one older one, so the C-th largest "last
  occurrence" position can only move forward.

Monotonicity is the lever: :func:`lru_hit_flags` computes ``b`` exactly only
at chunk boundaries (cheap, vectorised per boundary), brackets every access's
``b(t)`` between the surrounding boundary values, classifies almost all
accesses with two global comparisons, and resolves the handful of ambiguous
accesses — those whose ``prev`` lands inside the bracket — with an exact
distinct count over the ``next``-occurrence array.  The result is bit-equal
to replaying the stream through ``LRUByteCache`` (pinned by tests against the
reference implementation) at a small fraction of the cost.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cluster import _ckernels

_MAX_EXACT_FLOAT = float(2**53)


def equal_item_capacity(capacity_bytes: float, item_bytes: float) -> Optional[int]:
    """Item capacity of a byte cache holding equal-sized items, or ``None``.

    Returns the largest ``C`` with ``C * item_bytes <= capacity_bytes`` when
    the byte-level accounting of ``LRUByteCache`` (repeated float addition and
    subtraction of ``item_bytes``) is provably exact, so that counting items
    is equivalent to counting bytes.  Returns ``None`` when the equivalence
    cannot be guaranteed (non-integer item size, or totals large enough for
    float rounding), in which case callers must fall back to the reference
    cache.
    """
    if item_bytes <= 0 or not np.isfinite(capacity_bytes) or capacity_bytes < 0:
        return None
    if item_bytes != int(item_bytes):
        return None
    if capacity_bytes >= _MAX_EXACT_FLOAT:
        return None
    if item_bytes > capacity_bytes:
        return 0
    cap = int(capacity_bytes // item_bytes)
    # Pin down float-boundary cases exactly.
    while (cap + 1) * item_bytes <= capacity_bytes:
        cap += 1
    while cap > 0 and cap * item_bytes > capacity_bytes:
        cap -= 1
    return cap


def previous_and_next_occurrence(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``prev[t]``/``next[t]`` occurrence indices of each key (vectorised).

    ``prev[t]`` is the last index ``< t`` holding the same key (``-1`` if
    none); ``next[t]`` is the next index ``> t`` (``len(keys)`` if none).
    One in-place sort of ``(key << shift) | position`` composites groups each
    key's positions in ascending order without a (much slower) stable
    argsort; shifts and masks in place of multiply/divmod keep the unpacking
    off the slow int64-division path.
    """
    n = len(keys)
    keys = np.asarray(keys, dtype=np.int64)
    shift = max(1, int(n - 1).bit_length()) if n > 1 else 1
    composite = (keys << shift) | np.arange(n, dtype=np.int64)
    composite.sort()
    pos = composite & ((1 << shift) - 1)
    key_sorted = composite >> shift
    prev = np.full(n, -1, dtype=np.int64)
    same = key_sorted[1:] == key_sorted[:-1]
    prev[pos[1:][same]] = pos[:-1][same]
    nxt = np.full(n, n, dtype=np.int64)
    mask = prev >= 0
    nxt[prev[mask]] = np.flatnonzero(mask)
    return prev, nxt


def lru_hit_flags(keys: np.ndarray, capacity_items: int, chunk: int = 256) -> np.ndarray:
    """Hit/miss flag per access for an LRU cache of ``capacity_items`` items.

    Equivalent to feeding ``keys`` through ``LRUByteCache`` with equal item
    sizes: ``flags[t]`` is ``True`` iff access ``t`` is a cache hit.  Keys
    must be non-negative integers.

    Args:
        keys: Access stream (any integer dtype).
        capacity_items: Number of items the cache holds (``<= 0`` = all miss).
        chunk: Boundary sampling interval; affects speed only, not results.
    """
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=bool)
    if capacity_items <= 0:
        return np.zeros(n, dtype=bool)
    C = int(capacity_items)
    prev, nxt = previous_and_next_occurrence(keys)

    num_chunks = (n + chunk - 1) // chunk
    if num_chunks > 1024:
        # Cap the boundary-matrix footprint; chunk affects speed only.
        chunk = -(-n // 1024)
        num_chunks = (n + chunk - 1) // chunk
    positions = np.arange(n, dtype=np.int64)

    # boundary[c] = b at time min(c*chunk, n) (-1 while fewer than C
    # distinct keys).  At boundary time tau_c = min((c+1)*chunk, n) the
    # marked (= currently most-recent) positions are exactly
    # {p < tau_c : nxt[p] >= tau_c}, a pure function of nxt — no incremental
    # add/retire bookkeeping is needed.  Bucket every position by
    # (own block, block of its next occurrence) into one histogram; a
    # suffix-cumsum over next-blocks then yields, for every boundary at once,
    # the marked count per block, and a second suffix-cumsum over blocks
    # yields the totals and the block holding the C-th most recent position.
    boundary = np.full(num_chunks + 1, -1, dtype=np.int64)
    # nxt == n must not share a bucket with same-block indices when the last
    # chunk is partial: give it a dedicated final column.
    nxt_block = np.where(nxt == n, num_chunks, nxt // chunk)
    flat = (positions // chunk) * (num_chunks + 1) + nxt_block
    hist = np.bincount(flat, minlength=num_chunks * (num_chunks + 1))
    hist = hist.reshape(num_chunks, num_chunks + 1)
    # marked_per_block[b, c] = #{p in block b : nxt[p] >= (c+1)*chunk}; only
    # the upper triangle (b <= c, i.e. blocks fully before tau_c) is used.
    marked_per_block = np.triu(hist[:, ::-1].cumsum(axis=1)[:, ::-1][:, 1:])
    # suffix[b, c] = marked positions at tau_c in blocks >= b.
    suffix = marked_per_block[::-1].cumsum(axis=0)[::-1]
    filled = np.flatnonzero(suffix[0] >= C)  # boundaries with >= C distinct
    blks = (suffix >= C).sum(axis=0) - 1     # block of the C-th most recent
    suffix_pad = np.vstack([suffix, np.zeros((1, num_chunks), dtype=np.int64)])
    for c in filled.tolist():
        blk = int(blks[c])
        rank = C - int(suffix_pad[blk + 1, c])
        blo = blk * chunk
        bhi = min(blo + chunk, n)
        tau = min((c + 1) * chunk, n)
        marked = np.flatnonzero(nxt[blo:bhi] >= tau)
        boundary[c + 1] = blo + int(marked[-rank])

    t_chunk = positions // chunk
    b_lo = boundary[t_chunk]
    b_hi = boundary[t_chunk + 1]
    valid = prev >= 0
    # b(t) is bracketed by the boundary values, so prev >= b_hi is a sure
    # hit and prev < b_lo a sure miss.  b_hi == -1 means the cache is still
    # under-filled throughout the chunk: every repeat access hits.
    hits = valid & ((b_hi >= 0) & (prev >= b_hi) | (b_hi < 0))
    sure_miss = (~valid) | (prev < b_lo)
    ambiguous = np.flatnonzero(valid & ~hits & ~sure_miss)
    if len(ambiguous) == 0:
        return hits
    lib = _ckernels.load()
    if lib is not None:
        resolved = np.empty(len(ambiguous), dtype=np.uint8)
        lib.lru_ambiguous(
            ambiguous.ctypes.data,
            len(ambiguous),
            np.ascontiguousarray(prev).ctypes.data,
            np.ascontiguousarray(nxt).ctypes.data,
            C,
            resolved.ctypes.data,
        )
        hits[ambiguous[resolved != 0]] = True
        return hits
    for t in ambiguous:
        p = prev[t]
        distinct_between = int(np.count_nonzero(nxt[p + 1 : t] >= t))
        if distinct_between < C:
            hits[t] = True
    return hits
