"""Batched random-draw fast paths for the cluster substrates.

The database and memcached models historically drew their randomness one
request at a time inside the serve loop (``rng.uniform`` for disk positioning,
``rng.random`` for the slow-access and noisy-neighbour coin flips,
``rng.exponential`` for the penalty magnitudes).  Those scalar draws dominate
the per-point cost of a sweep.  This module pre-draws the same streams as
numpy batches **consumed in the identical substream order**, so artifacts stay
byte-identical while the per-request Python work collapses to array indexing.

The hard part is the exponential: numpy's ziggurat sampler consumes a
*variable* number of 64-bit draws per sample, so a stream that interleaves
fixed-width draws (one ``uint64`` per double) with exponentials cannot be
sliced up front.  :func:`exact_disk_services` solves this with a single
pre-drawn block plus probe-based accounting:

1. Draw one ``rng.random`` block covering the whole miss stream (every double
   consumes exactly one ``uint64``, so block values *are* the stream values).
2. Scan the per-miss coin-flip columns for the first triggered penalty.
3. Rewind the generator to the exponential's stream position with
   ``bit_generator.advance``, draw it scalar (bit-identical by construction),
   then draw one probe double.  The probe equals the next stream value, so
   matching it against the block reveals exactly how many ``uint64`` values
   the ziggurat consumed — no generator internals needed.
4. Continue scanning the same block at the shifted offset.

A final ``advance`` leaves the generator exactly where the scalar path would
have left it, which is what makes the batched and legacy modes interchangeable
mid-sweep.

Mode selection: the ``REPRO_DRAWS`` environment variable (or an explicit
``draws=`` argument to the experiment ``run`` methods) picks ``"batched"``
(default) or ``"legacy"``.  Legacy mode reproduces the pre-batching code path
end-to-end — per-request scalar draws and per-point placement computation — so
CI can ``cmp`` artifacts across both modes and benchmarks measure an honest
before/after.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import flags
from repro.cluster import _ckernels
from repro.exceptions import ConfigurationError

DRAWS_ENV_VAR = flags.DRAWS.name
"""Environment variable selecting the draw path (``batched`` or ``legacy``).

Declared (with its choices and default) in :mod:`repro.flags`.
"""

_TWO128 = 1 << 128


def resolve_draws_mode(explicit: Optional[str] = None) -> str:
    """Resolve the draw mode from an explicit argument or ``REPRO_DRAWS``.

    Args:
        explicit: ``"batched"``, ``"legacy"``, or ``None`` to consult the
            environment (defaulting to ``"batched"``).

    Raises:
        ConfigurationError: On an unrecognised mode name.
    """
    return flags.DRAWS.read(explicit)


class StreamAccountingError(RuntimeError):
    """A probe double was not found in the pre-drawn block.

    This cannot happen unless two adjacent stream doubles collide bit-for-bit
    (probability ~2**-53 per trigger); it is kept as a hard error rather than
    a silent fallback so any accounting bug surfaces immediately.
    """


def _probe_match(block: np.ndarray, start: int, probe: float) -> int:
    """Offset ``k >= 0`` such that ``block[start + k] == probe``."""
    item = block.item
    limit = min(start + 64, len(block))
    for idx in range(start, limit):
        if item(idx) == probe:
            return idx - start
    raise StreamAccountingError(
        f"probe value not found within 64 positions of offset {start}"
    )


def exact_disk_services(
    disk,
    sizes: np.ndarray,
    rng: np.random.Generator,
    noise_probability: float,
    noise_multiplier_mean: float,
) -> np.ndarray:
    """Disk service times for a miss stream, bit-identical to the scalar path.

    Reproduces, for each miss, exactly what
    :meth:`repro.cluster.storage_server.StorageServerModel.serve` draws on a
    cache miss: ``disk.sample_service_time`` (a positioning uniform, then the
    slow-access coin flip and exponential penalty) followed by the
    noisy-neighbour coin flip and exponential multiplier.  The generator is
    left in exactly the state the scalar path would leave it.

    Args:
        disk: A :class:`~repro.cluster.disk.DiskModel`.
        sizes: File size in bytes per miss, in serve order.
        rng: The server's generator, positioned at the start of the stream.
        noise_probability: Per-miss interference probability.
        noise_multiplier_mean: Mean of the exponential interference multiplier.

    Returns:
        Service time per miss, bitwise equal to the scalar draws.
    """
    n = len(sizes)
    lo = disk.min_positioning_s
    span = disk.max_positioning_s - disk.min_positioning_s
    slow_p = disk.slow_access_probability
    has_slow = slow_p > 0.0
    has_noise = noise_probability > 0.0
    columns = 1 + (1 if has_slow else 0) + (1 if has_noise else 0)
    xfer = np.asarray(sizes, dtype=float) / disk.transfer_bytes_per_sec
    if n == 0:
        return np.empty(0)

    if columns == 1:
        # No coin flips at all: one positioning uniform per miss.
        return lo + span * rng.random(n) + xfer

    trigger_p = (slow_p if has_slow else 0.0) + (noise_probability if has_noise else 0.0)
    slack = int(n * trigger_p * 16) + 1024
    block_len = n * columns + slack
    block = rng.random(block_len)
    physical = block_len  # generator position relative to the block start

    # Trigger candidates: only block values below the largest threshold can
    # trigger in *any* column alignment, so one global scan replaces the
    # historical per-window comparisons.  ``hot`` is sorted (flatnonzero of a
    # positional mask), which is exactly the scan order of the scalar path.
    max_p = max(slow_p if has_slow else 0.0, noise_probability if has_noise else 0.0)
    hot_positions = np.flatnonzero(block < max_p)
    # Python lists: the walk below touches each candidate once with plain-int
    # arithmetic, which beats per-element numpy scalar extraction ~3x.
    hot_list = hot_positions.tolist()
    hot_vals = block[hot_positions].tolist()
    num_hot = len(hot_list)

    exponential = rng.exponential
    random = rng.random
    advance = rng.bit_generator.advance

    extras = {}    # miss index -> uint64s consumed beyond the fixed columns
    replayed = {}  # miss index -> exactly-replayed service value

    noise_column = columns - 1  # noise flips sit in the last coin-flip column
    miss = 0    # next miss whose coin flips are unverified
    base = 0    # block offset of that miss's positioning uniform
    hot_at = 0  # monotone cursor into the candidate list
    while miss < n:
        limit = base + (n - miss) * columns  # end of the remaining fixed draws
        first = -1
        column = 0
        while hot_at < num_hot:
            position = hot_list[hot_at]
            if position < base:
                # Consumed by a previous trigger's exponential/probe draws.
                hot_at += 1
                continue
            if position >= limit:
                break
            offset_column = (position - base) % columns
            if offset_column == 1 and has_slow and hot_vals[hot_at] < slow_p:
                first, column = position, 1
                break
            if (
                offset_column == noise_column
                and offset_column != 0
                and has_noise
                and hot_vals[hot_at] < noise_probability
            ):
                first, column = position, noise_column
                break
            hot_at += 1
        if first < 0:
            break  # no further trigger: the tail is pure fixed-column draws
        local = (first - base) // columns
        t = miss + local
        q = base + local * columns  # block offset of miss t's uniform
        service = lo + span * block.item(q) + xfer.item(t)
        if has_slow and column == 1:
            # Slow access: the exponential follows the two fixed draws.
            target = q + 2
            advance((target - physical) % _TWO128)
            service += exponential(disk.slow_access_mean_s)
            probe = random()
            gap = _probe_match(block, target + 1, probe)
            physical = target + 1 + gap + 1
            extra = gap + 1
            if has_noise:
                # The probe is exactly the noise coin flip that the scalar
                # path would draw next.
                if probe < noise_probability:
                    noise = exponential(noise_multiplier_mean)
                    probe2 = random()
                    gap2 = _probe_match(block, physical, probe2)
                    service *= 1.0 + noise
                    physical += gap2 + 1
                    extra += gap2
        else:
            # Noise-only trigger: every fixed draw is already in the block
            # (the noise multiplier is the miss's final draw).
            target = q + columns
            advance((target - physical) % _TWO128)
            service *= 1.0 + exponential(noise_multiplier_mean)
            probe = random()
            gap = _probe_match(block, target + 1, probe)
            physical = target + 1 + gap + 1
            extra = gap + 1
        replayed[t] = service
        extras[t] = extra
        miss = t + 1
        base = q + columns + extra

    # Park the generator exactly where the scalar path would have: after the
    # fixed-column draws of every remaining (trigger-free) miss.
    advance((base + (n - miss) * columns - physical) % _TWO128)

    # Block offset of each miss's positioning uniform, via one cumsum.
    step = np.full(n, columns, dtype=np.int64)
    step[0] = 0
    if extras:
        after = np.fromiter(extras.keys(), dtype=np.int64, count=len(extras)) + 1
        ext = np.fromiter(extras.values(), dtype=np.int64, count=len(extras))
        keep = after < n
        np.add.at(step, after[keep], ext[keep])
    offsets = np.cumsum(step)
    out = lo + span * block[offsets] + xfer
    if replayed:
        idx = np.fromiter(replayed.keys(), dtype=np.int64, count=len(replayed))
        val = np.fromiter(replayed.values(), dtype=float, count=len(replayed))
        out[idx] = val
    return out


def sequential_finish_times(arrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """FIFO busy-period recursion, bit-identical to the per-request loop.

    ``finish[i] = max(finish[i-1], arrival[i]) + service[i]`` with the exact
    per-step rounding of the scalar code.  An algebraic cumsum/cummax rewrite
    would round differently and break byte-identity, and active-set
    relaxation schemes lose to the geometric tail of busy-period lengths (one
    long chain forces as many passes as its length) — the recursion is
    inherently sequential.  When the optional compiled kernel is available it
    runs the identical loop over C doubles; otherwise the Python loop does.
    """
    lib = _ckernels.load()
    if lib is not None:
        arrivals = np.ascontiguousarray(arrivals, dtype=float)
        services = np.ascontiguousarray(services, dtype=float)
        out = np.empty(len(arrivals))
        lib.seq_finish(
            arrivals.ctypes.data, services.ctypes.data, out.ctypes.data, len(out)
        )
        return out
    finish = []
    append = finish.append
    free = 0.0
    for arrival, service in zip(arrivals.tolist(), services.tolist()):
        if free <= arrival:
            free = arrival
        free = free + service
        append(free)
    return np.asarray(finish)
