"""The Section 2.3 memcached experiment.

Same setup as the disk-backed database but with the store entirely in memory:
service times are a fraction of a millisecond and not very variable, so the
client-side cost of processing a second response (measured in the paper at
>= 9% of the mean service time via a "stub" build whose memcached calls are
no-ops) eats the benefit of replication.  The paper's findings reproduced
here:

* replication worsens overall performance at every load from 10% to 90%
  (Figure 12);
* at a very low (0.1%) load, replication roughly breaks even in the real build
  (the paper measures a slight benefit there), while the stub build isolates
  the pure client-side overhead (Figure 13);
* hence the threshold load is small - well below 10%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.stats import LatencySummary
from repro.cluster.churn import (
    ChurnTimeline,
    migration_schedule,
    parse_churn,
    resolve_churn_placement,
    spike_metrics,
)
from repro.cluster.draws import resolve_draws_mode, sequential_finish_times
from repro.core.cancellation import simulate_cancelling_arrivals
from repro.core.policy import (
    PolicyDriver,
    PolicyLike,
    resolve_run_policy,
    run_policy_spec,
    simulate_hedged_arrivals,
)
from repro.exceptions import CapacityError, ConfigurationError
from repro.metrics import MetricsRegistry
from repro.sim.rng import substream


@dataclass(frozen=True)
class MemcachedConfig:
    """Configuration of the memcached experiment.

    Attributes:
        num_servers: Number of memcached servers.
        mean_service_s: Mean server-side service time (the paper measures
            ≈0.18 ms).
        service_spread: Half-width of the uniform body of the service time,
            as a fraction of the mean (the distribution is deliberately
            low-variance: the paper notes >99.9% of the mass lies within 4x of
            the mean).
        outlier_probability: Probability that a request hits a server-side
            outlier (GC pause, scheduling blip).
        outlier_scale_s: Mean of the exponential extra delay of an outlier.
        client_base_s: Client-side processing time for an unreplicated request
            (request serialisation, kernel, NIC).
        client_extra_copy_s: Additional client-side time per extra copy — the
            paper's stub measurement puts this at ≈0.016 ms, i.e. ≈9% of the
            mean service time.
        unmeasured_extra_copy_s: Additional per-extra-copy cost that the stub
            build cannot observe (network and kernel processing of the second
            response); the paper notes its stub figure "is an underestimate of
            the true client-side overhead" for exactly this reason.  Charged
            only in real (non-stub) runs.
        copies: Replication factor when replication is on.
        seed: Base random seed.
    """

    num_servers: int = 4
    mean_service_s: float = 0.00018
    service_spread: float = 0.3
    outlier_probability: float = 0.0005
    outlier_scale_s: float = 0.002
    client_base_s: float = 0.00004
    client_extra_copy_s: float = 0.000016
    unmeasured_extra_copy_s: float = 0.000006
    copies: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_servers < 2:
            raise ConfigurationError("need at least 2 servers to replicate across")
        if self.mean_service_s <= 0:
            raise ConfigurationError("mean_service_s must be positive")
        if not 0.0 <= self.service_spread < 1.0:
            raise ConfigurationError("service_spread must be in [0, 1)")
        if not 0.0 <= self.outlier_probability <= 1.0:
            raise ConfigurationError("outlier_probability must be in [0, 1]")
        if (
            self.outlier_scale_s < 0
            or self.client_base_s < 0
            or self.client_extra_copy_s < 0
            or self.unmeasured_extra_copy_s < 0
        ):
            raise ConfigurationError("latency parameters must be non-negative")
        if not 1 <= self.copies <= self.num_servers:
            raise ConfigurationError(
                f"copies must be in [1, {self.num_servers}], got {self.copies!r}"
            )

    def overhead_fraction(self) -> float:
        """Client overhead per extra copy as a fraction of the mean service time."""
        return self.client_extra_copy_s / self.mean_service_s

    def expected_service_s(self) -> float:
        """Mean server-side service time including the outlier contribution."""
        return self.mean_service_s + self.outlier_probability * self.outlier_scale_s


@dataclass(frozen=True)
class MemcachedRunResult:
    """Result of one (load, copies) memcached run.

    Attributes:
        load: Offered load (fraction of unreplicated capacity).
        copies: Copies per request.
        stub: Whether the run used the stub build (server calls replaced by
            no-ops, isolating client-side latency).
        response_times: Per-request response times in seconds.
        summary: Latency summary of ``response_times``.
        metrics: Snapshot of the run's metrics registry (``requests`` and
            ``copies_launched`` counters and the ``latency`` summary row).
        policy_spec: Canonical spec of the replication policy used (``None``
            for policies the spec language cannot express).
        copies_launched: Total copies actually issued (warmup included);
            under hedging, backups suppressed by a fast first response never
            launch.
        copies_cancelled: Copies cancelled while still queued after another
            copy won (warmup included); ``None`` unless the policy cancels
            on win (the event-driven cancellation engine ran).
        spike: Before/during/after p99 quantification of the membership-event
            latency spike (see :func:`repro.cluster.churn.spike_metrics`);
            ``None`` unless the run had a churn timeline.
    """

    load: float
    copies: int
    stub: bool
    response_times: np.ndarray
    summary: LatencySummary
    metrics: Optional[Dict[str, object]] = None
    policy_spec: Optional[str] = None
    copies_launched: Optional[int] = None
    copies_cancelled: Optional[int] = None
    spike: Optional[Dict[str, float]] = None

    @property
    def mean(self) -> float:
        """Mean response time in seconds."""
        return self.summary.mean


class MemcachedExperiment:
    """Drives the in-memory store model across loads and copy counts."""

    def __init__(self, config: Optional[MemcachedConfig] = None) -> None:
        """Create the experiment (default configuration = the paper's)."""
        self.config = config or MemcachedConfig()

    def _sample_service(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw server-side service times: a narrow uniform body plus rare outliers."""
        config = self.config
        spread = config.mean_service_s * config.service_spread
        body = rng.uniform(config.mean_service_s - spread, config.mean_service_s + spread, count)
        outliers = rng.random(count) < config.outlier_probability
        extra = rng.exponential(config.outlier_scale_s, count) * outliers
        return body + extra

    def run(
        self,
        load: float,
        copies: Optional[int] = None,
        stub: bool = False,
        num_requests: int = 50_000,
        warmup_fraction: float = 0.1,
        policy: Optional[PolicyLike] = None,
        draws: Optional[str] = None,
        churn: Optional[Union[str, ChurnTimeline]] = None,
        migration_rate: float = 2000.0,
        num_keys: int = 20_000,
        cold_penalty_s: float = 0.002,
    ) -> MemcachedRunResult:
        """Simulate the memcached cluster at one load.

        Args:
            load: Offered load as a fraction of unreplicated capacity.
            copies: Eager copies per request (defaults to the config's value);
                mutually exclusive with ``policy``.
            stub: Run the stub build: server calls return immediately, so the
                response time is pure client-side processing (Figure 13).
            num_requests: Requests to simulate.
            warmup_fraction: Leading fraction of requests discarded.
            policy: A :class:`~repro.core.policy.ReplicationPolicy` or spec
                string.  Eager policies take the original ``copies`` path
                byte-for-byte.  Under hedging, a backup GET launches only if
                the first response is still outstanding after the hedge delay
                — in the stub build the call returns in tens of microseconds,
                so hedged backups are almost always suppressed and the run
                isolates how little of the stub overhead a hedging client
                would actually pay.
            draws: ``"batched"`` (per-server vectorised queueing, default) or
                ``"legacy"`` (the original per-request loop); ``None``
                consults ``REPRO_DRAWS``.  Both are byte-identical.  Stub and
                hedged runs are unaffected (the stub path is already
                vectorised; hedged launches depend on earlier completions).
            churn: A membership-event timeline — a
                :class:`~repro.cluster.churn.ChurnTimeline` or spec string
                like ``"crash:1@0.4"`` (times are fractions of the arrival
                horizon).  Churn runs place keys on a consistent-hash ring
                over a ``num_keys`` keyspace (instead of the static runs'
                random placement): keys re-home per the live ring each
                epoch, migration SETs compete with foreground GETs in the
                gaining servers' FIFOs, and a GET served by a gaining server
                before its key's migration SET is scheduled pays
                ``cold_penalty_s`` (fetch-through from a surviving replica).
                Remove and crash are identical here (fail-stop, no drain).
            migration_rate: Migration SETs per second per gaining server.
            num_keys: Keyspace size of churn runs.
            cold_penalty_s: Server-side cost of a pre-migration cold read.

        Raises:
            CapacityError: If the offered load saturates the servers.
            ConfigurationError: If ``churn`` is combined with ``stub`` (the
                stub build has no servers to re-home keys across).
        """
        config = self.config
        hedged, k = resolve_run_policy(policy, copies, default_copies=config.copies)
        if not 1 <= k <= config.num_servers:
            raise ConfigurationError(f"copies must be in [1, {config.num_servers}], got {k!r}")
        if load <= 0:
            raise ConfigurationError(f"load must be positive, got {load!r}")
        eager_util = load if hedged is not None else k * load
        if not stub and eager_util >= 0.98:
            raise CapacityError(
                f"load {load:.2f} with {k} copies saturates the servers"
            )

        timeline = parse_churn(churn)
        if timeline:
            if stub:
                raise ConfigurationError("churn is not meaningful in the stub build")
            return self._run_churn(
                load,
                hedged,
                k,
                num_requests,
                warmup_fraction,
                timeline,
                migration_rate,
                num_keys,
                cold_penalty_s,
            )

        arrivals_rng = substream(config.seed, "arrivals", load, k, stub)
        service_rng = substream(config.seed, "service", load, k, stub)
        placement_rng = substream(config.seed, "placement", load, k, stub)

        mean_service = config.expected_service_s()
        total_rate = config.num_servers * load / mean_service
        arrival_times = np.cumsum(arrivals_rng.exponential(1.0 / total_rate, num_requests))

        stub_extra_s = config.client_extra_copy_s
        real_extra_s = config.client_extra_copy_s + config.unmeasured_extra_copy_s
        client_time = config.client_base_s + (stub_extra_s if stub else real_extra_s) * (k - 1)

        total_cancelled: Optional[int] = None
        if stub:
            # Stub build: the memcached call is a no-op, so the response time
            # is client processing only (plus its own small jitter).
            jitter = service_rng.uniform(0.8, 1.2, num_requests)
            if hedged is None:
                response = client_time * jitter
                total_launched = num_requests * k
            else:
                driver = PolicyDriver(hedged)
                response = np.empty(num_requests)
                total_launched = 0
                base = config.client_base_s
                for i in range(num_requests):
                    plan = driver.plan_for(arrival_times[i])
                    first = base * jitter[i]
                    extras = sum(1 for d in plan.launch_delays[1:k] if d < first)
                    value = (base + stub_extra_s * extras) * jitter[i]
                    response[i] = value
                    total_launched += 1 + extras
                    driver.complete(arrival_times[i] + value, value)
        elif hedged is None:
            service_times = self._sample_service(service_rng, num_requests * k).reshape(
                num_requests, k
            )
            placements = self._choose_servers(placement_rng, num_requests, k)
            if resolve_draws_mode(draws) == "batched":
                # Copies are served in flat (request, copy) order and each
                # touches exactly one server's FIFO queue, so the per-server
                # busy-period recursion over the grouped accesses reproduces
                # the scalar loop bit-for-bit.
                srv_flat = placements.ravel()
                svc_flat = service_times.ravel()
                arr_flat = np.repeat(arrival_times, k)
                finish_flat = np.empty(num_requests * k)
                for server in range(config.num_servers):
                    pos = np.flatnonzero(srv_flat == server)
                    if pos.size:
                        finish_flat[pos] = sequential_finish_times(
                            arr_flat[pos], svc_flat[pos]
                        )
                elapsed = finish_flat.reshape(num_requests, k) - arrival_times[:, None]
                response = elapsed.min(axis=1) + client_time
            else:
                free_at = np.zeros(config.num_servers)
                response = np.empty(num_requests)
                for i in range(num_requests):
                    arrival = arrival_times[i]
                    best = np.inf
                    for j in range(k):
                        server = placements[i, j]
                        start = free_at[server] if free_at[server] > arrival else arrival
                        finish = start + service_times[i, j]
                        free_at[server] = finish
                        elapsed = finish - arrival
                        if elapsed < best:
                            best = elapsed
                    response[i] = best + client_time
            total_launched = num_requests * k
        else:
            service_times = self._sample_service(service_rng, num_requests * k).reshape(
                num_requests, k
            )
            placements = self._choose_servers(placement_rng, num_requests, k)

            if hedged.cancel_on_win:
                # Cancellation retroactively shifts queued starts, so the
                # known-completion FIFO engine cannot express it; run the
                # event-driven cancellable engine.  Service times stay
                # pre-drawn per (request, copy), so the two engines agree
                # on what each copy would have cost.  The no-cancel branch
                # below stays byte-identical to earlier releases.
                def server_index(request: int, copy: int) -> int:
                    return int(placements[request, copy])

                def begin(request: int, copy: int, at: float):
                    return ("service", float(service_times[request, copy]), 0.0)

                finish_at, launched_arr, cancelled_arr = simulate_cancelling_arrivals(
                    hedged, arrival_times, k, server_index, begin
                )
                # Cancelled copies never return a response, so they carry no
                # per-copy client combining overhead.
                billable = launched_arr - cancelled_arr
                total_cancelled = int(cancelled_arr.sum())
            else:
                free_at = np.zeros(config.num_servers)

                def launch(request: int, copy: int, at: float) -> float:
                    server = placements[request, copy]
                    start = free_at[server] if free_at[server] > at else at
                    finish = start + service_times[request, copy]
                    free_at[server] = finish
                    return finish

                finish_at, launched_arr = simulate_hedged_arrivals(
                    hedged, arrival_times, k, launch
                )
                billable = launched_arr
            response = (
                (finish_at - arrival_times)
                + config.client_base_s
                + real_extra_s * (billable - 1)
            )
            total_launched = int(launched_arr.sum())

        start = int(num_requests * warmup_fraction)
        retained = response[start:]
        registry = MetricsRegistry("memcached")
        registry.counter("requests").increment(num_requests)
        registry.counter("copies_launched").increment(total_launched)
        recorder = registry.recorder("latency")
        recorder.record_many(retained)
        return MemcachedRunResult(
            load=float(load),
            copies=k,
            stub=stub,
            response_times=retained,
            summary=recorder.summary(),
            metrics=registry.snapshot(),
            policy_spec=run_policy_spec(hedged, k),
            copies_launched=total_launched,
            copies_cancelled=total_cancelled,
        )

    def _run_churn(
        self,
        load: float,
        hedged,
        k: int,
        num_requests: int,
        warmup_fraction: float,
        timeline: ChurnTimeline,
        migration_rate: float,
        num_keys: int,
        cold_penalty_s: float,
    ) -> MemcachedRunResult:
        """One run under a membership-event timeline (ring-placed keys).

        GETs go to the replica set the live ring names for their key; each
        membership change schedules migration SETs on the gaining servers —
        paced at ``migration_rate`` per server — which occupy the same FIFOs
        as foreground traffic, and a GET that reaches a gaining server before
        its key's migration SET is scheduled pays ``cold_penalty_s`` on top
        of its drawn service time (the fetch-through from a surviving
        replica).  Remove and crash plan identical migrations (fail-stop, no
        drain), so crash-at-t is byte-identical to remove-at-t.
        """
        config = self.config
        placement = resolve_churn_placement()
        rings = timeline.epoch_rings(config.num_servers)
        min_live = min(ring.num_servers for ring in rings)
        if k > min_live:
            raise ConfigurationError(
                f"copies={k} exceeds the {min_live} servers live in the "
                f"smallest epoch of churn {timeline.spec()!r}"
            )
        if num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {num_keys!r}")
        if cold_penalty_s < 0:
            raise ConfigurationError(
                f"cold_penalty_s must be >= 0, got {cold_penalty_s!r}"
            )

        arrivals_rng = substream(config.seed, "arrivals", load, k, False)
        service_rng = substream(config.seed, "service", load, k, False)
        keys_rng = substream(config.seed, "keys", load, k)
        migration_rng = substream(config.seed, "migration", load, k)

        mean_service = config.expected_service_s()
        total_rate = config.num_servers * load / mean_service
        arrival_times = np.cumsum(arrivals_rng.exponential(1.0 / total_rate, num_requests))
        service_times = self._sample_service(service_rng, num_requests * k).reshape(
            num_requests, k
        )
        key_ids = keys_rng.integers(0, num_keys, size=num_requests)

        horizon = float(arrival_times[-1])
        event_times = timeline.event_times(horizon)
        epoch_of = np.searchsorted(event_times, arrival_times, side="right")
        replica_lists = np.empty((num_requests, k), dtype=np.int64)
        if placement == "epoch":
            for epoch, ring in enumerate(rings):
                pos = np.flatnonzero(epoch_of == epoch)
                if pos.size:
                    replica_lists[pos] = ring.replica_table(key_ids[pos].tolist(), k)
        else:
            for i in range(num_requests):
                replica_lists[i] = rings[epoch_of[i]].replicas_for(int(key_ids[i]), k)

        mig_times, mig_servers, mig_keys = migration_schedule(
            rings, event_times, num_keys, migration_rate, horizon
        )
        num_migrations = len(mig_times)
        mig_services = self._sample_service(migration_rng, num_migrations)
        # A (server, key) pair is cold from the event until its migration SET
        # is scheduled; earliest schedule wins if several events move it.
        migrated_at: Dict[tuple, float] = {}
        for j in range(num_migrations):
            pair = (int(mig_servers[j]), int(mig_keys[j]))
            if pair not in migrated_at:
                migrated_at[pair] = float(mig_times[j])

        def cold_tail(request: int, copy: int, at: float) -> float:
            # The fetch-through from a surviving replica is time the *client*
            # waits, not time the gaining server is busy: it adds to this
            # copy's completion but does not occupy the FIFO (so a failover
            # cannot saturate the pool through the penalty alone).
            pair = (int(replica_lists[request, copy]), int(key_ids[request]))
            when = migrated_at.get(pair)
            if when is not None and at < when:
                return cold_penalty_s
            return 0.0

        real_extra_s = config.client_extra_copy_s + config.unmeasured_extra_copy_s
        total_cancelled: Optional[int] = None
        all_servers = timeline.all_servers(config.num_servers)

        if hedged is None:
            free_at: Dict[int, float] = {sid: 0.0 for sid in all_servers}
            client_time = config.client_base_s + real_extra_s * (k - 1)
            response = np.empty(num_requests)
            m = 0
            for i in range(num_requests):
                arrival = float(arrival_times[i])
                while m < num_migrations and mig_times[m] <= arrival:
                    g = int(mig_servers[m])
                    start = free_at[g] if free_at[g] > mig_times[m] else float(mig_times[m])
                    free_at[g] = start + float(mig_services[m])
                    m += 1
                best = np.inf
                for copy in range(k):
                    server = int(replica_lists[i, copy])
                    start = free_at[server] if free_at[server] > arrival else arrival
                    finish = start + float(service_times[i, copy])
                    free_at[server] = finish
                    elapsed = finish - arrival + cold_tail(i, copy, arrival)
                    if elapsed < best:
                        best = elapsed
                response[i] = best + client_time
            total_launched = num_requests * k
        elif hedged.cancel_on_win:

            def server_index(request: int, copy: int) -> int:
                return int(replica_lists[request, copy])

            def begin(request: int, copy: int, at: float):
                return (
                    "service",
                    float(service_times[request, copy]),
                    cold_tail(request, copy, at),
                )

            def begin_background(job: int, at: float):
                return ("service", float(mig_services[job]), 0.0)

            background = [
                (float(mig_times[j]), int(mig_servers[j]), j)
                for j in range(num_migrations)
            ]
            finish_at, launched_arr, cancelled_arr = simulate_cancelling_arrivals(
                hedged,
                arrival_times,
                k,
                server_index,
                begin,
                background_jobs=background,
                begin_background=begin_background,
            )
            billable = launched_arr - cancelled_arr
            total_cancelled = int(cancelled_arr.sum())
            response = (
                (finish_at - arrival_times)
                + config.client_base_s
                + real_extra_s * (billable - 1)
            )
            total_launched = int(launched_arr.sum())
        else:
            free_at = {sid: 0.0 for sid in all_servers}
            state = {"next": 0}

            def launch(request: int, copy: int, at: float) -> float:
                m = state["next"]
                while m < num_migrations and mig_times[m] <= at:
                    g = int(mig_servers[m])
                    start = free_at[g] if free_at[g] > mig_times[m] else float(mig_times[m])
                    free_at[g] = start + float(mig_services[m])
                    m += 1
                state["next"] = m
                server = int(replica_lists[request, copy])
                start = free_at[server] if free_at[server] > at else at
                finish = start + float(service_times[request, copy])
                free_at[server] = finish
                return finish + cold_tail(request, copy, at)

            finish_at, launched_arr = simulate_hedged_arrivals(
                hedged, arrival_times, k, launch
            )
            response = (
                (finish_at - arrival_times)
                + config.client_base_s
                + real_extra_s * (launched_arr - 1)
            )
            total_launched = int(launched_arr.sum())

        start_index = int(num_requests * warmup_fraction)
        retained = response[start_index:]
        spike = spike_metrics(arrival_times[start_index:], retained, event_times)
        registry = MetricsRegistry("memcached")
        registry.counter("requests").increment(num_requests)
        registry.counter("copies_launched").increment(total_launched)
        registry.counter("migration_jobs").increment(num_migrations)
        recorder = registry.recorder("latency")
        recorder.record_many(retained)
        return MemcachedRunResult(
            load=float(load),
            copies=k,
            stub=False,
            response_times=retained,
            summary=recorder.summary(),
            metrics=registry.snapshot(),
            policy_spec=run_policy_spec(hedged, k),
            copies_launched=total_launched,
            copies_cancelled=total_cancelled,
            spike=spike,
        )

    def _choose_servers(
        self, rng: np.random.Generator, num_requests: int, copies: int
    ) -> np.ndarray:
        if copies == 1:
            return rng.integers(0, self.config.num_servers, size=(num_requests, 1))
        scores = rng.random((num_requests, self.config.num_servers))
        return np.argpartition(scores, copies - 1, axis=1)[:, :copies]

    def sweep(
        self,
        loads: Sequence[float],
        copies_list: Sequence[int] = (1, 2),
        num_requests: int = 50_000,
    ) -> Dict[int, List[MemcachedRunResult]]:
        """Load sweep per copy count, skipping saturated points (Figure 12)."""
        results: Dict[int, List[MemcachedRunResult]] = {}
        for k in copies_list:
            per_copy: List[MemcachedRunResult] = []
            for load in loads:
                try:
                    per_copy.append(self.run(load, copies=k, num_requests=num_requests))
                except CapacityError:
                    continue
            results[int(k)] = per_copy
        return results

    def stub_comparison(
        self, load: float = 0.001, num_requests: int = 50_000
    ) -> Dict[str, MemcachedRunResult]:
        """The Figure 13 comparison: real vs stub builds, 1 vs 2 copies, at low load.

        Returns:
            A dict with keys ``"real_1"``, ``"real_2"``, ``"stub_1"``, ``"stub_2"``.
        """
        return {
            "real_1": self.run(load, copies=1, stub=False, num_requests=num_requests),
            "real_2": self.run(load, copies=2, stub=False, num_requests=num_requests),
            "stub_1": self.run(load, copies=1, stub=True, num_requests=num_requests),
            "stub_2": self.run(load, copies=2, stub=True, num_requests=num_requests),
        }
