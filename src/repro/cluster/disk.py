"""Disk service-time model.

The paper's servers use 10k RPM disks, and "disk is the bottleneck in the
majority of our experiments"; the dominant cost of a small-file read is
*locating* the file (seek + rotational latency), not transferring it, which is
why Figures 6 and 7 show that the file-size distribution barely matters as
long as files stay small.

:class:`DiskModel` captures that structure plus the tail behaviour real disks
exhibit: a random positioning time (seek + rotation, drawn per request), a
deterministic transfer time proportional to the file size, and an occasional
*slow access* (long seek chains, remapped sectors, filesystem journaling or
background writeback interfering with the read) that produces the
hundred-millisecond outliers visible in the paper's 99th/99.9th percentile
curves.  Those rare slow accesses are precisely what redundancy masks: the
probability that both replicas hit one simultaneously is the square of an
already small number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DiskModel:
    """Service-time model for a single rotating disk.

    The per-request service time is::

        positioning + size_bytes / transfer_bytes_per_sec [+ slow-access delay]

    where ``positioning`` is drawn uniformly from
    ``[min_positioning_s, max_positioning_s]`` (seek distance and rotational
    phase are effectively uniform for random small-file reads), and with
    probability ``slow_access_probability`` an additional exponential delay of
    mean ``slow_access_mean_s`` models interference from background I/O.

    Default values model a 10k RPM SATA disk: positioning 3-11 ms,
    ~70 MB/s sequential transfer, and ~1.5% of accesses hitting a slow patch
    averaging 60 ms.

    Attributes:
        min_positioning_s: Fastest possible positioning time.
        max_positioning_s: Slowest possible positioning time.
        transfer_bytes_per_sec: Sequential transfer rate.
        slow_access_probability: Probability of a slow access.
        slow_access_mean_s: Mean extra delay of a slow access (exponential).
    """

    min_positioning_s: float = 0.003
    max_positioning_s: float = 0.011
    transfer_bytes_per_sec: float = 70e6
    slow_access_probability: float = 0.015
    slow_access_mean_s: float = 0.060

    def __post_init__(self) -> None:
        if self.min_positioning_s < 0 or self.max_positioning_s <= 0:
            raise ConfigurationError("positioning times must be non-negative / positive")
        if self.max_positioning_s < self.min_positioning_s:
            raise ConfigurationError("max_positioning_s must be >= min_positioning_s")
        if self.transfer_bytes_per_sec <= 0:
            raise ConfigurationError("transfer_bytes_per_sec must be positive")
        if not 0.0 <= self.slow_access_probability <= 1.0:
            raise ConfigurationError("slow_access_probability must be in [0, 1]")
        if self.slow_access_mean_s < 0:
            raise ConfigurationError("slow_access_mean_s must be >= 0")

    @property
    def mean_positioning_s(self) -> float:
        """Mean of the uniform positioning-time distribution."""
        return 0.5 * (self.min_positioning_s + self.max_positioning_s)

    def mean_service_time(self, size_bytes: float) -> float:
        """Expected service time for a read of ``size_bytes`` (slow accesses included)."""
        if size_bytes < 0:
            raise ConfigurationError(f"size_bytes must be >= 0, got {size_bytes!r}")
        return (
            self.mean_positioning_s
            + size_bytes / self.transfer_bytes_per_sec
            + self.slow_access_probability * self.slow_access_mean_s
        )

    def sample_service_time(self, size_bytes: float, rng: np.random.Generator) -> float:
        """Draw one service time for a read of ``size_bytes``."""
        if size_bytes < 0:
            raise ConfigurationError(f"size_bytes must be >= 0, got {size_bytes!r}")
        positioning = rng.uniform(self.min_positioning_s, self.max_positioning_s)
        service = positioning + size_bytes / self.transfer_bytes_per_sec
        if self.slow_access_probability > 0 and rng.random() < self.slow_access_probability:
            service += rng.exponential(self.slow_access_mean_s)
        return float(service)

    def sample_service_times(self, sizes_bytes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorised version of :meth:`sample_service_time`."""
        sizes = np.asarray(sizes_bytes, dtype=float)
        if np.any(sizes < 0):
            raise ConfigurationError("sizes must be >= 0")
        positioning = rng.uniform(self.min_positioning_s, self.max_positioning_s, sizes.shape)
        service = positioning + sizes / self.transfer_bytes_per_sec
        if self.slow_access_probability > 0:
            slow = rng.random(sizes.shape) < self.slow_access_probability
            service = service + rng.exponential(self.slow_access_mean_s, sizes.shape) * slow
        return service
