"""The Section 2.2 disk-backed database experiment.

A set of storage servers hosts a static collection of files placed by
consistent hashing, with the replica of every file on the successor server.
Open-loop Poisson clients read files chosen uniformly at random; in the
replicated configuration every read is sent to both the primary and the
secondary and the first response wins, at the price of the client processing
two responses.

The experiment driver reproduces the paper's configurations (Figures 5-11) via
named constructors on :class:`DatabaseClusterConfig` and reports the same
quantities the figures plot: mean and 99.9th-percentile response time versus
load, and the response-time CDF at 20% load.

Replication is expressed as a :class:`~repro.core.policy.ReplicationPolicy`:
``run(load, policy="hedge:10ms")`` defers the secondary read until the primary
has been outstanding for 10 ms, while ``copies=k`` (the paper's eager scheme)
stays supported as sugar for ``policy="k<N>"`` and routes through the original
code path byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.stats import LatencySummary
from repro.cluster.cache import LRUByteCache
from repro.cluster.churn import (
    ChurnTimeline,
    migration_schedule,
    parse_churn,
    resolve_churn_placement,
    spike_metrics,
)
from repro.cluster.consistent_hash import ConsistentHashRing
from repro.cluster.draws import (
    exact_disk_services,
    resolve_draws_mode,
    sequential_finish_times,
)
from repro.cluster.lru_kernel import equal_item_capacity, lru_hit_flags
from repro.core.cancellation import simulate_cancelling_arrivals
from repro.core.policy import (
    PolicyLike,
    resolve_run_policy,
    run_policy_spec,
    simulate_hedged_arrivals,
)
from repro.metrics import MetricsRegistry
from repro.cluster.disk import DiskModel
from repro.cluster.storage_server import StorageServerModel
from repro.distributions.base import Distribution
from repro.exceptions import CapacityError, ConfigurationError
from repro.sim.rng import substream
from repro.workloads.filesets import FileSet


@dataclass(frozen=True)
class DatabaseClusterConfig:
    """Configuration of the disk-backed database experiment.

    The defaults are the paper's base configuration (Figure 5): 4 servers,
    10 clients, deterministic 4 KB files, cache:data ratio 0.1, dedicated
    hardware.  Named constructors produce the variations of Figures 6-11.

    Attributes:
        num_servers: Number of storage servers.
        num_clients: Number of client nodes (affects only how the aggregate
            arrival rate is split; clients are open-loop).
        num_files: Number of files in the collection (the simulation keeps the
            cache:data *ratio* of the paper rather than its absolute sizes).
        mean_file_bytes: Mean file size.
        file_size_distribution: Distribution of file sizes (``None`` =
            deterministic, the base configuration).
        cache_to_data_ratio: Aggregate cache capacity divided by aggregate
            data-set size (0.1 base, 0.01 in Figure 8, 2 in Figure 11).
        disk: Disk service-time model.
        memory_service_s: Service time of a cache hit.
        noise_probability: Probability of noisy-neighbour interference on a
            disk access (0 on dedicated hardware, > 0 for the EC2 config).
        noise_multiplier_mean: Mean exponential multiplier for interfered
            accesses.
        client_cpu_overhead_s: Fixed client-side CPU/kernel cost per *extra*
            response processed.
        client_bandwidth_bytes_per_s: Client access-link bandwidth, charging
            each extra response's transfer against the client.
        copies: Replication factor when replication is on (the paper uses 2).
        seed: Base random seed.
    """

    num_servers: int = 4
    num_clients: int = 10
    num_files: int = 100_000
    mean_file_bytes: float = 4_000.0
    file_size_distribution: Optional[Distribution] = None
    cache_to_data_ratio: float = 0.1
    disk: DiskModel = field(default_factory=DiskModel)
    memory_service_s: float = 0.0002
    noise_probability: float = 0.0
    noise_multiplier_mean: float = 8.0
    client_cpu_overhead_s: float = 0.00003
    client_bandwidth_bytes_per_s: float = 125e6
    copies: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_servers < 2:
            raise ConfigurationError("need at least 2 servers for primary/secondary placement")
        if self.num_clients < 1:
            raise ConfigurationError("need at least 1 client")
        if self.num_files < 1:
            raise ConfigurationError("need at least 1 file")
        if self.mean_file_bytes <= 0:
            raise ConfigurationError("mean_file_bytes must be positive")
        if self.cache_to_data_ratio <= 0:
            raise ConfigurationError("cache_to_data_ratio must be positive")
        if self.copies < 1 or self.copies > self.num_servers:
            raise ConfigurationError(
                f"copies must be in [1, {self.num_servers}], got {self.copies!r}"
            )

    # --------------------------- paper configurations --------------------- #

    @classmethod
    def base(cls, **overrides) -> "DatabaseClusterConfig":
        """Figure 5: the base configuration."""
        return cls(**overrides)

    @classmethod
    def small_files(cls, **overrides) -> "DatabaseClusterConfig":
        """Figure 6: mean file size 0.04 KB instead of 4 KB."""
        return cls(mean_file_bytes=40.0, **overrides)

    @classmethod
    def pareto_files(cls, **overrides) -> "DatabaseClusterConfig":
        """Figure 7: Pareto file-size distribution instead of deterministic."""
        from repro.distributions.standard import Pareto

        return cls(file_size_distribution=Pareto(alpha=2.1, mean=1.0), **overrides)

    @classmethod
    def small_cache(cls, **overrides) -> "DatabaseClusterConfig":
        """Figure 8: cache:data ratio 0.01 (more accesses hit disk)."""
        return cls(cache_to_data_ratio=0.01, **overrides)

    @classmethod
    def ec2(cls, **overrides) -> "DatabaseClusterConfig":
        """Figure 9: shared (EC2-like) servers with noisy-neighbour interference."""
        return cls(noise_probability=0.05, noise_multiplier_mean=8.0, **overrides)

    @classmethod
    def large_files(cls, **overrides) -> "DatabaseClusterConfig":
        """Figure 10: mean file size 400 KB (client overhead becomes significant)."""
        return cls(mean_file_bytes=400_000.0, **overrides)

    @classmethod
    def all_cached(cls, **overrides) -> "DatabaseClusterConfig":
        """Figure 11: cache:data ratio 2 (the whole data set fits in memory)."""
        return cls(cache_to_data_ratio=2.0, **overrides)

    # ----------------------------- derived values ------------------------- #

    @property
    def total_data_bytes(self) -> float:
        """Aggregate size of the file collection."""
        return self.num_files * self.mean_file_bytes

    @property
    def cache_bytes_per_server(self) -> float:
        """Per-server page-cache capacity implied by the cache:data ratio."""
        return self.cache_to_data_ratio * self.total_data_bytes / self.num_servers

    def expected_hit_ratio(self, copies: int) -> float:
        """Rough steady-state cache hit ratio for load calibration.

        With uniform popularity and LRU, a server's hit ratio is approximately
        its cache capacity divided by the size of the data it actually serves:
        its primary share when queries are unreplicated, primary plus secondary
        share when every query is replicated.
        """
        served_fraction = min(copies, 2) / self.num_servers
        served_bytes = served_fraction * self.total_data_bytes
        return min(1.0, self.cache_bytes_per_server / served_bytes)

    def expected_service_time(self, copies: int = 1) -> float:
        """Expected per-request service time at the bottleneck resource.

        Used to convert the paper's "load" axis into an arrival rate: load is
        defined as (arrival rate per server) x (expected unreplicated service
        time per request).
        """
        hit = self.expected_hit_ratio(copies)
        miss_service = self.disk.mean_service_time(self.mean_file_bytes) * (
            1.0 + self.noise_probability * self.noise_multiplier_mean
        )
        return hit * self.memory_service_s + (1.0 - hit) * miss_service

    def client_overhead_per_extra_copy(self) -> float:
        """Client-side latency cost of processing one extra response."""
        return (
            self.client_cpu_overhead_s
            + self.mean_file_bytes / self.client_bandwidth_bytes_per_s
        )


@dataclass(frozen=True)
class DatabaseRunResult:
    """Result of one (load, copies) run of the database experiment.

    Attributes:
        load: Offered load (fraction of unreplicated capacity).
        copies: Number of copies each read was sent to.
        response_times: Per-request response times in seconds (warmup removed).
        summary: Latency summary of ``response_times``.
        cache_hit_ratio: Aggregate cache hit ratio observed across servers.
        metrics: Snapshot of the run's metrics registry (``requests``,
            ``cache_hits``, ``cache_misses`` counters and the ``latency``
            summary row).
        policy_spec: Canonical spec of the replication policy used (``None``
            for policies the spec language cannot express).
        copies_launched: Total reads actually dispatched (warmup included);
            smaller than ``copies * num_requests`` under hedging because
            suppressed backups never launch.
        copies_cancelled: Reads cancelled while still queued after another
            copy won (warmup included); ``None`` unless the policy cancels
            on win (the event-driven cancellation engine ran).
        spike: Before/during/after p99 quantification of the membership-event
            latency spike (see :func:`repro.cluster.churn.spike_metrics`);
            ``None`` unless the run had a churn timeline.
    """

    load: float
    copies: int
    response_times: np.ndarray
    summary: LatencySummary
    cache_hit_ratio: float
    metrics: Optional[Dict[str, object]] = None
    policy_spec: Optional[str] = None
    copies_launched: Optional[int] = None
    copies_cancelled: Optional[int] = None
    spike: Optional[Dict[str, float]] = None

    @property
    def mean(self) -> float:
        """Mean response time in seconds."""
        return self.summary.mean

    @property
    def p999(self) -> float:
        """99.9th percentile response time in seconds."""
        return self.summary.p999


# Consistent-hash placement memo shared across experiment instances, keyed by
# (num_servers, virtual_nodes, num_files).  Entries are read-only.
_PRIMARIES_CACHE: Dict[Tuple[int, int, int], np.ndarray] = {}

# Cache-warm candidate memo for the batched path, keyed by (seed,
# virtual_nodes, num_files, num_servers, copies).  The shuffled per-server
# warm orders depend only on the placement and the warm substream, both fixed
# across the loads of a sweep, so re-shuffling them per point is pure
# overhead.  Entries are tuples of read-only arrays.
_WARM_CACHE: Dict[Tuple[int, int, int, int, int], Tuple[np.ndarray, ...]] = {}


class DatabaseClusterExperiment:
    """Drives the disk-backed database model across loads and copy counts."""

    def __init__(self, config: DatabaseClusterConfig) -> None:
        """Create an experiment for ``config``."""
        self.config = config
        self._ring = ConsistentHashRing(config.num_servers)
        self._fileset = self._build_fileset()
        self._primaries = self._assign_primaries()

    # ------------------------------------------------------------------ #

    def _build_fileset(self) -> FileSet:
        config = self.config
        if config.file_size_distribution is None:
            sizes = np.full(config.num_files, float(config.mean_file_bytes))
        else:
            rng = substream(config.seed, "file-sizes")
            scaled = config.file_size_distribution.scaled_to_mean(config.mean_file_bytes)
            sizes = np.maximum(np.asarray(scaled.sample(rng, config.num_files), dtype=float), 1.0)
        return FileSet(sizes_bytes=sizes)

    def _assign_primaries(self) -> np.ndarray:
        """Primary server of every file, via the consistent-hash ring.

        The placement depends only on the ring geometry and the file count, so
        the batched mode memoises it at module level (a sweep re-creates the
        experiment per point, and re-hashing 100k file ids per point is pure
        overhead).  Legacy mode recomputes it with the original per-file loop.
        """
        config = self.config
        if resolve_draws_mode() == "legacy":
            primaries = np.empty(config.num_files, dtype=np.int64)
            for file_id in range(config.num_files):
                primaries[file_id] = self._ring.primary_for(file_id)
            return primaries
        key = (config.num_servers, self._ring.virtual_nodes, config.num_files)
        cached = _PRIMARIES_CACHE.get(key)
        if cached is None:
            cached = self._ring.primary_for_many(range(config.num_files))
            _PRIMARIES_CACHE[key] = cached
        return cached

    def _build_servers(self, run_seed: Tuple[int, ...]) -> List[StorageServerModel]:
        config = self.config
        servers = []
        for server_id in range(config.num_servers):
            servers.append(
                StorageServerModel(
                    server_id=server_id,
                    cache_bytes=config.cache_bytes_per_server,
                    disk=config.disk,
                    memory_service_s=config.memory_service_s,
                    noise_probability=config.noise_probability,
                    noise_multiplier_mean=config.noise_multiplier_mean,
                    rng=substream(config.seed, "server", server_id, *run_seed),
                )
            )
        return servers

    def _warm_caches(self, servers: List[StorageServerModel], copies: int) -> None:
        """Pre-fill each cache with a random sample of the files it serves.

        Skipping the cold-start transient keeps short runs representative of
        steady state (the paper measures a long-running warmed system).
        """
        config = self.config
        rng = substream(config.seed, "cache-warm")
        sizes = self._fileset.sizes_bytes
        for server in servers:
            if copies >= 2:
                mask = (self._primaries == server.server_id) | (
                    (self._primaries + 1) % config.num_servers == server.server_id
                )
            else:
                mask = self._primaries == server.server_id
            candidates = np.flatnonzero(mask)
            if candidates.size == 0:
                continue
            rng.shuffle(candidates)
            server.cache.warm_with((int(f), float(sizes[f])) for f in candidates)

    # ------------------------------------------------------------------ #

    def run(
        self,
        load: float,
        copies: Optional[int] = None,
        num_requests: int = 40_000,
        warmup_fraction: float = 0.2,
        policy: Optional[PolicyLike] = None,
        draws: Optional[str] = None,
        churn: Optional[Union[str, ChurnTimeline]] = None,
        migration_rate: float = 50.0,
    ) -> DatabaseRunResult:
        """Simulate the cluster at one load.

        Args:
            load: Offered load as a fraction of unreplicated capacity, in
                ``(0, 1)``; with ``copies`` eager copies the bottleneck
                utilisation is roughly ``copies * load``, so replicated runs
                are only stable below ``1 / copies``.
            copies: Eager copies per request (defaults to the config's value);
                mutually exclusive with ``policy``.
            num_requests: Number of client requests to simulate.
            warmup_fraction: Leading fraction of requests discarded.
            policy: A :class:`~repro.core.policy.ReplicationPolicy` or spec
                string (``"none"``, ``"k2"``, ``"hedge:10ms"``,
                ``"hedge:p95"``).  Eager policies route through the original
                ``copies`` code path byte-for-byte; hedging policies defer
                the secondary read and suppress it when the primary answered
                first, charging client overhead only for responses actually
                processed.
            draws: ``"batched"`` (vectorised pre-drawn randomness, the
                default) or ``"legacy"`` (the original per-request scalar
                draws); ``None`` consults the ``REPRO_DRAWS`` environment
                variable.  Both modes produce byte-identical results — the
                batched mode consumes the same substreams in the same order.
                Hedged policies always use the scalar path (backup launches
                depend on earlier completions).
            churn: A membership-event timeline — a
                :class:`~repro.cluster.churn.ChurnTimeline` or spec string
                like ``"remove:2@0.4"`` (times are fractions of the arrival
                horizon).  Keys are re-homed per the live ring each epoch,
                migration reads compete with foreground requests on the
                gaining servers' disks (and warm their LRU caches), and
                servers added mid-run start cold.  Remove and crash are
                identical here (fail-stop, no drain).  An empty timeline is
                exactly the static run.
            migration_rate: Migration reads per second per gaining server.

        Returns:
            A :class:`DatabaseRunResult`.

        Raises:
            CapacityError: If the replicated load would saturate the disks.
        """
        config = self.config
        hedged, k = resolve_run_policy(policy, copies, default_copies=config.copies)
        if not 1 <= k <= config.num_servers:
            raise ConfigurationError(f"copies must be in [1, {config.num_servers}], got {k!r}")
        if load <= 0:
            raise ConfigurationError(f"load must be positive, got {load!r}")
        if hedged is None:
            effective_load = (
                load * k * config.expected_service_time(k) / config.expected_service_time(1)
            )
        else:
            # Hedged backups launch only for slow requests, so only the
            # unconditional baseline utilisation can be rejected up front.
            effective_load = load
        if effective_load >= 0.98:
            raise CapacityError(
                f"load {load:.2f} with {k} copies gives bottleneck utilisation "
                f"~{effective_load:.2f}; the system has no steady state there"
            )
        if num_requests < 100:
            raise ConfigurationError(f"num_requests must be >= 100, got {num_requests!r}")

        timeline = parse_churn(churn)
        if timeline:
            return self._run_churn(
                load, hedged, k, num_requests, warmup_fraction, timeline, migration_rate
            )

        arrivals_rng = substream(config.seed, "arrivals", load)
        keys_rng = substream(config.seed, "keys", load)

        mean_service = config.expected_service_time(1)
        total_rate = config.num_servers * load / mean_service
        gaps = arrivals_rng.exponential(1.0 / total_rate, num_requests)
        arrival_times = np.cumsum(gaps)
        file_ids = keys_rng.integers(0, config.num_files, size=num_requests)
        sizes = self._fileset.sizes_bytes[file_ids]
        primaries = self._primaries[file_ids]

        run_seed = (k, hash(round(load, 6)) & 0xFFFF)
        overhead_unit = config.client_overhead_per_extra_copy()
        num_servers = config.num_servers
        mode = resolve_draws_mode(draws)
        total_cancelled: Optional[int] = None
        if hedged is None and mode == "batched":
            overhead = overhead_unit * (k - 1)
            best, hits, misses = self._eager_batched(
                k, arrival_times, file_ids, sizes, primaries, run_seed
            )
            response = best + overhead
            total_launched = num_requests * k
        elif hedged is None:
            servers = self._build_servers(run_seed=run_seed)
            self._warm_caches(servers, k)
            overhead = overhead_unit * (k - 1)
            response = np.empty(num_requests)
            for i in range(num_requests):
                arrival = arrival_times[i]
                file_id = int(file_ids[i])
                size = float(sizes[i])
                best = np.inf
                primary = int(primaries[i])
                for offset in range(k):
                    server = servers[(primary + offset) % num_servers]
                    completion, _hit = server.serve(arrival, file_id, size)
                    elapsed = completion - arrival
                    if elapsed < best:
                        best = elapsed
                response[i] = best + overhead
            total_launched = num_requests * k
            hits = sum(s.cache.hits for s in servers)
            misses = sum(s.cache.misses for s in servers)
        else:
            servers = self._build_servers(run_seed=run_seed)
            self._warm_caches(servers, k)

            if hedged.cancel_on_win:
                # Cancellation retroactively shifts queued starts, so the
                # known-completion FIFO engine cannot express it; run the
                # event-driven cancellable engine instead.  The no-cancel
                # branch below stays byte-identical to earlier releases.
                def server_index(request: int, copy: int) -> int:
                    return (int(primaries[request]) + copy) % num_servers

                def begin(request: int, copy: int, at: float):
                    return servers[server_index(request, copy)].probe(
                        at, int(file_ids[request]), float(sizes[request])
                    )

                finish_at, launched, cancelled = simulate_cancelling_arrivals(
                    hedged, arrival_times, k, server_index, begin
                )
                # Cancelled copies never produce a response for the client
                # to combine, so they carry no per-copy client overhead.
                billable = launched - cancelled
                total_cancelled = int(cancelled.sum())
            else:

                def launch(request: int, copy: int, at: float) -> float:
                    server = servers[(int(primaries[request]) + copy) % num_servers]
                    completion, _hit = server.serve(
                        at, int(file_ids[request]), float(sizes[request])
                    )
                    return completion

                finish_at, launched = simulate_hedged_arrivals(
                    hedged, arrival_times, k, launch
                )
                billable = launched
                total_cancelled = None
            response = (finish_at - arrival_times) + overhead_unit * (billable - 1)
            total_launched = int(launched.sum())
            hits = sum(s.cache.hits for s in servers)
            misses = sum(s.cache.misses for s in servers)

        start = int(num_requests * warmup_fraction)
        retained = response[start:]
        registry = MetricsRegistry("database")
        registry.counter("requests").increment(num_requests)
        registry.counter("copies_launched").increment(total_launched)
        registry.counter("cache_hits").increment(hits)
        registry.counter("cache_misses").increment(misses)
        recorder = registry.recorder("latency")
        recorder.record_many(retained)
        accesses = hits + misses
        return DatabaseRunResult(
            load=float(load),
            copies=k,
            response_times=retained,
            summary=recorder.summary(),
            cache_hit_ratio=hits / accesses if accesses else 0.0,
            metrics=registry.snapshot(),
            policy_spec=run_policy_spec(hedged, k),
            copies_launched=total_launched,
            copies_cancelled=total_cancelled,
        )

    def _run_churn(
        self,
        load: float,
        hedged,
        k: int,
        num_requests: int,
        warmup_fraction: float,
        timeline: ChurnTimeline,
        migration_rate: float,
    ) -> DatabaseRunResult:
        """One run under a membership-event timeline.

        Requests are placed on the ring that is live at their arrival time
        (epoch-wise); each membership change triggers migration reads on the
        gaining servers — paced at ``migration_rate`` per server — which
        compete with foreground traffic in the same disk FIFOs and warm the
        new owners' caches file by file.  Servers added mid-run start with a
        cold cache; removed and crashed servers simply leave the ring
        (fail-stop, no drain), which is what makes crash-at-t byte-identical
        to remove-at-t.  All randomness comes from the same seeded substreams
        as the static path, so churn artifacts stay byte-identical at any
        worker count.
        """
        config = self.config
        placement = resolve_churn_placement()
        rings = timeline.epoch_rings(config.num_servers, self._ring.virtual_nodes)
        min_live = min(ring.num_servers for ring in rings)
        if k > min_live:
            raise ConfigurationError(
                f"copies={k} exceeds the {min_live} servers live in the "
                f"smallest epoch of churn {timeline.spec()!r}"
            )

        arrivals_rng = substream(config.seed, "arrivals", load)
        keys_rng = substream(config.seed, "keys", load)
        mean_service = config.expected_service_time(1)
        total_rate = config.num_servers * load / mean_service
        arrival_times = np.cumsum(arrivals_rng.exponential(1.0 / total_rate, num_requests))
        file_ids = keys_rng.integers(0, config.num_files, size=num_requests)
        sizes = self._fileset.sizes_bytes[file_ids]

        horizon = float(arrival_times[-1])
        event_times = timeline.event_times(horizon)
        epoch_of = np.searchsorted(event_times, arrival_times, side="right")
        replica_lists = np.empty((num_requests, k), dtype=np.int64)
        if placement == "epoch":
            for epoch, ring in enumerate(rings):
                pos = np.flatnonzero(epoch_of == epoch)
                if pos.size:
                    replica_lists[pos] = ring.replica_table(file_ids[pos].tolist(), k)
        else:
            for i in range(num_requests):
                replica_lists[i] = rings[epoch_of[i]].replicas_for(int(file_ids[i]), k)

        run_seed = (k, hash(round(load, 6)) & 0xFFFF)
        servers_by_id: Dict[int, StorageServerModel] = {}
        for server_id in timeline.all_servers(config.num_servers):
            servers_by_id[server_id] = StorageServerModel(
                server_id=server_id,
                cache_bytes=config.cache_bytes_per_server,
                disk=config.disk,
                memory_service_s=config.memory_service_s,
                noise_probability=config.noise_probability,
                noise_multiplier_mean=config.noise_multiplier_mean,
                rng=substream(config.seed, "server", server_id, *run_seed),
            )
        # Only the initial pool is warm; a server added mid-run earns its
        # cache through migration reads and foreground misses.
        self._warm_caches(
            [servers_by_id[s] for s in range(config.num_servers)], k
        )

        mig_times, mig_servers, mig_files = migration_schedule(
            rings, event_times, config.num_files, migration_rate, horizon
        )
        mig_sizes = self._fileset.sizes_bytes[mig_files]
        num_migrations = len(mig_times)
        overhead_unit = config.client_overhead_per_extra_copy()
        total_cancelled: Optional[int] = None

        if hedged is None:
            overhead = overhead_unit * (k - 1)
            response = np.empty(num_requests)
            m = 0
            for i in range(num_requests):
                arrival = float(arrival_times[i])
                while m < num_migrations and mig_times[m] <= arrival:
                    servers_by_id[int(mig_servers[m])].serve(
                        float(mig_times[m]), int(mig_files[m]), float(mig_sizes[m])
                    )
                    m += 1
                best = np.inf
                for copy in range(k):
                    server = servers_by_id[int(replica_lists[i, copy])]
                    completion, _hit = server.serve(arrival, int(file_ids[i]), float(sizes[i]))
                    elapsed = completion - arrival
                    if elapsed < best:
                        best = elapsed
                response[i] = best + overhead
            total_launched = num_requests * k
        elif hedged.cancel_on_win:

            def server_index(request: int, copy: int) -> int:
                return int(replica_lists[request, copy])

            def begin(request: int, copy: int, at: float):
                return servers_by_id[int(replica_lists[request, copy])].probe(
                    at, int(file_ids[request]), float(sizes[request])
                )

            def begin_background(job: int, at: float):
                return servers_by_id[int(mig_servers[job])].probe(
                    at, int(mig_files[job]), float(mig_sizes[job])
                )

            background = [
                (float(mig_times[j]), int(mig_servers[j]), j)
                for j in range(num_migrations)
            ]
            finish_at, launched, cancelled = simulate_cancelling_arrivals(
                hedged,
                arrival_times,
                k,
                server_index,
                begin,
                background_jobs=background,
                begin_background=begin_background,
            )
            billable = launched - cancelled
            total_cancelled = int(cancelled.sum())
            response = (finish_at - arrival_times) + overhead_unit * (billable - 1)
            total_launched = int(launched.sum())
        else:
            # simulate_hedged_arrivals calls launch in global time order, so
            # flushing due migration reads right before each dispatch keeps
            # every disk FIFO in per-server time order.
            state = {"next": 0}

            def launch(request: int, copy: int, at: float) -> float:
                m = state["next"]
                while m < num_migrations and mig_times[m] <= at:
                    servers_by_id[int(mig_servers[m])].serve(
                        float(mig_times[m]), int(mig_files[m]), float(mig_sizes[m])
                    )
                    m += 1
                state["next"] = m
                server = servers_by_id[int(replica_lists[request, copy])]
                completion, _hit = server.serve(at, int(file_ids[request]), float(sizes[request]))
                return completion

            finish_at, launched = simulate_hedged_arrivals(hedged, arrival_times, k, launch)
            response = (finish_at - arrival_times) + overhead_unit * (launched - 1)
            total_launched = int(launched.sum())

        hits = sum(s.cache.hits for s in servers_by_id.values())
        misses = sum(s.cache.misses for s in servers_by_id.values())
        start = int(num_requests * warmup_fraction)
        retained = response[start:]
        spike = spike_metrics(arrival_times[start:], retained, event_times)
        registry = MetricsRegistry("database")
        registry.counter("requests").increment(num_requests)
        registry.counter("copies_launched").increment(total_launched)
        registry.counter("cache_hits").increment(hits)
        registry.counter("cache_misses").increment(misses)
        registry.counter("migration_jobs").increment(num_migrations)
        recorder = registry.recorder("latency")
        recorder.record_many(retained)
        accesses = hits + misses
        return DatabaseRunResult(
            load=float(load),
            copies=k,
            response_times=retained,
            summary=recorder.summary(),
            cache_hit_ratio=hits / accesses if accesses else 0.0,
            metrics=registry.snapshot(),
            policy_spec=run_policy_spec(hedged, k),
            copies_launched=total_launched,
            copies_cancelled=total_cancelled,
            spike=spike,
        )

    def _eager_batched(
        self,
        k: int,
        arrival_times: np.ndarray,
        file_ids: np.ndarray,
        sizes: np.ndarray,
        primaries: np.ndarray,
        run_seed: Tuple[int, ...],
    ) -> Tuple[np.ndarray, int, int]:
        """Vectorised eager-replication run, byte-identical to the scalar loop.

        The scalar loop serves copies in global ``(request, copy)`` order, but
        each access touches exactly one server, and servers share no state —
        the cache, the FIFO disk queue, and the service-time rng are all per
        server.  Grouping accesses by server therefore preserves every
        per-server stream exactly, which lets each server be processed with
        three batched kernels:

        * cache warming plus hit/miss classification via
          :func:`~repro.cluster.lru_kernel.lru_hit_flags` (warm inserts are
          prepended to the access stream as virtual accesses — ``warm_with``
          has precisely LRU-insert semantics for distinct keys), falling back
          to :meth:`~repro.cluster.cache.LRUByteCache.access_many` when file
          sizes are not all equal;
        * disk service times for the misses via
          :func:`~repro.cluster.draws.exact_disk_services`, consuming the
          server substream in the scalar order;
        * the FIFO disk queue via
          :func:`~repro.cluster.draws.sequential_finish_times`.

        Returns:
            ``(best_elapsed, cache_hits, cache_misses)`` where ``best_elapsed``
            is the per-request fastest-copy response time before client
            overhead.
        """
        config = self.config
        n = len(arrival_times)
        num_servers = config.num_servers
        srv_flat = ((primaries[:, None] + np.arange(k, dtype=np.int64)) % num_servers).ravel()
        file_flat = np.repeat(file_ids, k)
        size_flat = np.repeat(sizes, k)
        arr_flat = np.repeat(arrival_times, k)
        completion_flat = np.empty(n * k)

        warm_key = (
            config.seed,
            self._ring.virtual_nodes,
            config.num_files,
            num_servers,
            k,
        )
        warm_orders = _WARM_CACHE.get(warm_key)
        if warm_orders is None:
            warm_rng = substream(config.seed, "cache-warm")
            built = []
            for server_id in range(num_servers):
                if k >= 2:
                    mask = (self._primaries == server_id) | (
                        (self._primaries + 1) % num_servers == server_id
                    )
                else:
                    mask = self._primaries == server_id
                candidates = np.flatnonzero(mask)
                if candidates.size:
                    warm_rng.shuffle(candidates)
                built.append(candidates)
            warm_orders = tuple(built)
            _WARM_CACHE[warm_key] = warm_orders
        all_sizes = self._fileset.sizes_bytes
        capacity = config.cache_bytes_per_server
        item_capacity = (
            equal_item_capacity(capacity, float(config.mean_file_bytes))
            if config.file_size_distribution is None
            else None
        )
        hits_total = 0
        for server_id in range(num_servers):
            candidates = warm_orders[server_id]
            pos = np.flatnonzero(srv_flat == server_id)
            keys = file_flat[pos]
            if item_capacity is not None:
                stream = np.concatenate([candidates, keys])
                flags = lru_hit_flags(stream, item_capacity)[candidates.size :]
            else:
                cache = LRUByteCache(capacity)
                cache.warm_with((int(f), float(all_sizes[f])) for f in candidates)
                flags = cache.access_many(keys, size_flat[pos])
            hits_total += int(np.count_nonzero(flags))
            arr = arr_flat[pos]
            completion = np.empty(len(pos))
            miss = ~flags
            if np.any(miss):
                rng = substream(config.seed, "server", server_id, *run_seed)
                services = exact_disk_services(
                    config.disk,
                    size_flat[pos][miss],
                    rng,
                    config.noise_probability,
                    config.noise_multiplier_mean,
                )
                completion[miss] = (
                    sequential_finish_times(arr[miss], services) + config.memory_service_s
                )
            completion[flags] = arr[flags] + config.memory_service_s
            completion_flat[pos] = completion

        elapsed = completion_flat.reshape(n, k) - arrival_times[:, None]
        best = elapsed.min(axis=1)
        return best, hits_total, n * k - hits_total

    def sweep(
        self,
        loads: Sequence[float],
        copies_list: Sequence[int] = (1, 2),
        num_requests: int = 40_000,
    ) -> Dict[int, List[DatabaseRunResult]]:
        """Run a load sweep for each copy count (skipping saturated points).

        Returns:
            Mapping from copy count to the list of results, one per feasible
            load in ``loads`` (loads that would saturate the replicated system
            are skipped, mirroring how the paper's 2-copy curves stop short of
            full load).
        """
        results: Dict[int, List[DatabaseRunResult]] = {}
        for k in copies_list:
            per_copy: List[DatabaseRunResult] = []
            for load in loads:
                try:
                    per_copy.append(self.run(load, copies=k, num_requests=num_requests))
                except CapacityError:
                    continue
            results[int(k)] = per_copy
        return results

    def threshold_load(
        self,
        loads: Sequence[float],
        num_requests: int = 30_000,
    ) -> float:
        """Largest probed load at which replication still improves mean latency.

        This mirrors how the paper reads the threshold off Figure 5 (≈30% in
        the base configuration) rather than running a bisection, because each
        cluster simulation point is comparatively expensive.
        """
        best = 0.0
        for load in sorted(loads):
            try:
                baseline = self.run(load, copies=1, num_requests=num_requests)
                replicated = self.run(load, copies=2, num_requests=num_requests)
            except CapacityError:
                break
            if replicated.mean < baseline.mean:
                best = float(load)
            else:
                break
        return best
