"""Consistent hashing for object placement.

Section 2.2: "The files are partitioned across servers via consistent hashing,
and two copies are stored of every file: if the primary is stored on server n,
the (replicated) secondary goes to server n + 1."

:class:`ConsistentHashRing` implements a standard virtual-node hash ring; the
``n + 1`` successor rule of the paper corresponds to asking the ring for the
primary's successor in server-index space (``replicas_for``), which is how the
experiment driver uses it.

Membership is mutable: :meth:`ConsistentHashRing.add_server` and
:meth:`ConsistentHashRing.remove_server` change the live server set while
keeping **stable vnode identity** — a server's ring points are a pure function
of its id (``server-{id}-vnode-{i}``), so re-adding a previously removed id
restores the exact prior key assignment, and removing a server only remaps the
keys it owned (~1/n of the keyspace).  :func:`analyze_membership_change`
quantifies a transition between two rings (moved-key fraction, per-server
deltas), which the churn timeline in :mod:`repro.cluster.churn` uses to plan
migration traffic.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


def _hash64(data: str) -> int:
    """Stable 64-bit hash of a string (independent of PYTHONHASHSEED)."""
    return int.from_bytes(hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big")


class ConsistentHashRing:
    """A consistent-hash ring mapping keys to server ids.

    Invariants the rest of the repository builds on (property-tested in
    ``tests/test_consistent_hash_properties.py``):

    * **Balance.** Over a large keyspace, every server's share of primaries
      stays within a factor of the fair share ``1/n`` that shrinks as
      virtual nodes grow: empirically the relative deviation is at most
      ~0.6 at 64 virtual nodes (the default), ~0.35 at 128 and ~0.3 at
      256, for pool sizes up to 32.
    * **Minimal movement.** Growing the pool from ``n`` to ``n + 1``
      servers remaps approximately ``1/(n + 1)`` of the keyspace — and
      nothing else — because ring points are named by ``(server, vnode)``
      and existing servers' points are identical in both rings.  Dually,
      ``remove_server`` remaps *only* the keys the removed server owned.
    * **Distinct successors.** ``replicas_for(key, k)`` returns ``k``
      *distinct* server ids (the primary and its ``k - 1`` successors
      in sorted-member order), which is what lets the serving layer send
      k-copy requests without ever duplicating a backend.
    * **Stable vnode identity.** ``add_server(s)`` after ``remove_server(s)``
      restores the exact assignment the ring had before the removal.

    The constructor creates servers ``0 .. num_servers - 1``; while
    membership stays contiguous the successor rule is exactly
    ``(primary + offset) % num_servers``, byte-identical to the historical
    immutable ring.

    Attributes:
        num_servers: Number of live servers on the ring.
        virtual_nodes: Number of ring positions per server (more positions =
            smoother balance).
    """

    def __init__(self, num_servers: int, virtual_nodes: int = 64) -> None:
        """Build a ring of servers ``0 .. num_servers - 1``.

        Raises:
            ConfigurationError: If either parameter is not positive.
        """
        if num_servers < 1:
            raise ConfigurationError(f"num_servers must be >= 1, got {num_servers!r}")
        if virtual_nodes < 1:
            raise ConfigurationError(f"virtual_nodes must be >= 1, got {virtual_nodes!r}")
        self.virtual_nodes = int(virtual_nodes)
        self._members: List[int] = list(range(int(num_servers)))
        self._rebuild()

    # -- membership -------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Number of live servers (kept name-compatible with the static ring)."""
        return len(self._members)

    @property
    def servers(self) -> Tuple[int, ...]:
        """The live server ids, ascending."""
        return tuple(self._members)

    def add_server(self, server_id: int) -> None:
        """Add ``server_id`` to the ring.

        Vnode identity is stable: the new server's ring points depend only on
        its id, so every other server's points — and therefore every key that
        does not land on the new server's arcs — are untouched.

        Raises:
            ConfigurationError: If the id is negative or already a member.
        """
        server_id = int(server_id)
        if server_id < 0:
            raise ConfigurationError(f"server_id must be >= 0, got {server_id!r}")
        if server_id in self._member_set:
            raise ConfigurationError(f"server {server_id} is already on the ring")
        bisect.insort(self._members, server_id)
        self._rebuild()

    def remove_server(self, server_id: int) -> None:
        """Remove ``server_id`` from the ring.

        Only keys whose primary was the removed server move (to the next
        point on the ring); everything else keeps its assignment.

        Raises:
            ConfigurationError: If the id is not a member, or it is the last
                server (an empty ring has no owner for any key).
        """
        server_id = int(server_id)
        if server_id not in self._member_set:
            raise ConfigurationError(f"server {server_id} is not on the ring")
        if len(self._members) == 1:
            raise ConfigurationError("cannot remove the last server from the ring")
        self._members.remove(server_id)
        self._rebuild()

    def _rebuild(self) -> None:
        points: List[Tuple[int, int]] = []
        for server in self._members:
            for replica in range(self.virtual_nodes):
                points.append((_hash64(f"server-{server}-vnode-{replica}"), server))
        points.sort()
        self._ring_hashes = [p[0] for p in points]
        self._ring_servers = [p[1] for p in points]
        self._ring_hashes_np = np.array(self._ring_hashes, dtype=np.uint64)
        self._ring_servers_np = np.array(self._ring_servers, dtype=np.int64)
        self._members_np = np.array(self._members, dtype=np.int64)
        self._member_set = set(self._members)

    # -- lookups ----------------------------------------------------------

    def primary_for(self, key: object) -> int:
        """The server id owning ``key`` (first ring point at or after its hash)."""
        key_hash = _hash64(repr(key))
        index = bisect.bisect_left(self._ring_hashes, key_hash)
        if index == len(self._ring_hashes):
            index = 0
        return self._ring_servers[index]

    def primary_for_many(self, keys: Sequence[object]) -> "np.ndarray":
        """Primary server id of every key, via one vectorised ring lookup.

        Identical to ``[primary_for(key) for key in keys]`` (pinned by tests):
        ``numpy.searchsorted`` with ``side="left"`` is exactly
        ``bisect.bisect_left`` against the sorted ring, including the
        wrap-around of hashes beyond the last ring point.
        """
        hashes = np.fromiter(
            (_hash64(repr(key)) for key in keys), dtype=np.uint64, count=len(keys)
        )
        index = np.searchsorted(self._ring_hashes_np, hashes, side="left")
        index[index == len(self._ring_hashes)] = 0
        return self._ring_servers_np[index]

    def replicas_for(self, key: object, copies: int = 2) -> List[int]:
        """Primary plus successors: the paper's "secondary goes to server n + 1".

        Successors advance through the live members in ascending-id order
        (wrapping), which for the contiguous ids the constructor creates is
        exactly ``(primary + offset) % num_servers``.

        Args:
            key: The object key.
            copies: Total number of replicas (primary included), at most the
                number of live servers.

        Returns:
            ``copies`` distinct server ids, primary first.

        Raises:
            ConfigurationError: If ``copies`` exceeds the number of servers.
        """
        if not 1 <= copies <= self.num_servers:
            raise ConfigurationError(
                f"copies must be in [1, {self.num_servers}], got {copies!r}"
            )
        primary = self.primary_for(key)
        position = bisect.bisect_left(self._members, primary)
        n = len(self._members)
        return [self._members[(position + offset) % n] for offset in range(copies)]

    def replica_table(self, keys: Sequence[object], copies: int = 2) -> "np.ndarray":
        """``replicas_for`` for every key at once: a ``(len(keys), copies)`` array.

        Row ``i`` is exactly ``replicas_for(keys[i], copies)`` (primary first),
        computed with one vectorised ring lookup and one member-successor
        gather instead of a per-key Python loop.

        Raises:
            ConfigurationError: If ``copies`` exceeds the number of servers.
        """
        if not 1 <= copies <= self.num_servers:
            raise ConfigurationError(
                f"copies must be in [1, {self.num_servers}], got {copies!r}"
            )
        primaries = self.primary_for_many(keys)
        positions = np.searchsorted(self._members_np, primaries)
        offsets = np.arange(copies, dtype=np.int64)
        return self._members_np[(positions[:, None] + offsets[None, :]) % len(self._members)]

    def distribution(self, keys: Sequence[object]) -> List[int]:
        """Number of keys whose primary lands on each live server.

        Counts are ordered like :attr:`servers` (ascending id), which for the
        contiguous ids the constructor creates means ``counts[s]`` is server
        ``s``'s share — identical to the historical per-key scalar loop
        (pinned bitwise in ``tests/test_fast_paths.py``).
        """
        if not keys:
            return [0] * self.num_servers
        primaries = self.primary_for_many(keys)
        positions = np.searchsorted(self._members_np, primaries)
        return np.bincount(positions, minlength=self.num_servers).tolist()


def analyze_membership_change(
    before: ConsistentHashRing,
    after: ConsistentHashRing,
    keys: Sequence[object],
) -> Dict[str, object]:
    """Quantify a membership transition over a concrete keyspace.

    Args:
        before: The ring prior to the membership event.
        after: The ring after it (typically ``before`` plus/minus one server).
        keys: The keyspace to evaluate (e.g. every file id in the workload).

    Returns:
        A dict with:

        * ``moved_keys`` — number of keys whose primary changed;
        * ``moved_fraction`` — that count over ``len(keys)``;
        * ``per_server_delta`` — ``{server_id: after_count - before_count}``
          for every id live in either ring (negative = lost primaries);
        * ``gained`` — ``{server_id: [key_index, ...]}`` listing, for each
          server that gained keys, the indices into ``keys`` it now owns but
          did not before (ascending) — the migration work list.
    """
    if not keys:
        servers = sorted(set(before.servers) | set(after.servers))
        return {
            "moved_keys": 0,
            "moved_fraction": 0.0,
            "per_server_delta": {s: 0 for s in servers},
            "gained": {},
        }
    old = before.primary_for_many(keys)
    new = after.primary_for_many(keys)
    moved = old != new
    moved_keys = int(np.count_nonzero(moved))
    servers = sorted(set(before.servers) | set(after.servers))
    delta: Dict[int, int] = {}
    for s in servers:
        delta[s] = int(np.count_nonzero(new == s)) - int(np.count_nonzero(old == s))
    gained: Dict[int, List[int]] = {}
    for index in np.nonzero(moved)[0]:
        gained.setdefault(int(new[index]), []).append(int(index))
    return {
        "moved_keys": moved_keys,
        "moved_fraction": moved_keys / len(keys),
        "per_server_delta": delta,
        "gained": gained,
    }
