"""Consistent hashing for object placement.

Section 2.2: "The files are partitioned across servers via consistent hashing,
and two copies are stored of every file: if the primary is stored on server n,
the (replicated) secondary goes to server n + 1."

:class:`ConsistentHashRing` implements a standard virtual-node hash ring; the
``n + 1`` successor rule of the paper corresponds to asking the ring for the
primary's successor in server-index space (``replicas_for``), which is how the
experiment driver uses it.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def _hash64(data: str) -> int:
    """Stable 64-bit hash of a string (independent of PYTHONHASHSEED)."""
    return int.from_bytes(hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big")


class ConsistentHashRing:
    """A consistent-hash ring mapping keys to server indices.

    Invariants the rest of the repository builds on (property-tested in
    ``tests/test_consistent_hash_properties.py``):

    * **Balance.** Over a large keyspace, every server's share of primaries
      stays within a factor of the fair share ``1/n`` that shrinks as
      virtual nodes grow: empirically the relative deviation is at most
      ~0.6 at 64 virtual nodes (the default), ~0.35 at 128 and ~0.3 at
      256, for pool sizes up to 32.
    * **Minimal movement.** Growing the pool from ``n`` to ``n + 1``
      servers remaps approximately ``1/(n + 1)`` of the keyspace — and
      nothing else — because ring points are named by ``(server, vnode)``
      and existing servers' points are identical in both rings.
    * **Distinct successors.** ``replicas_for(key, k)`` returns ``k``
      *distinct* server indices (the primary and its ``k - 1`` successors
      in server-index space), which is what lets the serving layer send
      k-copy requests without ever duplicating a backend.

    Attributes:
        num_servers: Number of physical servers on the ring.
        virtual_nodes: Number of ring positions per server (more positions =
            smoother balance).
    """

    def __init__(self, num_servers: int, virtual_nodes: int = 64) -> None:
        """Build a ring of ``num_servers`` servers.

        Raises:
            ConfigurationError: If either parameter is not positive.
        """
        if num_servers < 1:
            raise ConfigurationError(f"num_servers must be >= 1, got {num_servers!r}")
        if virtual_nodes < 1:
            raise ConfigurationError(f"virtual_nodes must be >= 1, got {virtual_nodes!r}")
        self.num_servers = int(num_servers)
        self.virtual_nodes = int(virtual_nodes)
        points: List[tuple[int, int]] = []
        for server in range(num_servers):
            for replica in range(virtual_nodes):
                points.append((_hash64(f"server-{server}-vnode-{replica}"), server))
        points.sort()
        self._ring_hashes = [p[0] for p in points]
        self._ring_servers = [p[1] for p in points]
        self._ring_hashes_np = np.array(self._ring_hashes, dtype=np.uint64)
        self._ring_servers_np = np.array(self._ring_servers, dtype=np.int64)

    def primary_for(self, key: object) -> int:
        """The server index owning ``key`` (first ring point at or after its hash)."""
        key_hash = _hash64(repr(key))
        index = bisect.bisect_left(self._ring_hashes, key_hash)
        if index == len(self._ring_hashes):
            index = 0
        return self._ring_servers[index]

    def primary_for_many(self, keys: Sequence[object]) -> "np.ndarray":
        """Primary server index of every key, via one vectorised ring lookup.

        Identical to ``[primary_for(key) for key in keys]`` (pinned by tests):
        ``numpy.searchsorted`` with ``side="left"`` is exactly
        ``bisect.bisect_left`` against the sorted ring, including the
        wrap-around of hashes beyond the last ring point.
        """
        hashes = np.fromiter(
            (_hash64(repr(key)) for key in keys), dtype=np.uint64, count=len(keys)
        )
        index = np.searchsorted(self._ring_hashes_np, hashes, side="left")
        index[index == len(self._ring_hashes)] = 0
        return self._ring_servers_np[index]

    def replicas_for(self, key: object, copies: int = 2) -> List[int]:
        """Primary plus successors: the paper's "secondary goes to server n + 1".

        Args:
            key: The object key.
            copies: Total number of replicas (primary included), at most the
                number of servers.

        Returns:
            ``copies`` distinct server indices, primary first.

        Raises:
            ConfigurationError: If ``copies`` exceeds the number of servers.
        """
        if not 1 <= copies <= self.num_servers:
            raise ConfigurationError(
                f"copies must be in [1, {self.num_servers}], got {copies!r}"
            )
        primary = self.primary_for(key)
        return [(primary + offset) % self.num_servers for offset in range(copies)]

    def distribution(self, keys: Sequence[object]) -> List[int]:
        """Number of keys whose primary lands on each server (balance check)."""
        counts = [0] * self.num_servers
        for key in keys:
            counts[self.primary_for(key)] += 1
        return counts
