"""A single storage server: LRU page cache in front of a FIFO disk.

The model a request sees on one server:

* **Cache hit** — served from memory.  The cost is a small memory/network
  service time; the CPU is never the bottleneck in the paper's experiments, so
  hits do not queue.
* **Cache miss** — the read must go to the disk, which serves misses strictly
  FIFO.  The response time is the queueing delay behind earlier misses plus the
  disk service time (positioning + transfer), and the file then enters the
  cache.

The server optionally applies a multiplicative "noise" factor to disk service
times to model shared/virtualised environments (the EC2 configuration of
Figure 9), where occasional noisy-neighbour interference produces a much
heavier service-time tail than dedicated hardware.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cluster.cache import LRUByteCache
from repro.cluster.disk import DiskModel
from repro.exceptions import ConfigurationError


class StorageServerModel:
    """State of one storage server in the fast (arrival-ordered) simulation.

    The experiment driver processes requests in global arrival order; for each
    copy it calls :meth:`serve`, which returns the completion time of that copy
    on this server, updating the cache and the disk queue as side effects.
    """

    def __init__(
        self,
        server_id: int,
        cache_bytes: float,
        disk: DiskModel,
        memory_service_s: float = 0.0002,
        noise_probability: float = 0.0,
        noise_multiplier_mean: float = 8.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Create a server.

        Args:
            server_id: Index of the server in the cluster.
            cache_bytes: Page-cache capacity in bytes.
            disk: Disk service-time model.
            memory_service_s: Service time of a cache hit (seconds); covers
                memory copy plus the request/response network processing.
            noise_probability: Probability that a disk access experiences
                noisy-neighbour interference (0 on dedicated hardware, > 0 for
                the EC2 configuration).
            noise_multiplier_mean: Mean of the exponential multiplier applied
                to interfered accesses (so the noise is heavy-tailed).
            rng: Random generator for service-time draws.

        Raises:
            ConfigurationError: On non-positive cache size or memory service
                time, or a probability outside [0, 1].
        """
        if memory_service_s <= 0:
            raise ConfigurationError(f"memory_service_s must be positive, got {memory_service_s!r}")
        if not 0.0 <= noise_probability <= 1.0:
            raise ConfigurationError(
                f"noise_probability must be in [0, 1], got {noise_probability!r}"
            )
        if noise_multiplier_mean <= 0:
            raise ConfigurationError(
                f"noise_multiplier_mean must be positive, got {noise_multiplier_mean!r}"
            )
        self.server_id = int(server_id)
        self.cache = LRUByteCache(cache_bytes)
        self.disk = disk
        self.memory_service_s = float(memory_service_s)
        self.noise_probability = float(noise_probability)
        self.noise_multiplier_mean = float(noise_multiplier_mean)
        self._rng = rng if rng is not None else np.random.default_rng(server_id)
        self.disk_free_at = 0.0
        self.requests_served = 0
        self.disk_requests = 0

    def serve(self, arrival_time: float, file_id: object, size_bytes: float) -> Tuple[float, bool]:
        """Serve one copy of a read request arriving at ``arrival_time``.

        Args:
            arrival_time: Absolute time the copy reaches the server.
            file_id: Identity of the requested file (cache key).
            size_bytes: Size of the requested file.

        Returns:
            ``(completion_time, was_cache_hit)``.
        """
        self.requests_served += 1
        hit = self.cache.access(file_id, size_bytes)
        if hit:
            return arrival_time + self.memory_service_s, True

        self.disk_requests += 1
        service = self.disk.sample_service_time(size_bytes, self._rng)
        if self.noise_probability > 0 and self._rng.random() < self.noise_probability:
            service *= 1.0 + self._rng.exponential(self.noise_multiplier_mean)
        start = self.disk_free_at if self.disk_free_at > arrival_time else arrival_time
        finish = start + service
        self.disk_free_at = finish
        return finish + self.memory_service_s, False

    def probe(self, arrival_time: float, file_id: object, size_bytes: float):
        """Dispatch-time work for the cancellable hedged engine.

        Performs exactly the per-copy work :meth:`serve` does at dispatch —
        the cache access and (on a miss) the service-time draw, in the same
        order and from the same generator — but leaves the disk queue to the
        caller, which owns a cancellable version of it.

        Returns:
            ``("done", completion_time)`` for a cache hit (memory service,
            no queueing), or ``("service", disk_service_s, memory_service_s)``
            for a miss the caller must run through its FIFO.
        """
        self.requests_served += 1
        hit = self.cache.access(file_id, size_bytes)
        if hit:
            return ("done", arrival_time + self.memory_service_s)
        self.disk_requests += 1
        service = self.disk.sample_service_time(size_bytes, self._rng)
        if self.noise_probability > 0 and self._rng.random() < self.noise_probability:
            service *= 1.0 + self._rng.exponential(self.noise_multiplier_mean)
        return ("service", service, self.memory_service_s)

    def expected_miss_service_time(self, mean_file_bytes: float) -> float:
        """Expected disk service time for a miss of the given mean size.

        Includes the expected noise inflation so that load calibration stays
        correct for the EC2 configuration.
        """
        base = self.disk.mean_service_time(mean_file_bytes)
        inflation = 1.0 + self.noise_probability * self.noise_multiplier_mean
        return base * inflation
