"""A byte-bounded LRU cache modelling the Linux page cache.

Section 2.2's servers keep "around half the main memory ... available for the
Linux disk cache"; whether a requested file is in that cache is what separates
the fast path (sub-millisecond memory read) from the slow path (disk seek +
transfer), and the ratio of cache capacity to data-set size is the experiment's
main variability knob (Figures 8 and 11).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.exceptions import ConfigurationError


class LRUByteCache:
    """Least-recently-used cache with a capacity measured in bytes.

    Entries are keyed by an opaque hashable id (the file id) and carry a size;
    inserting an entry evicts least-recently-used entries until it fits.  An
    entry larger than the whole cache is simply not cached (matching page
    cache behaviour for huge files under memory pressure).
    """

    def __init__(self, capacity_bytes: float) -> None:
        """Create an empty cache with the given capacity (> 0)."""
        if capacity_bytes <= 0:
            raise ConfigurationError(f"capacity_bytes must be positive, got {capacity_bytes!r}")
        self.capacity_bytes = float(capacity_bytes)
        self._entries: "OrderedDict[object, float]" = OrderedDict()
        self.used_bytes = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def access(self, key: object, size_bytes: float) -> bool:
        """Access ``key``: return ``True`` on a hit, otherwise insert it.

        This is the single call the storage server makes per request: it both
        checks for a hit and, on a miss, brings the object into the cache
        (evicting as needed), exactly as a read through the page cache would.

        Args:
            key: Object id.
            size_bytes: Object size (> 0).

        Raises:
            ConfigurationError: If ``size_bytes`` is not positive.
        """
        if size_bytes <= 0:
            raise ConfigurationError(f"size_bytes must be positive, got {size_bytes!r}")
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._insert(key, float(size_bytes))
        return False

    def access_many(self, keys, sizes) -> "np.ndarray":
        """Access a whole stream of keys, returning the per-access hit flags.

        Semantically identical to calling :meth:`access` once per element
        (same recency updates, evictions, and counters) but with the loop
        overhead hoisted: attribute lookups are bound once and the byte
        accounting runs on local floats.  Used by the batched database path
        for file sets whose sizes are not all equal (where the closed-form
        kernel in :mod:`repro.cluster.lru_kernel` does not apply).

        Args:
            keys: Iterable of object ids (converted to ``int``).
            sizes: Matching iterable of positive sizes in bytes.

        Returns:
            Boolean array, ``True`` where the access hit.
        """
        import numpy as np

        keys = [int(k) for k in keys]
        out = np.empty(len(keys), dtype=bool)
        entries = self._entries
        move_to_end = entries.move_to_end
        popitem = entries.popitem
        capacity = self.capacity_bytes
        used = self.used_bytes
        hits = 0
        evictions = 0
        index = 0
        for key, size in zip(keys, sizes):
            if key in entries:
                move_to_end(key)
                hits += 1
                out[index] = True
            else:
                out[index] = False
                size = float(size)
                if size <= capacity:
                    while used + size > capacity and entries:
                        _, evicted_size = popitem(last=False)
                        used -= evicted_size
                        evictions += 1
                    entries[key] = size
                    used += size
            index += 1
        self.used_bytes = used
        self.hits += hits
        self.misses += len(keys) - hits
        self.evictions += evictions
        return out

    def peek(self, key: object) -> bool:
        """Whether ``key`` is cached, without touching recency or counters."""
        return key in self._entries

    def _insert(self, key: object, size_bytes: float) -> None:
        if size_bytes > self.capacity_bytes:
            return
        while self.used_bytes + size_bytes > self.capacity_bytes and self._entries:
            _, evicted_size = self._entries.popitem(last=False)
            self.used_bytes -= evicted_size
            self.evictions += 1
        self._entries[key] = size_bytes
        self.used_bytes += size_bytes

    def warm_with(self, keys_and_sizes) -> None:
        """Pre-populate the cache (used to skip the cold-start transient).

        Args:
            keys_and_sizes: Iterable of ``(key, size_bytes)`` pairs, inserted
                in order (so later pairs are the most recently used).
        """
        for key, size in keys_and_sizes:
            if key not in self._entries:
                self._insert(key, float(size))

    @property
    def hit_ratio(self) -> float:
        """Observed hit ratio since creation (0 when no accesses yet)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
