"""Optional C fast paths for two Python-level inner loops, via ``ctypes``.

Two hot loops in the batched substrate kernels resist numpy vectorisation
because each step depends on the previous one (the FIFO busy-period
recursion) or because the work is many tiny irregular windows (the LRU
ambiguous-access resolution).  Both are plain loops over contiguous C arrays,
so when a system C compiler is present they are compiled once per machine
into a small shared library and called through ``ctypes`` — no third-party
packages, no Python headers, no build step in the repo.

Byte-identity: the C routines perform exactly the same IEEE-754 double
operations, in the same order, as the Python loops they replace (compiled
without ``-ffast-math``, so the compiler cannot reassociate them), and the
LRU routine only counts integers.  The Python implementations remain the
reference: ``REPRO_CKERNELS=0`` forces them, and tests pin the two paths
against each other.

Any failure — no compiler, read-only temp dir, unsupported platform —
results in :func:`load` returning ``None`` and callers silently using the
Python loops.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional

from repro import flags

CKERNELS_ENV_VAR = flags.CKERNELS.name
"""Set to ``0`` to disable the compiled kernels (Python fallbacks run).

Declared (with its choices) in :mod:`repro.flags`.
"""

_C_SOURCE = r"""
#include <stdint.h>

/* FIFO busy-period recursion: finish[i] = max(finish[i-1], a[i]) + s[i].
 * Identical IEEE double ops, in identical order, to the scalar Python loop. */
void seq_finish(const double *arrivals, const double *services,
                double *out, int64_t n) {
    double free_at = 0.0;
    int64_t i;
    for (i = 0; i < n; i++) {
        double arrival = arrivals[i];
        if (free_at <= arrival) {
            free_at = arrival;
        }
        free_at = free_at + services[i];
        out[i] = free_at;
    }
}

/* For each ambiguous access t: count distinct keys touched strictly between
 * its previous occurrence and t (positions q with next occurrence at or
 * after t); the access is an LRU hit iff that count is below capacity. */
void lru_ambiguous(const int64_t *ambiguous, int64_t n_ambiguous,
                   const int64_t *prev, const int64_t *nxt,
                   int64_t capacity, uint8_t *hit) {
    int64_t i;
    for (i = 0; i < n_ambiguous; i++) {
        int64_t t = ambiguous[i];
        int64_t count = 0;
        int64_t q;
        for (q = prev[t] + 1; q < t; q++) {
            if (nxt[q] >= t) {
                count++;
                if (count >= capacity) {
                    break;
                }
            }
        }
        hit[i] = count < capacity;
    }
}
"""

_lib: Optional[ctypes.CDLL] = None
_tried = False


def _build() -> ctypes.CDLL:
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    cache_dir = os.path.join(tempfile.gettempdir(), "repro-ckernels")
    lib_path = os.path.join(cache_dir, f"ckernels-{digest}.so")
    if not os.path.exists(lib_path):
        os.makedirs(cache_dir, exist_ok=True)
        src_path = os.path.join(cache_dir, f"ckernels-{digest}.c")
        with open(src_path, "w") as handle:
            handle.write(_C_SOURCE)
        scratch = f"{lib_path}.tmp{os.getpid()}"
        subprocess.run(
            ["cc", "-O2", "-shared", "-fPIC", "-o", scratch, src_path],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(scratch, lib_path)  # atomic against concurrent builders
    lib = ctypes.CDLL(lib_path)
    lib.seq_finish.argtypes = [
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_int64,
    ]
    lib.seq_finish.restype = None
    lib.lru_ambiguous.argtypes = [
        ctypes.c_void_p,
        ctypes.c_int64,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_int64,
        ctypes.c_void_p,
    ]
    lib.lru_ambiguous.restype = None
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, or ``None`` when unavailable/disabled.

    The environment variable is consulted on every call (so tests can pin
    either path); the compile attempt happens at most once per process.
    """
    global _lib, _tried
    if flags.CKERNELS.read() == "0":
        return None
    if _tried:
        return _lib
    _tried = True
    try:
        _lib = _build()
    except Exception:
        _lib = None
    return _lib
