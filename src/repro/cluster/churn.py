"""Ring-membership churn: event timelines, migration traffic, spike metrics.

ROADMAP item 4 applies the paper's tail-cutting argument to *operational*
tails: the latency spike when a shard is added, removed, or crashes mid-run.
This module holds the substrate-independent pieces:

* :class:`MembershipEvent` / :class:`ChurnTimeline` — a seeded-run-friendly
  description of membership changes.  Event times are **fractions of the
  arrival horizon** (``0.4`` = 40% of the way through the run), so one spec
  works at every load and request count.  The spec mini-language mirrors the
  policy specs: ``"remove:2@0.4"``, ``"add:4@0.3,crash:1@0.6"``.
* :func:`ChurnTimeline.epoch_rings` — the ring per inter-event epoch, built
  by replaying the events on a fresh
  :class:`~repro.cluster.consistent_hash.ConsistentHashRing` (stable vnode
  identity makes this exact, not approximate).
* :func:`plan_migrations` — the per-event migration work list: for every
  server that *gains* files under the paper's two-copy storage layout
  (primary + ring successor), the file ids it must copy in.  A fail-stop
  ``crash`` plans exactly the same migrations as a planned ``remove`` —
  survivors re-replicate from the remaining copy — which is what makes
  crash-at-t byte-identical to remove-at-t in the offline substrates.
* :func:`spike_metrics` — before/during/after p99 quantification of the
  rebalance/failover latency spike, pure numpy over the retained samples.

All of it is deterministic: no RNG is consumed here (migration *pacing* is a
fixed rate; the randomness of migration service times stays in the
substrates' seeded substreams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.consistent_hash import ConsistentHashRing
from repro.exceptions import ConfigurationError
from repro.flags import CHURN_PLACEMENT

__all__ = [
    "MembershipEvent",
    "ChurnTimeline",
    "parse_churn",
    "canonical_churn_spec",
    "plan_migrations",
    "spike_metrics",
    "resolve_churn_placement",
]

_ACTIONS = ("add", "remove", "crash")


def resolve_churn_placement(explicit: Optional[str] = None) -> str:
    """The effective ``REPRO_CHURN_PLACEMENT`` value (``epoch`` or ``scalar``)."""
    return CHURN_PLACEMENT.read(explicit)


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change.

    Attributes:
        when: Event time as a fraction of the run's arrival horizon, in
            ``(0, 1)``.
        action: ``"add"``, ``"remove"`` (planned) or ``"crash"`` (fail-stop).
            The offline substrates treat remove and crash identically (no
            drain: requests already dispatched complete, later requests see
            the new ring); the live serving layer additionally fails over
            in-flight copies on a crash.
        server: The server id the event concerns.
    """

    when: float
    action: str
    server: int

    def __post_init__(self) -> None:
        if not 0.0 < self.when < 1.0:
            raise ConfigurationError(
                f"event time must be a fraction in (0, 1), got {self.when!r}"
            )
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"event action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.server < 0:
            raise ConfigurationError(f"server id must be >= 0, got {self.server!r}")

    def spec(self) -> str:
        """Canonical spec fragment, e.g. ``"remove:2@0.4"``."""
        return f"{self.action}:{self.server}@{self.when:g}"


@dataclass(frozen=True)
class ChurnTimeline:
    """An ordered sequence of membership events over one run.

    Events are kept sorted by ``(when, server, action)``; two events may not
    share an exact time (the ring state between them would be ambiguous).
    """

    events: Tuple[MembershipEvent, ...]

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.when, e.server, e.action))
        )
        object.__setattr__(self, "events", ordered)
        whens = [e.when for e in ordered]
        if len(set(whens)) != len(whens):
            raise ConfigurationError(
                f"membership events must have distinct times, got {whens}"
            )

    def __bool__(self) -> bool:
        return bool(self.events)

    def spec(self) -> str:
        """The canonical spec string (sorted events, ``%g`` times)."""
        return ",".join(event.spec() for event in self.events)

    def epoch_rings(
        self, num_servers: int, virtual_nodes: int = 64
    ) -> List[ConsistentHashRing]:
        """One ring per epoch: index 0 is the initial ring, index ``e`` the
        ring after the first ``e`` events.

        Raises:
            ConfigurationError: If an event is illegal against the membership
                it applies to (adding a live id, removing a dead one, or
                shrinking the pool below two servers).
        """
        rings = [ConsistentHashRing(num_servers, virtual_nodes=virtual_nodes)]
        for event in self.events:
            ring = ConsistentHashRing(num_servers, virtual_nodes=virtual_nodes)
            for prior in self.events:
                if prior.when > event.when:
                    break
                if prior.action == "add":
                    ring.add_server(prior.server)
                else:
                    if ring.num_servers <= 2:
                        raise ConfigurationError(
                            f"event {prior.spec()!r} would leave fewer than 2 "
                            "servers; the substrates need a primary and a "
                            "successor"
                        )
                    ring.remove_server(prior.server)
            rings.append(ring)
        return rings

    def event_times(self, horizon: float) -> np.ndarray:
        """Absolute event times for a run whose last arrival is at ``horizon``."""
        return np.array([event.when * horizon for event in self.events])

    def all_servers(self, num_servers: int) -> List[int]:
        """Every server id ever live: the initial pool plus all added ids."""
        ids = set(range(num_servers))
        ids.update(e.server for e in self.events if e.action == "add")
        return sorted(ids)


def parse_churn(spec: Union[str, ChurnTimeline, None]) -> Optional[ChurnTimeline]:
    """Parse a churn spec into a timeline (``None``/empty → ``None``).

    The mini-language is comma-separated ``action:server@when`` fragments:
    ``"remove:2@0.4"``, ``"add:4@0.3,crash:1@0.6"``.

    Raises:
        ConfigurationError: On a malformed fragment.
    """
    if spec is None or isinstance(spec, ChurnTimeline):
        return spec or None
    text = spec.strip()
    if not text:
        return None
    events = []
    for fragment in text.split(","):
        fragment = fragment.strip()
        head, sep, when_text = fragment.partition("@")
        action, sep2, server_text = head.partition(":")
        if not sep or not sep2:
            raise ConfigurationError(
                f"malformed churn event {fragment!r}; expected 'action:server@when' "
                "like 'remove:2@0.4'"
            )
        try:
            server = int(server_text)
            when = float(when_text)
        except ValueError as exc:
            raise ConfigurationError(f"malformed churn event {fragment!r}: {exc}") from exc
        events.append(MembershipEvent(when=when, action=action.strip(), server=server))
    return ChurnTimeline(events=tuple(events))


def canonical_churn_spec(spec: Union[str, ChurnTimeline, None]) -> str:
    """The canonical spelling of a churn spec (``""`` for no churn).

    Used by :func:`repro.experiments.adapters.normalize_point_params` so two
    spellings of the same timeline (``"crash:1@0.50"`` vs ``"crash:1@0.5"``)
    share one point seed and one artifact row.
    """
    timeline = parse_churn(spec)
    return timeline.spec() if timeline else ""


def plan_migrations(
    before: ConsistentHashRing,
    after: ConsistentHashRing,
    num_keys: int,
    storage_copies: int = 2,
) -> Dict[int, np.ndarray]:
    """File ids each gaining server must copy in after a membership change.

    The storage layout is the paper's: each file lives on its primary and the
    ring successor (``storage_copies`` replicas).  A server's migration list
    is the files in its *after* replica set but not its *before* set, in
    ascending file-id order (deterministic).

    Returns:
        ``{server_id: file_ids}`` for servers that gained at least one file.
    """
    keys = range(num_keys)
    before_table = before.replica_table(keys, min(storage_copies, before.num_servers))
    after_table = after.replica_table(keys, min(storage_copies, after.num_servers))
    plans: Dict[int, np.ndarray] = {}
    for server in after.servers:
        holds_after = (after_table == server).any(axis=1)
        held_before = (before_table == server).any(axis=1)
        gained = np.flatnonzero(holds_after & ~held_before)
        if gained.size:
            plans[server] = gained
    return plans


def migration_schedule(
    rings: Sequence[ConsistentHashRing],
    event_times: np.ndarray,
    num_keys: int,
    migration_rate: float,
    horizon: float,
    storage_copies: int = 2,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The merged background-migration job stream across all events.

    Each gaining server copies its files in ascending file-id order, paced at
    ``migration_rate`` files per second starting at the event time (job ``j``
    arrives at ``event_time + j / migration_rate``).  Jobs whose arrival
    would fall past ``horizon`` are dropped — they cannot contend with any
    foreground request.

    Returns:
        ``(times, servers, files)`` parallel arrays sorted by
        ``(time, server, file)``.
    """
    if migration_rate <= 0:
        raise ConfigurationError(
            f"migration_rate must be positive, got {migration_rate!r}"
        )
    times: List[float] = []
    servers: List[int] = []
    files: List[int] = []
    for index in range(len(event_times)):
        plans = plan_migrations(
            rings[index], rings[index + 1], num_keys, storage_copies
        )
        start = float(event_times[index])
        for server in sorted(plans):
            for j, file_id in enumerate(plans[server]):
                at = start + j / migration_rate
                if at > horizon:
                    break
                times.append(at)
                servers.append(int(server))
                files.append(int(file_id))
    if not times:
        empty = np.array([], dtype=float)
        return empty, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    t = np.array(times)
    s = np.array(servers, dtype=np.int64)
    f = np.array(files, dtype=np.int64)
    order = np.lexsort((f, s, t))
    return t[order], s[order], f[order]


def spike_metrics(
    arrival_times: np.ndarray,
    response_times: np.ndarray,
    event_times: np.ndarray,
    num_bins: int = 24,
    spike_threshold: float = 1.5,
) -> Dict[str, float]:
    """Quantify the post-event latency spike: height, duration, recovery.

    Args:
        arrival_times: Arrival time of every retained request (warmup
            removed), ascending.
        response_times: Matching response times.
        event_times: Absolute membership-event times (may be empty).
        num_bins: Equal-width bins laid over the post-event window for the
            spike scan.
        spike_threshold: A bin counts toward the spike duration while its
            p99 exceeds ``spike_threshold`` x the pre-event p99.

    Returns:
        ``p99_before`` (pre-event p99), ``p99_spike`` (worst post-event bin
        p99), ``p99_after`` (p99 of the final quarter of the post-event
        window), ``spike_ratio`` (``p99_spike / p99_before``) and
        ``spike_duration_s`` (total width of elevated bins).  Without events
        all three p99s equal the overall p99 and the spike is flat.
    """
    arrival_times = np.asarray(arrival_times, dtype=float)
    response_times = np.asarray(response_times, dtype=float)
    overall = float(np.percentile(response_times, 99)) if response_times.size else 0.0
    flat = {
        "p99_before": overall,
        "p99_spike": overall,
        "p99_after": overall,
        "spike_ratio": 1.0,
        "spike_duration_s": 0.0,
    }
    if event_times.size == 0 or response_times.size == 0:
        return flat
    first_event = float(event_times[0])
    end = float(arrival_times[-1])
    before = response_times[arrival_times < first_event]
    if before.size == 0 or end <= first_event:
        return flat
    p99_before = float(np.percentile(before, 99))
    edges = np.linspace(first_event, end, num_bins + 1)
    bin_width = edges[1] - edges[0]
    elevated = 0
    p99_spike = p99_before
    for b in range(num_bins):
        mask = (arrival_times >= edges[b]) & (
            arrival_times < edges[b + 1] if b < num_bins - 1 else arrival_times <= end
        )
        samples = response_times[mask]
        if samples.size == 0:
            continue
        p99 = float(np.percentile(samples, 99))
        p99_spike = max(p99_spike, p99)
        if p99 > spike_threshold * p99_before:
            elevated += 1
    tail_start = end - 0.25 * (end - first_event)
    after = response_times[arrival_times >= tail_start]
    p99_after = float(np.percentile(after, 99)) if after.size else p99_before
    return {
        "p99_before": p99_before,
        "p99_spike": p99_spike,
        "p99_after": p99_after,
        "spike_ratio": p99_spike / p99_before if p99_before > 0 else 1.0,
        "spike_duration_s": elevated * float(bin_width),
    }
