"""Storage-cluster substrates for Sections 2.2 (disk-backed database) and 2.3 (memcached).

The disk-backed database model (:mod:`repro.cluster.database`) reproduces the
paper's Emulab/EC2 testbed as a discrete-event model: a set of storage servers,
each with a byte-bounded LRU page cache in front of a FIFO disk, files placed
by consistent hashing with the replica on the successor server, and a fleet of
open-loop Poisson clients that optionally send each read to both replicas and
take the first response.

The memcached model (:mod:`repro.cluster.memcached`) is the in-memory
counterpart where the per-copy client-side overhead is a significant fraction
of the (tiny) service time, reproducing the Section 2.3 negative result.
"""

from repro.cluster.consistent_hash import ConsistentHashRing
from repro.cluster.cache import LRUByteCache
from repro.cluster.disk import DiskModel
from repro.cluster.storage_server import StorageServerModel
from repro.cluster.database import (
    DatabaseClusterConfig,
    DatabaseClusterExperiment,
    DatabaseRunResult,
)
from repro.cluster.memcached import (
    MemcachedConfig,
    MemcachedExperiment,
    MemcachedRunResult,
)

__all__ = [
    "ConsistentHashRing",
    "LRUByteCache",
    "DiskModel",
    "StorageServerModel",
    "DatabaseClusterConfig",
    "DatabaseClusterExperiment",
    "DatabaseRunResult",
    "MemcachedConfig",
    "MemcachedExperiment",
    "MemcachedRunResult",
]
