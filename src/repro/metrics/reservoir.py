"""Bounded uniform sampling of an unbounded stream.

A :class:`Reservoir` keeps a fixed-size uniform random sample of everything
recorded into it (Vitter's Algorithm R), so a million-sample run can still
produce a CDF plot or feed :func:`repro.analysis.stats.summarize` from a few
thousand retained points.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError


class Reservoir:
    """A bounded, uniformly random sample of a stream.

    Example:
        >>> r = Reservoir("latency", capacity=100, seed=0)
        >>> for v in range(1000):
        ...     r.record(float(v))
        >>> r.seen, len(r.values())
        (1000, 100)
    """

    def __init__(self, name: str = "reservoir", capacity: int = 4096, seed: Optional[int] = 0) -> None:
        """Create an empty reservoir.

        Args:
            name: Metric name.
            capacity: Maximum number of samples retained (>= 1).
            seed: Seed for the replacement RNG.  The deterministic default
                keeps experiment runs reproducible (the repo's determinism
                contract: entry points never construct unseeded generators
                implicitly); pass ``None`` explicitly to opt into fresh OS
                entropy for exploratory use.
        """
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity!r}")
        self.name = str(name)
        self.capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._samples = np.empty(self.capacity, dtype=float)
        self._size = 0
        self._seen = 0

    @property
    def seen(self) -> int:
        """Total number of samples offered to the reservoir."""
        return self._seen

    def __len__(self) -> int:
        return self._size

    def record(self, value: float) -> None:
        """Offer one sample; it is retained with probability ``capacity/seen``.

        Raises:
            ConfigurationError: If ``value`` is negative or not finite (the
                same contract as every other metric in this package, so bad
                samples fail at the record site rather than poisoning a later
                summary).
        """
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ConfigurationError(f"samples must be finite and >= 0, got {value!r}")
        self._seen += 1
        if self._size < self.capacity:
            self._samples[self._size] = value
            self._size += 1
            return
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._samples[slot] = value

    def record_many(self, values) -> None:
        """Offer a batch of samples (vectorised; equivalent to repeated record)."""
        data = np.asarray(values, dtype=float).ravel()
        if data.size == 0:
            return
        if not np.all(np.isfinite(data)) or np.any(data < 0):
            raise ConfigurationError("samples must be finite and >= 0")
        # Fill phase: the reservoir keeps everything until it is full.
        take = min(self.capacity - self._size, int(data.size))
        if take:
            self._samples[self._size : self._size + take] = data[:take]
            self._size += take
            self._seen += take
            data = data[take:]
        if data.size == 0:
            return
        # Replacement phase, vectorised: element i is the (seen + i + 1)-th
        # sample overall and lands in a uniform slot of that many; only the
        # (rare) accepted replacements are applied in order.
        counts = self._seen + 1 + np.arange(data.size)
        slots = np.floor(self._rng.random(data.size) * counts).astype(np.int64)
        self._seen += int(data.size)
        accepted = slots < self.capacity
        for slot, value in zip(slots[accepted].tolist(), data[accepted].tolist()):
            self._samples[slot] = value

    def values(self) -> np.ndarray:
        """A copy of the retained sample (unordered)."""
        return self._samples[: self._size].copy()

    def reset(self) -> None:
        """Forget everything (the RNG state is kept)."""
        self._size = 0
        self._seen = 0

    def __repr__(self) -> str:
        return f"Reservoir({self.name!r}, size={self._size}/{self.capacity}, seen={self._seen})"
