"""The one percentile-of-sorted-data formula shared by every metric.

Linear interpolation between order statistics — :func:`numpy.percentile`'s
default convention — implemented once so the exact-mode histogram, the
sliding window and every summary in the repository cannot drift apart.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.exceptions import ConfigurationError


def sorted_percentile(ordered: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of an ascending-sorted sequence.

    Raises:
        ConfigurationError: If ``ordered`` is empty or ``q`` is out of range.
    """
    size = len(ordered)
    if size == 0:
        raise ConfigurationError("no samples recorded yet")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"q must be in [0, 100], got {q!r}")
    rank = q / 100.0 * (size - 1)
    low = int(math.floor(rank))
    high = min(low + 1, size - 1)
    fraction = rank - low
    return float(ordered[low] + (ordered[high] - ordered[low]) * fraction)
