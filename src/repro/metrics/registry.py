"""A namespace of metrics shared by one experiment or component.

Every substrate creates (or is handed) a :class:`MetricsRegistry` and records
through it, which is what makes cross-substrate comparison tables possible:
the queueing model, the storage cluster, the fat-tree network and the WAN
experiments all expose counters and latency distributions with the same names
and shapes.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Union

from repro.exceptions import ConfigurationError
from repro.metrics.counter import Counter
from repro.metrics.histogram import Histogram
from repro.metrics.recorder import LatencyRecorder
from repro.metrics.reservoir import Reservoir

Metric = Union[Counter, Histogram, LatencyRecorder, Reservoir]


class MetricsRegistry:
    """Named counters, histograms, recorders and reservoirs.

    Accessors are get-or-create: the first call for a name creates the metric,
    later calls return the same object; asking for an existing name as a
    different kind is an error.  Configuration keyword arguments apply only at
    creation — later calls return the existing metric as configured (except a
    recorder ``mode`` conflict, which raises, because silently returning an
    exact recorder to a caller expecting bounded memory would be a trap).

    Example:
        >>> registry = MetricsRegistry("cluster")
        >>> registry.counter("cache_hits").increment(3)
        >>> registry.counter("cache_hits").value
        3
    """

    def __init__(self, name: str = "metrics") -> None:
        """Create an empty registry named ``name``."""
        self.name = str(name)
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------ #

    def _get_or_create(self, name: str, kind: type, factory) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def histogram(self, name: str, **kwargs) -> Histogram:
        """The histogram called ``name`` (created on first use with ``kwargs``)."""
        return self._get_or_create(name, Histogram, lambda: Histogram(name, **kwargs))

    def recorder(self, name: str, mode: str = "exact", **kwargs) -> LatencyRecorder:
        """The latency recorder called ``name`` (created on first use).

        Raises:
            ConfigurationError: If the recorder exists with a different
                ``mode`` (exact vs streaming have different memory contracts;
                use :meth:`get` to fetch it regardless).
        """
        recorder = self._get_or_create(
            name, LatencyRecorder, lambda: LatencyRecorder(name, mode=mode, **kwargs)
        )
        if recorder.mode != mode:
            raise ConfigurationError(
                f"recorder {name!r} already registered with mode={recorder.mode!r}, "
                f"not {mode!r}"
            )
        return recorder

    def reservoir(self, name: str, **kwargs) -> Reservoir:
        """The reservoir called ``name`` (created on first use with ``kwargs``)."""
        return self._get_or_create(name, Reservoir, lambda: Reservoir(name, **kwargs))

    # ------------------------------------------------------------------ #

    def get(self, name: str) -> Optional[Metric]:
        """The metric called ``name``, or ``None``."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Reset every metric in place (names and objects are kept)."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view of every metric, for tables and logging.

        Counters become their integer value; histograms and recorders become
        their summary row (or ``None`` when empty); reservoirs become their
        retained sample count.
        """
        out: Dict[str, object] = {}
        for name in self:
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Reservoir):
                out[name] = {"seen": metric.seen, "retained": len(metric)}
            elif isinstance(metric, (Histogram, LatencyRecorder)):
                out[name] = metric.summary().as_row() if metric.count else None
        return out

    def __repr__(self) -> str:
        return f"MetricsRegistry({self.name!r}, metrics={len(self._metrics)})"
