"""The facade every substrate records latencies through.

A :class:`LatencyRecorder` hides the choice between keeping every sample
(exact summaries, what small experiment runs want) and streaming into a
bounded :class:`~repro.metrics.histogram.Histogram` (what production-scale
runs want), behind one interface that produces
:class:`~repro.analysis.stats.LatencySummary` objects either way — so result
tables and benchmarks cannot tell the difference.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import LatencySummary, summarize
from repro.exceptions import ConfigurationError
from repro.metrics.histogram import Histogram

#: Recording modes accepted by :class:`LatencyRecorder`.
MODES = ("exact", "streaming")


class LatencyRecorder:
    """Record response times; emit summaries, percentiles and tail fractions.

    Args:
        name: Metric name.
        mode: ``"exact"`` retains every sample and summarises with numpy
            (bit-identical to the pre-metrics ad-hoc paths); ``"streaming"``
            folds samples into a bounded histogram and summarises from it.
        histogram: Optional pre-configured histogram to stream into (its
            ``exact_threshold``/``bins_per_decade`` are respected).  Ignored in
            exact mode.

    Example:
        >>> r = LatencyRecorder("demo")
        >>> r.record_many([0.1, 0.2, 0.3])
        >>> r.summary().count
        3
    """

    def __init__(
        self,
        name: str = "latency",
        mode: str = "exact",
        histogram: Optional[Histogram] = None,
    ) -> None:
        if mode not in MODES:
            raise ConfigurationError(f"mode must be one of {MODES}, got {mode!r}")
        self.name = str(name)
        self.mode = mode
        self._chunks: List[np.ndarray] = []
        self._pending: List[float] = []
        self._count = 0
        self._summary_cache: Optional[LatencySummary] = None
        self._histogram: Optional[Histogram] = None
        if mode == "streaming":
            self._histogram = histogram if histogram is not None else Histogram(name=f"{name}.hist")
        elif histogram is not None:
            raise ConfigurationError("a histogram only makes sense with mode='streaming'")

    @classmethod
    def from_samples(cls, samples: Sequence[float], name: str = "latency") -> "LatencyRecorder":
        """An exact recorder pre-loaded with ``samples``."""
        recorder = cls(name=name, mode="exact")
        recorder.record_many(samples)
        return recorder

    # ------------------------------------------------------------------ #

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        if self.mode == "exact":
            return self._count
        return self._histogram.count

    @property
    def histogram(self) -> Optional[Histogram]:
        """The backing histogram (streaming mode only)."""
        return self._histogram

    def record(self, value: float) -> None:
        """Record one response time (finite, >= 0)."""
        self._summary_cache = None
        if self.mode == "exact":
            value = float(value)
            if not np.isfinite(value) or value < 0:
                raise ConfigurationError(f"samples must be finite and >= 0, got {value!r}")
            self._pending.append(value)
            self._count += 1
        else:
            self._histogram.record(value)

    def record_many(self, values: Iterable[float]) -> None:
        """Record a batch of response times.

        A float numpy array is stored as-is (no copy) — the recorder takes
        ownership of it; do not mutate it afterwards.
        """
        self._summary_cache = None
        data = np.asarray(values if isinstance(values, np.ndarray) else list(values), dtype=float)
        if data.size == 0:
            return
        if self.mode == "exact":
            if not np.all(np.isfinite(data)) or np.any(data < 0):
                raise ConfigurationError("samples must be finite and >= 0")
            self._flush_pending()
            self._chunks.append(data.ravel())
            self._count += int(data.size)
        else:
            self._histogram.record_many(data)

    def _flush_pending(self) -> None:
        """Move singly-recorded samples into the chunk list, keeping order."""
        if self._pending:
            self._chunks.append(np.asarray(self._pending, dtype=float))
            self._pending = []

    # ------------------------------------------------------------------ #

    def samples(self) -> np.ndarray:
        """Every recorded sample (exact mode only).

        Raises:
            ConfigurationError: In streaming mode, which does not retain
                samples (use :meth:`summary`/:meth:`percentile` instead, or a
                :class:`~repro.metrics.reservoir.Reservoir` alongside).
        """
        if self.mode != "exact":
            raise ConfigurationError("streaming recorders do not retain raw samples")
        self._flush_pending()
        if not self._chunks:
            return np.empty(0, dtype=float)
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks)]
        return self._chunks[0]

    def summary(self) -> LatencySummary:
        """A :class:`LatencySummary` of everything recorded so far.

        Cached between records, so a run that reads its summary several times
        (result object, registry snapshot, tables) sorts the samples once.

        Raises:
            ConfigurationError: If nothing has been recorded.
        """
        if self.mode == "streaming":
            # Not cached: queries are already O(occupied bins), and the
            # backing histogram may be shared and recorded into externally.
            return LatencySummary.from_histogram(self._histogram)
        if self._summary_cache is None:
            self._summary_cache = summarize(self.samples())
        return self._summary_cache

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of everything recorded so far."""
        if self.mode == "exact":
            data = self.samples()
            if data.size == 0:
                raise ConfigurationError("no samples recorded yet")
            if not 0.0 <= q <= 100.0:
                raise ConfigurationError(f"q must be in [0, 100], got {q!r}")
            return float(np.percentile(data, q))
        return self._histogram.percentile(q)

    def mean(self) -> float:
        """Mean of everything recorded so far."""
        if self.mode == "exact":
            data = self.samples()
            if data.size == 0:
                raise ConfigurationError("no samples recorded yet")
            return float(data.mean())
        return self._histogram.mean()

    def fraction_later_than(self, threshold: float) -> float:
        """Fraction of recorded samples strictly greater than ``threshold``."""
        if self.mode == "exact":
            data = self.samples()
            if data.size == 0:
                raise ConfigurationError("no samples recorded yet")
            return float(np.mean(data > threshold))
        return self._histogram.fraction_greater_than(threshold)

    def reset(self) -> None:
        """Forget every sample."""
        self._chunks = []
        self._pending = []
        self._count = 0
        self._summary_cache = None
        if self._histogram is not None:
            self._histogram.reset()

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"LatencyRecorder({self.name!r}, mode={self.mode!r}, count={self.count})"
