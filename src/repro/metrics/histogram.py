"""Streaming percentile estimation in bounded memory.

A :class:`Histogram` ingests an unbounded stream of non-negative latency
samples and answers percentile queries without retaining the stream.  Two
regimes:

* **exact mode** — while the stream is short (``count <= exact_threshold``)
  every sample is kept and queries delegate to :func:`numpy.percentile`, so
  small experiments lose nothing;
* **binned mode** — past the threshold, samples are folded into fixed-width
  logarithmic bins (``bins_per_decade`` bins per factor of ten, the
  HdrHistogram idea).  Quantile estimates are then nearest-rank flavoured:
  each lands within roughly ``10**(2/bins_per_decade) - 1`` relative error of
  the order statistics bracketing the queried rank (see
  :meth:`Histogram.relative_error_bound`), regardless of how many samples
  arrive.  Note numpy's *interpolated* quantile can sit far from both
  bracketing samples when adjacent order statistics straddle a large gap
  (e.g. bimodal hit/miss latencies), and no binned estimator can track it
  there.

Count, sum, minimum, maximum and the running mean/variance moments (Welford's
algorithm) are tracked exactly in both regimes, so means and standard
deviations are never approximated.  Percentile queries cost O(number of
occupied bins) — independent of the sample count — versus the O(n log n)
sort-per-query of the ad-hoc sample lists this class replaces.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.metrics._quantile import sorted_percentile

#: Resolution of the default binning: ~1.8% per bin (~3.7% worst-case
#: quantile error versus numpy's interpolated quantiles).
DEFAULT_BINS_PER_DECADE = 128

#: Samples kept verbatim before switching to binned mode.
DEFAULT_EXACT_THRESHOLD = 1024


class Histogram:
    """Bounded-memory histogram of a non-negative sample stream.

    Example:
        >>> h = Histogram("latency", exact_threshold=4)
        >>> for v in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]:
        ...     h.record(v)
        >>> h.count
        6
        >>> round(h.mean(), 3)
        0.35
    """

    def __init__(
        self,
        name: str = "histogram",
        exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
        bins_per_decade: int = DEFAULT_BINS_PER_DECADE,
    ) -> None:
        """Create an empty histogram.

        Args:
            name: Metric name (used by registries and snapshots).
            exact_threshold: Number of leading samples kept exactly before the
                histogram switches to bins.  ``0`` bins from the first sample.
            bins_per_decade: Log-bin resolution; relative quantile error in
                binned mode is bounded by roughly
                ``10**(2/bins_per_decade) - 1``.

        Raises:
            ConfigurationError: On a negative threshold or non-positive
                resolution.
        """
        if exact_threshold < 0:
            raise ConfigurationError(f"exact_threshold must be >= 0, got {exact_threshold!r}")
        if bins_per_decade < 1:
            raise ConfigurationError(f"bins_per_decade must be >= 1, got {bins_per_decade!r}")
        self.name = str(name)
        self.exact_threshold = int(exact_threshold)
        self.bins_per_decade = int(bins_per_decade)
        self._count = 0
        self._sum = 0.0
        # Welford/Chan accumulators: the naive sum-of-squares formula loses
        # all precision for large-magnitude samples.
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        # Exact regime.
        self._exact: Optional[List[float]] = []
        self._sorted_cache: Optional[np.ndarray] = None
        # Binned regime: sparse log bins plus a dedicated zero bucket.
        self._bins: Dict[int, int] = {}
        self._zero_count = 0
        self._bin_keys_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record(self, value: float) -> None:
        """Add one sample (finite, >= 0).

        Raises:
            ConfigurationError: If ``value`` is negative or not finite.
        """
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ConfigurationError(f"samples must be finite and >= 0, got {value!r}")
        self._count += 1
        self._sum += value
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._exact is not None:
            self._exact.append(value)
            self._sorted_cache = None
            if len(self._exact) > self.exact_threshold:
                self._spill_exact()
        else:
            self._bin_one(value)

    def record_many(self, values: Iterable[float]) -> None:
        """Add a batch of samples (vectorised for numpy arrays)."""
        data = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
        if data.size == 0:
            return
        if not np.all(np.isfinite(data)) or np.any(data < 0):
            raise ConfigurationError("samples must be finite and >= 0")
        batch_mean = float(data.mean())
        batch_m2 = float(np.square(data - batch_mean).sum())
        self._combine_moments(int(data.size), batch_mean, batch_m2)
        self._sum += float(data.sum())
        self._min = min(self._min, float(data.min()))
        self._max = max(self._max, float(data.max()))
        if self._exact is not None and self._count <= self.exact_threshold:
            self._exact.extend(data.tolist())
            self._sorted_cache = None
            return
        if self._exact is not None:
            self._exact.extend(data.tolist())
            self._spill_exact()
            return
        self._bin_array(data)

    def _combine_moments(self, batch_count: int, batch_mean: float, batch_m2: float) -> None:
        """Fold a batch's (count, mean, M2) into the running moments (Chan et al.)."""
        if batch_count == 0:
            return
        total = self._count + batch_count
        delta = batch_mean - self._mean
        self._mean += delta * batch_count / total
        self._m2 += batch_m2 + delta * delta * self._count * batch_count / total
        self._count = total

    def _spill_exact(self) -> None:
        """Switch from exact to binned mode, folding the retained samples in."""
        assert self._exact is not None
        samples = np.asarray(self._exact, dtype=float)
        self._exact = None
        self._sorted_cache = None
        self._bin_array(samples)

    def _key(self, value: float) -> int:
        """Log-bin index of a positive value."""
        return math.floor(self.bins_per_decade * math.log10(value))

    def _bin_one(self, value: float) -> None:
        if value == 0.0:
            self._zero_count += 1
            return
        key = self._key(value)
        if key not in self._bins:
            self._bin_keys_cache = None
        self._bins[key] = self._bins.get(key, 0) + 1

    def _bin_array(self, data: np.ndarray) -> None:
        zeros = int(np.count_nonzero(data == 0.0))
        self._zero_count += zeros
        positive = data[data > 0.0]
        if positive.size == 0:
            return
        keys = np.floor(self.bins_per_decade * np.log10(positive)).astype(np.int64)
        unique, counts = np.unique(keys, return_counts=True)
        for key, count in zip(unique.tolist(), counts.tolist()):
            if key not in self._bins:
                self._bin_keys_cache = None
            self._bins[key] = self._bins.get(key, 0) + int(count)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self._count

    @property
    def is_exact(self) -> bool:
        """Whether the histogram still holds every sample verbatim."""
        return self._exact is not None

    @property
    def occupied_bins(self) -> int:
        """Number of occupied log bins (binned mode memory footprint)."""
        return len(self._bins) + (1 if self._zero_count else 0)

    def min(self) -> float:
        """Smallest sample recorded.

        Raises:
            ConfigurationError: If the histogram is empty.
        """
        self._require_samples()
        return self._min

    def max(self) -> float:
        """Largest sample recorded."""
        self._require_samples()
        return self._max

    def mean(self) -> float:
        """Exact mean of all samples recorded."""
        self._require_samples()
        return self._mean

    def std(self) -> float:
        """Exact population standard deviation of all samples recorded.

        Accumulated with Welford's algorithm (Chan's pairwise combine for
        batches), so it stays accurate even when the samples are large
        numbers with a small spread.
        """
        self._require_samples()
        return math.sqrt(max(0.0, self._m2 / self._count))

    def total(self) -> float:
        """Exact sum of all samples recorded."""
        return self._sum

    def _require_samples(self) -> None:
        if self._count == 0:
            raise ConfigurationError(f"histogram {self.name!r} has no samples yet")

    # ------------------------------------------------------------------ #
    # Quantile queries
    # ------------------------------------------------------------------ #

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the recorded stream.

        Exact (``numpy.percentile`` semantics) while in exact mode; in binned
        mode the answer interpolates within the containing log bin and its
        relative error is bounded by the bin resolution.

        Raises:
            ConfigurationError: If the histogram is empty or ``q`` is out of
                range.
        """
        self._require_samples()
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"q must be in [0, 100], got {q!r}")
        if self._exact is not None:
            if self._sorted_cache is None:
                self._sorted_cache = np.sort(np.asarray(self._exact, dtype=float))
            return sorted_percentile(self._sorted_cache, q)
        return self._percentile_binned(q)

    def percentiles(self, qs: Iterable[float]) -> List[float]:
        """Several percentiles in one call (each an O(occupied bins) walk)."""
        return [self.percentile(q) for q in qs]

    def _percentile_binned(self, q: float) -> float:
        target = q / 100.0 * (self._count - 1)
        # The extreme ranks are known exactly: anchor them to the tracked
        # min/max instead of a bin edge (a singleton tail bin would otherwise
        # report its low edge and understate the max by up to one bin width).
        if target >= self._count - 1:
            return self._max
        if target <= 0.0:
            return self._min
        # Walk the cumulative counts: zero bucket first, then log bins in order.
        if self._bin_keys_cache is None:
            self._bin_keys_cache = sorted(self._bins)
        cumulative = 0
        if self._zero_count:
            cumulative = self._zero_count
            if target < cumulative:
                return 0.0
        for key in self._bin_keys_cache:
            bin_count = self._bins[key]
            if target < cumulative + bin_count:
                low_edge = 10.0 ** (key / self.bins_per_decade)
                high_edge = 10.0 ** ((key + 1) / self.bins_per_decade)
                # Clamp the edges to the observed range so the extreme bins do
                # not over/under-shoot the true min/max.
                low_edge = max(low_edge, self._min)
                high_edge = min(high_edge, self._max)
                if bin_count == 1 or high_edge <= low_edge:
                    return float(min(max(low_edge, self._min), self._max))
                fraction = (target - cumulative) / (bin_count - 1) if bin_count > 1 else 0.0
                return float(low_edge + (high_edge - low_edge) * min(1.0, fraction))
            cumulative += bin_count
        return self._max

    def summary(self):
        """A :class:`~repro.analysis.stats.LatencySummary` of the stream.

        Exact while in exact mode; estimated percentiles (exact mean/std/
        min/max/count) once binned.
        """
        from repro.analysis.stats import LatencySummary

        return LatencySummary.from_histogram(self)

    def relative_error_bound(self) -> float:
        """Approximate worst-case relative error versus the bracketing samples.

        In binned mode an estimate lands within this relative distance of the
        order statistics bracketing the queried rank (a bin spans a
        ``10**(1/bins_per_decade)`` ratio; the two bracketing samples can
        occupy adjacent bins, hence two bins' worth).  It is *not* a bound on
        the distance to :func:`numpy.percentile`'s interpolated quantile: when
        the bracketing samples straddle a large gap (bimodal data), the
        interpolated value lies between modes where no sample — and hence no
        bin — exists.  For unimodal/continuous latency distributions with
        interior ranks the two notions coincide in practice; callers
        comparing against numpy should still leave a small margin.
        """
        return 10.0 ** (2.0 / self.bins_per_decade) - 1.0

    def fraction_greater_than(self, threshold: float) -> float:
        """Estimated fraction of samples strictly greater than ``threshold``.

        Exact in exact mode; in binned mode the bin containing ``threshold``
        is apportioned linearly.
        """
        self._require_samples()
        threshold = float(threshold)
        if self._exact is not None:
            data = np.asarray(self._exact, dtype=float)
            return float(np.mean(data > threshold))
        if threshold < self._min:
            return 1.0
        if threshold >= self._max:
            return 0.0
        above = 0.0
        for key, bin_count in self._bins.items():
            low_edge = 10.0 ** (key / self.bins_per_decade)
            high_edge = 10.0 ** ((key + 1) / self.bins_per_decade)
            # Clamp to the observed range so the extreme bins do not leak mass
            # past the true min/max (mirrors _percentile_binned).
            low_edge = max(low_edge, self._min)
            high_edge = min(high_edge, self._max)
            if threshold <= low_edge:
                above += bin_count
            elif threshold < high_edge:
                above += bin_count * (high_edge - threshold) / (high_edge - low_edge)
        return above / self._count

    # ------------------------------------------------------------------ #

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one.

        Raises:
            ConfigurationError: If the bin resolutions differ.
        """
        if other.bins_per_decade != self.bins_per_decade:
            raise ConfigurationError(
                "cannot merge histograms with different bins_per_decade "
                f"({self.bins_per_decade} vs {other.bins_per_decade})"
            )
        if other._count == 0:
            return
        if other._exact is not None:
            self.record_many(np.asarray(other._exact, dtype=float))
            return
        if self._exact is not None:
            self._spill_exact()
        self._combine_moments(other._count, other._mean, other._m2)
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._zero_count += other._zero_count
        for key, bin_count in other._bins.items():
            if key not in self._bins:
                self._bin_keys_cache = None
            self._bins[key] = self._bins.get(key, 0) + bin_count

    def reset(self) -> None:
        """Forget every sample (e.g. between experiment runs)."""
        self._count = 0
        self._sum = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._exact = []
        self._sorted_cache = None
        self._bins = {}
        self._zero_count = 0
        self._bin_keys_cache = None

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        mode = "exact" if self.is_exact else f"binned[{self.occupied_bins}]"
        return f"Histogram({self.name!r}, count={self._count}, mode={mode})"
