"""Unified streaming metrics for every substrate.

Every experiment in this repository is judged on latency distributions —
means, medians, p99/p99.9, fraction-late.  This package is the one way those
distributions (and the counters beside them: copies launched, cancellations,
cache hits, dropped packets) are collected:

* :class:`Counter` — monotonic event counts.
* :class:`Histogram` — streaming percentile estimator: exact up to a
  threshold, fixed-resolution log bins beyond it, O(1)-amortised queries at
  any stream length.
* :class:`SlidingWindow` — exact percentiles over the last N samples with an
  incrementally maintained sorted view (the adaptive-hedging hot path).
* :class:`Reservoir` — bounded uniform random sample of an unbounded stream.
* :class:`LatencyRecorder` — the facade substrates record through; produces
  :class:`~repro.analysis.stats.LatencySummary` objects in either exact or
  streaming mode, so result tables cannot tell the difference.
* :class:`MetricsRegistry` — a get-or-create namespace of all of the above.
"""

from repro.metrics.counter import Counter
from repro.metrics.histogram import (
    DEFAULT_BINS_PER_DECADE,
    DEFAULT_EXACT_THRESHOLD,
    Histogram,
)
from repro.metrics.recorder import LatencyRecorder
from repro.metrics.registry import MetricsRegistry
from repro.metrics.reservoir import Reservoir
from repro.metrics.window import SlidingWindow

__all__ = [
    "Counter",
    "Histogram",
    "SlidingWindow",
    "Reservoir",
    "LatencyRecorder",
    "MetricsRegistry",
    "DEFAULT_BINS_PER_DECADE",
    "DEFAULT_EXACT_THRESHOLD",
]
