"""Monotonic event counters.

A :class:`Counter` counts things — copies launched, cancellations, cache hits,
dropped packets.  Counters are deliberately minimal: an integer total plus an
increment count, so every substrate exposes the same shape of data in
cross-substrate comparison tables.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError


class Counter:
    """A monotonically increasing counter.

    Example:
        >>> c = Counter("cache_hits")
        >>> c.increment()
        >>> c.increment(4)
        >>> c.value
        5
    """

    def __init__(self, name: str = "counter") -> None:
        """Create a counter named ``name`` starting at zero."""
        self.name = str(name)
        self._value = 0
        self._increments = 0

    @property
    def value(self) -> int:
        """Current total."""
        return self._value

    @property
    def increments(self) -> int:
        """Number of :meth:`increment` calls (regardless of their amount)."""
        return self._increments

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (a non-negative integer) to the counter.

        Raises:
            ConfigurationError: If ``amount`` is negative (counters are
                monotonic; use two counters rather than decrementing one) or
                not an integer (use a histogram for fractional quantities).
        """
        if amount < 0:
            raise ConfigurationError(f"counters are monotonic; got amount {amount!r}")
        if int(amount) != amount:
            raise ConfigurationError(f"counters are integral; got amount {amount!r}")
        self._value += int(amount)
        self._increments += 1

    def reset(self) -> None:
        """Reset the counter to zero (e.g. between experiment runs)."""
        self._value = 0
        self._increments = 0

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"
