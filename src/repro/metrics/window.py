"""Exact percentiles over a sliding window of recent samples.

Adaptive policies (hedge-at-the-95th-percentile) need percentiles of the last
``N`` observations, queried after nearly every record.  Re-sorting the window
per query is O(N log N); :class:`SlidingWindow` instead maintains the sorted
view incrementally — one binary-search insertion (and one deletion once the
window is full) per record — making every percentile query an O(1) index
lookup.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from typing import Deque, List

from repro.exceptions import ConfigurationError
from repro.metrics._quantile import sorted_percentile


class SlidingWindow:
    """The last ``capacity`` samples, with O(1) exact percentile queries.

    Example:
        >>> w = SlidingWindow(3)
        >>> for v in (1.0, 2.0, 3.0, 4.0):
        ...     w.record(v)
        >>> len(w), w.percentile(0), w.percentile(100)
        (3, 2.0, 4.0)
    """

    def __init__(self, capacity: int) -> None:
        """Track at most ``capacity`` (>= 1) most recent samples."""
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self._order: Deque[float] = deque()
        self._sorted: List[float] = []

    def record(self, value: float) -> None:
        """Add one sample, evicting the oldest once the window is full.

        Raises:
            ConfigurationError: If ``value`` is not finite.
        """
        value = float(value)
        if not math.isfinite(value):
            raise ConfigurationError(f"samples must be finite, got {value!r}")
        self._order.append(value)
        bisect.insort(self._sorted, value)
        if len(self._order) > self.capacity:
            oldest = self._order.popleft()
            del self._sorted[bisect.bisect_left(self._sorted, oldest)]

    def __len__(self) -> int:
        return len(self._order)

    def values(self) -> List[float]:
        """The retained samples in arrival order (oldest first)."""
        return list(self._order)

    def mean(self) -> float:
        """Mean of the retained samples.

        Recomputed from the retained window per call (mean is an off-path
        query here), so no floating-point drift accumulates over long runs
        the way an add/subtract running sum would.

        Raises:
            ConfigurationError: If the window is empty.
        """
        self._require_samples()
        return sum(self._sorted) / len(self._sorted)

    def min(self) -> float:
        """Smallest retained sample."""
        self._require_samples()
        return self._sorted[0]

    def max(self) -> float:
        """Largest retained sample."""
        self._require_samples()
        return self._sorted[-1]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) with linear interpolation.

        Matches :func:`numpy.percentile` on the retained window, but costs one
        index lookup instead of a sort.

        Raises:
            ConfigurationError: If the window is empty or ``q`` out of range.
        """
        self._require_samples()
        return sorted_percentile(self._sorted, q)

    def _require_samples(self) -> None:
        if not self._order:
            raise ConfigurationError("no samples recorded yet")

    def __repr__(self) -> str:
        return f"SlidingWindow(capacity={self.capacity}, size={len(self._order)})"
