"""The scenario registry and the built-in scenario catalogue.

Scenarios register by name; the CLI and tests look them up with
:func:`get_scenario`.  The built-ins cover every substrate in the repository
(queueing, database cluster, memcached, fat-tree network, WAN DNS and
handshake) plus the paired replication-vs-baseline threshold sweep that is
the paper's central experiment, all sized to run in seconds — they are the
entry points future workload PRs extend, not the full paper-scale runs (the
benchmarks remain those).
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import ConfigurationError
from repro.experiments.grid import ParameterGrid
from repro.experiments.scenario import Scenario

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (``replace=True`` to overwrite).

    Raises:
        ConfigurationError: If the name is taken and ``replace`` is false.
    """
    if scenario.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered; "
            "pass replace=True to overwrite"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name.

    Raises:
        ConfigurationError: If no scenario has that name.
    """
    scenario = _REGISTRY.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        )
    return scenario


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


# --------------------------------------------------------------------------- #
# Built-in catalogue
# --------------------------------------------------------------------------- #

register_scenario(
    Scenario(
        name="queueing-load-sweep",
        entry_point="queueing",
        description="Section 2.1 queueing model: response time vs load and copies.",
        base_params={"distribution": "exponential", "num_requests": 20_000},
        grid=ParameterGrid({"load": [0.1, 0.2, 0.3, 0.4], "copies": [1, 2]}),
    )
)

register_scenario(
    Scenario(
        name="queueing-threshold",
        entry_point="queueing_paired",
        description=(
            "Paired replication-vs-baseline benefit across service-time "
            "distributions and loads (the threshold-load experiment)."
        ),
        base_params={"copies": 2, "num_requests": 20_000},
        grid=ParameterGrid(
            {
                "distribution": ["deterministic", "exponential", "pareto", "two_point"],
                "load": [0.1, 0.2, 0.3, 0.4],
            }
        ),
    )
)

register_scenario(
    Scenario(
        name="queueing-smoke",
        entry_point="queueing_paired",
        description="Tiny paired queueing sweep for CI smoke runs (seconds).",
        base_params={"distribution": "exponential", "num_requests": 1_000},
        grid=ParameterGrid({"load": [0.15, 0.3], "copies": [2]}),
    )
)

register_scenario(
    Scenario(
        name="database-base",
        entry_point="database",
        description="Section 2.2 disk-backed database, Figure 5 base configuration.",
        base_params={
            "variant": "base",
            "num_files": 20_000,
            "num_requests": 10_000,
            "ccdf_thresholds_ms": [5, 10, 20, 50, 100, 200],
        },
        grid=ParameterGrid({"load": [0.1, 0.2, 0.3, 0.45], "copies": [1, 2]}),
    )
)

register_scenario(
    Scenario(
        name="memcached-load-sweep",
        entry_point="memcached",
        description="Section 2.3 memcached: replication vs baseline across loads.",
        base_params={"num_requests": 20_000},
        grid=ParameterGrid({"load": [0.1, 0.2, 0.3, 0.45], "copies": [1, 2]}),
    )
)

register_scenario(
    Scenario(
        name="fattree-short-flows",
        entry_point="fattree",
        description=(
            "Section 2.4 fat-tree (k=4): short-flow completion times with and "
            "without in-network replication of the first packets."
        ),
        base_params={"k": 4, "num_flows": 400},
        grid=ParameterGrid({"load": [0.2, 0.4], "replication": [False, True]}),
    )
)

register_scenario(
    Scenario(
        name="dns-best-k",
        entry_point="dns",
        description="Section 3.2 DNS: latency vs number of servers queried in parallel.",
        base_params={"num_vantage_points": 6, "stage2_queries": 600},
        grid=ParameterGrid({"copies": [1, 2, 4]}),
    )
)

register_scenario(
    Scenario(
        name="handshake-duplication",
        entry_point="handshake",
        description="Section 3.1 TCP handshake: completion time with duplicated packets.",
        base_params={"num_samples": 50_000},
        grid=ParameterGrid({"copies": [1, 2], "rtt": [0.05, 0.2]}),
    )
)
