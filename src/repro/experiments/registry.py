"""The scenario registry and the built-in scenario catalogue.

Scenarios register by name; the CLI and tests look them up with
:func:`get_scenario`.  The catalogue is organised in three tiers
(:data:`repro.experiments.scenario.TIERS`):

* ``smoke`` — seconds; what CI runs through the CLI on every push;
* ``standard`` — the default exploration scale, covering every substrate
  (queueing, database cluster, memcached, fat-tree network, WAN DNS and
  handshake) plus the paired replication-vs-baseline threshold sweep that is
  the paper's central experiment, all sized to run in seconds-to-a-minute;
* ``paper`` — the paper's full scale: the k=6 (54-host) fat-tree of
  Figure 14, the complete 15-vantage × 10-server DNS matrix of Figures
  15-17, and the EC2-trace database sweep of Figure 9.  These take minutes
  to hours; run them with ``--out results.jsonl`` so an interrupted run can
  be finished with ``--resume``, and split them across machines with
  ``--shard I/N`` — the shard artifacts ``merge`` back into a file
  byte-identical to a single-machine run (see ``EXPERIMENTS.md``,
  "Running paper-tier sweeps across machines").

``EXPERIMENTS.md`` maps every paper figure to the scenario (and exact CLI
command) that reproduces it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.experiments.grid import ParameterGrid
from repro.experiments.scenario import TIERS, Scenario

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (``replace=True`` to overwrite).

    Raises:
        ConfigurationError: If the name is taken and ``replace`` is false.
    """
    if scenario.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered; "
            "pass replace=True to overwrite"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name.

    Raises:
        ConfigurationError: If no scenario has that name.
    """
    scenario = _REGISTRY.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        )
    return scenario


def _check_tier(tier: Optional[str]) -> None:
    if tier is not None and tier not in TIERS:
        raise ConfigurationError(f"unknown scenario tier {tier!r}; known tiers: {TIERS}")


def scenario_names(tier: Optional[str] = None) -> List[str]:
    """Registered scenario names, sorted; optionally limited to one tier."""
    _check_tier(tier)
    return sorted(
        name for name, scenario in _REGISTRY.items()
        if tier is None or scenario.tier == tier
    )


def all_scenarios(tier: Optional[str] = None) -> List[Scenario]:
    """All registered scenarios, sorted by name; optionally one tier only."""
    return [_REGISTRY[name] for name in scenario_names(tier)]


# --------------------------------------------------------------------------- #
# Built-in catalogue — smoke tier
# --------------------------------------------------------------------------- #

register_scenario(
    Scenario(
        name="queueing-smoke",
        entry_point="queueing_paired",
        tier="smoke",
        description="Tiny paired queueing sweep for CI smoke runs (seconds).",
        base_params={"distribution": "exponential", "num_requests": 1_000},
        grid=ParameterGrid({"load": [0.15, 0.3], "copies": [2]}),
    )
)

register_scenario(
    Scenario(
        name="smoke-pipeline",
        entry_point="pipeline",
        tier="smoke",
        description=(
            "Tiny job-pipeline sweep (2 stages, both execution paths) for CI "
            "determinism smokes (seconds)."
        ),
        base_params={
            "num_jobs": 30,
            "num_workers": 8,
            "num_chunks": 12,
            "num_stages": 2,
            "straggler_alpha": 1.4,
        },
        grid=ParameterGrid({"policy": ["none", "k2", "hedge:p95"]}),
    )
)

# --------------------------------------------------------------------------- #
# Built-in catalogue — standard tier
# --------------------------------------------------------------------------- #

register_scenario(
    Scenario(
        name="queueing-load-sweep",
        entry_point="queueing",
        description="Section 2.1 queueing model: response time vs load and copies (Figure 1).",
        base_params={"distribution": "exponential", "num_requests": 20_000},
        grid=ParameterGrid({"load": [0.1, 0.2, 0.3, 0.4], "copies": [1, 2]}),
    )
)

register_scenario(
    Scenario(
        name="queueing-threshold",
        entry_point="queueing_paired",
        description=(
            "Paired replication-vs-baseline benefit across service-time "
            "distributions and loads (the threshold-load experiment, Figure 2)."
        ),
        base_params={"copies": 2, "num_requests": 20_000},
        grid=ParameterGrid(
            {
                "distribution": ["deterministic", "exponential", "pareto", "two_point"],
                "load": [0.1, 0.2, 0.3, 0.4],
            }
        ),
    )
)

register_scenario(
    Scenario(
        name="queueing-overhead",
        entry_point="queueing_paired",
        description=(
            "Figure 4: client-side overhead (as a fraction of the mean service "
            "time) eroding the paired replication benefit."
        ),
        base_params={"distribution": "exponential", "copies": 2, "num_requests": 20_000},
        grid=ParameterGrid(
            {"client_overhead": [0.0, 0.1, 0.25, 0.5], "load": [0.1, 0.2, 0.3]}
        ),
    )
)

#: The Figure 5-11 disk-backed-database variants, by figure order.
_DATABASE_VARIANTS = {
    "base": "Figure 5: base configuration (4 KB files, cache:data 0.1).",
    "small_files": "Figure 6: tiny (0.04 KB) files.",
    "pareto_files": "Figure 7: Pareto-distributed file sizes.",
    "small_cache": "Figure 8: cache:data ratio 0.01 (disk-bound).",
    "ec2": "Figure 9: shared EC2-like servers with noisy neighbours.",
    "large_files": "Figure 10: 400 KB files (transfer-bound).",
    "all_cached": "Figure 11: everything fits in memory.",
}

for _variant, _blurb in _DATABASE_VARIANTS.items():
    register_scenario(
        Scenario(
            name=f"database-{_variant.replace('_', '-')}",
            entry_point="database",
            description=f"Section 2.2 disk-backed database. {_blurb}",
            base_params={
                "variant": _variant,
                "num_files": 20_000,
                "num_requests": 10_000,
                "ccdf_thresholds_ms": [5, 10, 20, 50, 100, 200],
            },
            grid=ParameterGrid({"load": [0.1, 0.2, 0.3, 0.45], "copies": [1, 2]}),
        )
    )

register_scenario(
    Scenario(
        name="memcached-load-sweep",
        entry_point="memcached",
        description="Section 2.3 memcached: replication vs baseline across loads (Figure 12).",
        base_params={"num_requests": 20_000},
        grid=ParameterGrid({"load": [0.1, 0.2, 0.3, 0.45], "copies": [1, 2]}),
    )
)

register_scenario(
    Scenario(
        name="memcached-stub",
        entry_point="memcached",
        description=(
            "Figure 13: memcached vs the stub build (no-op server) isolating "
            "the client-side cost of processing extra responses."
        ),
        base_params={"load": 0.001, "num_requests": 20_000},
        grid=ParameterGrid({"stub": [False, True], "copies": [1, 2]}),
    )
)

register_scenario(
    Scenario(
        name="fattree-short-flows",
        entry_point="fattree",
        description=(
            "Section 2.4 fat-tree (k=4): short-flow completion times with and "
            "without in-network replication of the first packets."
        ),
        base_params={"k": 4, "num_flows": 400},
        grid=ParameterGrid({"load": [0.2, 0.4], "replication": [False, True]}),
    )
)

register_scenario(
    Scenario(
        name="dns-best-k",
        entry_point="dns",
        description="Section 3.2 DNS: latency vs number of servers queried in parallel.",
        base_params={"num_vantage_points": 6, "stage2_queries": 600},
        grid=ParameterGrid({"copies": [1, 2, 4]}),
    )
)

register_scenario(
    Scenario(
        name="handshake-duplication",
        entry_point="handshake",
        description="Section 3.1 TCP handshake: completion time with duplicated packets.",
        base_params={"num_samples": 50_000},
        grid=ParameterGrid({"copies": [1, 2], "rtt": [0.05, 0.2]}),
    )
)

# --------------------------------------------------------------------------- #
# Built-in catalogue — hedging ablations (beyond the paper; see EXPERIMENTS.md)
#
# The paper contrasts its eager duplication with deferred ("hedged") variants
# that trade a little of the mean-latency benefit for far less added load.
# These scenarios sweep that trade-off as a `policy` axis across every
# substrate: "none" and "k2" bracket each figure's original two curves, and
# the hedge specs fill in the deferred middle ground.
# --------------------------------------------------------------------------- #

register_scenario(
    Scenario(
        name="standard-queueing-policy-ablation",
        entry_point="queueing",
        description=(
            "Policy ablation on the Section 2.1 queueing model: eager k-copies "
            "vs fixed-delay and p95-adaptive hedging (mean service time = 1 s)."
        ),
        base_params={"distribution": "exponential", "num_requests": 20_000},
        grid=ParameterGrid(
            {"load": [0.2, 0.4], "policy": ["none", "k2", "hedge:500ms", "hedge:p95"]}
        ),
    )
)

register_scenario(
    Scenario(
        name="standard-db-hedging",
        entry_point="database",
        description=(
            "Hedged secondary reads vs eager duplication on the Section 2.2 "
            "disk-backed database (base configuration)."
        ),
        base_params={
            "variant": "base",
            "num_files": 20_000,
            "num_requests": 10_000,
            "ccdf_thresholds_ms": [5, 10, 20, 50, 100, 200],
        },
        grid=ParameterGrid(
            {"load": [0.2, 0.4], "policy": ["none", "k2", "hedge:20ms", "hedge:p95"]}
        ),
    )
)

register_scenario(
    Scenario(
        name="standard-memcached-hedging",
        entry_point="memcached",
        description=(
            "Hedging where eager replication hurts: the Section 2.3 memcached "
            "cluster, whose client overhead eats the eager benefit (Figure 12)."
        ),
        base_params={"num_requests": 20_000},
        grid=ParameterGrid(
            {"load": [0.1, 0.3], "policy": ["none", "k2", "hedge:400us", "hedge:p95"]}
        ),
    )
)

register_scenario(
    Scenario(
        name="standard-fattree-policy",
        entry_point="fattree",
        description=(
            "Deferred in-network duplication on the Section 2.4 fat-tree: the "
            "replica is injected only after a hedge delay and suppressed if "
            "the segment was already acknowledged."
        ),
        base_params={"k": 4, "num_flows": 400},
        grid=ParameterGrid({"load": [0.2, 0.4], "policy": ["none", "k2", "hedge:100us"]}),
    )
)

register_scenario(
    Scenario(
        name="standard-handshake-hedging",
        entry_point="handshake",
        description=(
            "Deferred SYN duplication (Section 3.1): time-separated copies "
            "suffer independent rather than back-to-back correlated losses, "
            "at a tiny fraction of the duplicate packets."
        ),
        base_params={"num_samples": 50_000},
        grid=ParameterGrid(
            {"rtt": [0.05, 0.2], "policy": ["none", "k2", "hedge:200ms", "hedge:1s"]}
        ),
    )
)

register_scenario(
    Scenario(
        name="standard-queueing-hedge-grid",
        entry_point="queueing",
        description=(
            "Hedge-delay grid on the Section 2.1 queueing model (mean service "
            "time = 1 s): a dense fixed-delay ladder between 'none' and eager "
            "'k2', chartable as one frontier line with "
            "scripts/plot_ablation.py --group-hedges."
        ),
        base_params={"distribution": "exponential", "num_requests": 20_000},
        grid=ParameterGrid(
            {
                "load": [0.2, 0.4],
                "policy": [
                    "none", "k2", "hedge:100ms", "hedge:250ms",
                    "hedge:500ms", "hedge:1s", "hedge:2s",
                ],
            }
        ),
    )
)

register_scenario(
    Scenario(
        name="standard-db-hedge-grid",
        entry_point="database",
        description=(
            "Hedge-delay grid on the Section 2.2 disk-backed database (base "
            "configuration): the fixed-delay ladder filling in the frontier "
            "between 'none' and eager 'k2'."
        ),
        base_params={
            "variant": "base",
            "num_files": 20_000,
            "num_requests": 10_000,
            "ccdf_thresholds_ms": [5, 10, 20, 50, 100, 200],
        },
        grid=ParameterGrid(
            {
                "load": [0.2, 0.4],
                "policy": [
                    "none", "k2", "hedge:5ms", "hedge:10ms",
                    "hedge:20ms", "hedge:50ms", "hedge:100ms",
                ],
            }
        ),
    )
)

# --------------------------------------------------------------------------- #
# Built-in catalogue — elasticity under churn (beyond the paper)
#
# The paper measures redundancy at fixed membership.  These scenarios replay
# a membership event (a server joining, or crashing) mid-run: re-homed keys,
# migration traffic competing with foreground requests, and cold caches on
# the new owners produce a latency spike whose height and duration the
# adapters export as scalars (p99_before / p99_spike / p99_after /
# spike_ratio / spike_duration_s).  The question is whether the redundancy
# policies mask the spike — chart with scripts/plot_ablation.py --spike.
# --------------------------------------------------------------------------- #

register_scenario(
    Scenario(
        name="standard-db-rebalance",
        entry_point="database",
        description=(
            "Elasticity on the Section 2.2 disk-backed database: a fifth "
            "server joins 40% into the run, so keys re-home, migration reads "
            "compete in the disk FIFOs, and the joiner starts cold — "
            "migration-rate x policy grid of the resulting p99 spike."
        ),
        base_params={
            "variant": "base",
            "num_files": 20_000,
            "num_requests": 4_000,
            "load": 0.3,
            "churn": "add:4@0.4",
        },
        grid=ParameterGrid(
            {
                "migration_rate": [25.0, 50.0],
                "policy": ["none", "k2", "hedge:p95"],
            }
        ),
    )
)

register_scenario(
    Scenario(
        name="standard-memcached-failover",
        entry_point="memcached",
        description=(
            "Failover on the Section 2.3 memcached cluster: one of four "
            "servers crashes 40% into the run, its keys fail over to ring "
            "successors whose caches are cold (fetch-through penalty) while "
            "migration SETs re-fill them — migration-rate x policy grid of "
            "the resulting p99 spike."
        ),
        base_params={
            "num_requests": 8_000,
            "num_keys": 20_000,
            "cold_penalty_s": 0.002,
            "load": 0.15,
            "churn": "crash:1@0.4",
        },
        grid=ParameterGrid(
            {
                "migration_rate": [500.0, 2000.0],
                "policy": ["none", "k2", "hedge:p95"],
            }
        ),
    )
)

# --------------------------------------------------------------------------- #
# Built-in catalogue — job pipelines (beyond the paper; repro.pipeline)
#
# The paper's per-request frontier, re-run at per-chunk granularity: job
# completion time is a fan-in max over chunks, so stragglers compound and
# redundancy buys tail latency at a measurable wasted-work cost.
# --------------------------------------------------------------------------- #

register_scenario(
    Scenario(
        name="standard-pipeline-stragglers",
        entry_point="pipeline",
        description=(
            "Straggler mitigation in single-stage fan-out/fan-in jobs: policy "
            "x chunk-count x machine-tail-index sweep of job completion time "
            "vs wasted work (chart with scripts/plot_ablation.py --pareto "
            "wasted_work_fraction)."
        ),
        base_params={"num_jobs": 150, "num_workers": 16, "num_stages": 1},
        grid=ParameterGrid(
            {
                "policy": [
                    "none", "k2", "k3", "hedge:150ms", "hedge:400ms", "hedge:p95",
                ],
                "num_chunks": [16, 64],
                "straggler_alpha": [1.2, 2.0],
            }
        ),
    )
)

register_scenario(
    Scenario(
        name="standard-pipeline-dag",
        entry_point="pipeline",
        description=(
            "Multi-stage DAG (map -> shuffle -> reduce, shrinking chunk "
            "counts) with seeded worker crash/restart cycles: how failures "
            "shift the completion-time-vs-waste frontier."
        ),
        base_params={
            "num_jobs": 120,
            "num_workers": 12,
            "num_chunks": 24,
            "num_stages": 3,
            "output_ratio": 0.5,
            "restart_s": 0.5,
        },
        grid=ParameterGrid(
            {
                "policy": ["none", "k2", "hedge:p95"],
                "fail_prob": [0.0, 0.04],
            }
        ),
    )
)

register_scenario(
    Scenario(
        name="paper-dns-hedged",
        entry_point="dns",
        tier="paper",
        description=(
            "Figures 15-17 extended: hedged DNS querying over the full "
            "15-vantage x 10-server matrix — how much of the eager tail "
            "benefit survives at a fraction of the extra queries."
        ),
        base_params={
            "num_vantage_points": 15,
            "num_servers": 10,
            "stage1_queries": 300,
            "stage2_queries": 2_000,
        },
        grid=ParameterGrid({"policy": ["none", "k2", "k3", "hedge:50ms", "hedge:p95"]}),
    )
)

# --------------------------------------------------------------------------- #
# Built-in catalogue — paper tier (see EXPERIMENTS.md)
# --------------------------------------------------------------------------- #

register_scenario(
    Scenario(
        name="paper-fattree-k6",
        entry_point="fattree",
        tier="paper",
        description=(
            "Figure 14 at paper scale: k=6 (54-host) fat-tree, 5 Gbps links, "
            "replicate-first-8-packets vs baseline across loads."
        ),
        base_params={
            "k": 6,
            "num_flows": 2_000,
            "first_packets": 8,
            "link_rate_gbps": 5.0,
            "per_hop_delay_us": 2.0,
        },
        grid=ParameterGrid({"load": [0.2, 0.4, 0.6], "replication": [False, True]}),
    )
)

register_scenario(
    Scenario(
        name="paper-fattree-k6-flow",
        entry_point="fattree",
        tier="paper",
        description=(
            "paper-fattree-k6 at flow-level fidelity: identical workload and "
            "grid, FCTs from the link-share model (~50x faster, approximate "
            "at high load — see the delta table in EXPERIMENTS.md)."
        ),
        base_params={
            "k": 6,
            "num_flows": 2_000,
            "first_packets": 8,
            "link_rate_gbps": 5.0,
            "per_hop_delay_us": 2.0,
            "fidelity": "flow",
        },
        grid=ParameterGrid({"load": [0.2, 0.4, 0.6], "replication": [False, True]}),
    )
)

register_scenario(
    Scenario(
        name="paper-dns-matrix",
        entry_point="dns",
        tier="paper",
        description=(
            "Figures 15-17 at paper scale: the full 15-vantage x 10-server DNS "
            "matrix, querying the best k=1..10 servers in parallel."
        ),
        base_params={
            "num_vantage_points": 15,
            "num_servers": 10,
            "stage1_queries": 300,
            "stage2_queries": 2_000,
        },
        grid=ParameterGrid({"copies": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]}),
    )
)

register_scenario(
    Scenario(
        name="paper-database-ec2",
        entry_point="database",
        tier="paper",
        description=(
            "Figure 9 at paper scale: EC2-trace (noisy-neighbour) database "
            "sweep over a dense load grid."
        ),
        base_params={
            "variant": "ec2",
            "num_files": 30_000,
            "num_requests": 40_000,
            "ccdf_thresholds_ms": [5, 10, 20, 50, 100, 200],
        },
        grid=ParameterGrid(
            {
                "load": [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45],
                "copies": [1, 2],
            }
        ),
    )
)
