"""Sharding one sweep across machines, and merging the shards back.

A paper-tier grid is embarrassingly parallel across *points*, so the natural
fleet unit is a **shard**: a deterministic subset of the grid that one machine
executes end-to-end with the ordinary streaming runner.  The partition is a
pure function of each point's substream-derived seed (:func:`shard_of`), so

* every machine computes the same partition from the scenario alone — no
  coordinator, no work queue, no state to share beyond the scenario name and
  any ``--set`` overrides (which must match across shards, enforced at merge
  time through the artifact header);
* a shard artifact is an ordinary streaming artifact (same schema, same
  canonical bytes per record, global grid indices) whose header carries a
  ``shard`` stanza — each shard resumes independently with ``--resume``;
* :func:`merge_artifacts` recombines any set of shard artifacts covering the
  grid — any shard count, any argument order, overlaps deduplicated — into a
  file **byte-identical** to the single-machine ``--workers 1`` run.  The CI
  shard smoke pins this with ``cmp``.

Merging is a union of point records keyed by seed, with three safety nets:
header identity (same scenario/seed/params/axes on every input), conflict
detection (two byte-different records for one seed is a hard error — the
shards were not run from the same code or configuration), and a completeness
check that names the missing grid indices.  Truncated shard tails (a machine
killed mid-write) are tolerated exactly like ``--resume`` tolerates them: the
in-flight final line is discarded and the point simply counts as missing.

Wall-clock timing never enters these artifacts — it lives in the
:mod:`repro.experiments.timing` sidecar — so merged bytes stay a pure
function of the scenario.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments.artifact import (
    canonical_json,
    canonicalize,
    load_partial,
    point_record,
)
from repro.experiments.timing import sidecar_label

#: Header fields that identify a sweep; every merged input must agree on all
#: of them (the ``shard`` stanza is the one header field allowed to differ).
IDENTITY_FIELDS = (
    "schema",
    "scenario",
    "entry_point",
    "description",
    "seed",
    "base_params",
    "axes",
    "num_points",
)

_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")


def parse_shard(text: str) -> Optional[Tuple[int, int]]:
    """Parse a CLI shard spec ``"I/N"`` into ``(index, count)``, 1-based.

    ``"1/1"`` normalises to ``None`` (an unsharded run): a single-shard
    partition *is* the whole grid, and collapsing it keeps the artifact
    header — and therefore the artifact bytes — identical to a run that never
    mentioned sharding.

    Raises:
        ConfigurationError: If the spec is malformed or ``I`` is outside
            ``1..N``.
    """
    match = _SHARD_RE.match(text.strip())
    if not match:
        raise ConfigurationError(
            f"shard spec must look like I/N (e.g. 2/3), got {text!r}"
        )
    index, count = int(match.group(1)), int(match.group(2))
    return normalize_shard((index, count))


def normalize_shard(shard: Optional[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
    """Validate a ``(index, count)`` pair; ``(1, 1)`` and ``None`` mean unsharded."""
    if shard is None:
        return None
    index, count = int(shard[0]), int(shard[1])
    if count < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {count}")
    if not 1 <= index <= count:
        raise ConfigurationError(
            f"shard index must be in 1..{count}, got {index} (shards are 1-based)"
        )
    if count == 1:
        return None
    return index, count


def shard_of(point_seed: int, count: int) -> int:
    """The 1-based shard owning a point, as a pure function of its seed.

    The derived point seed is already a deterministic hash of the scenario
    seed, name and point parameters, so ``seed % count`` partitions the grid
    evenly-in-expectation with no extra state.  Every machine evaluates the
    same assignment independently; no two shards ever share a point.
    """
    return int(point_seed) % int(count) + 1


def shard_stanza(shard: Tuple[int, int], num_shard_points: int) -> Dict[str, Any]:
    """The header ``shard`` stanza of one shard artifact."""
    return {
        "index": int(shard[0]),
        "count": int(shard[1]),
        "num_points": int(num_shard_points),
    }


def _strip_shard(header: Dict[str, Any]) -> Dict[str, Any]:
    return {key: value for key, value in header.items() if key != "shard"}


def _input_label(header: Dict[str, Any], path: str) -> str:
    """A merge input's display name: its path plus its ``shard I/N`` stanza.

    Merge errors name the offending inputs; on a fleet the shard identity is
    what the operator greps for (the path is often a scratch filename), so
    sharded inputs are labelled ``'path' (shard I/N)``.
    """
    if header.get("shard"):
        return f"{path!r} ({sidecar_label(header, path)})"
    return repr(path)


def merge_artifacts(out: str, shard_paths: Sequence[str]) -> Dict[str, Any]:
    """Merge shard artifacts into one complete streaming artifact at ``out``.

    The output is byte-identical to the artifact a single-machine run of the
    same scenario would have written: the merged header is the shard headers
    minus their ``shard`` stanza, and the point records — already canonical
    JSON keyed by globally-derived seeds and grid indices — are re-sorted
    into grid order.  Any number of inputs in any order works; inputs may
    overlap (identical duplicate records are deduplicated) and may themselves
    be unsharded artifacts (merging one complete artifact is an exact
    rewrite).  Truncated final lines — shards killed mid-write — are
    discarded exactly as ``--resume`` would discard them.

    Args:
        out: Path of the merged ``.jsonl`` artifact to write.
        shard_paths: Paths of the shard artifacts to combine.

    Returns:
        A summary dict: ``inputs``, ``points``, ``duplicates`` (identical
        records seen more than once) and ``scenario``.

    Raises:
        ConfigurationError: If no inputs are given, an input is missing or
            headerless, the inputs disagree on any sweep-identity header
            field, two inputs hold *conflicting* records for the same point,
            or the union does not cover the whole grid (the error names the
            missing grid indices).
    """
    if not shard_paths:
        raise ConfigurationError("merge needs at least one shard artifact")
    reference_header: Optional[Dict[str, Any]] = None
    reference_label = ""
    by_seed: Dict[int, Tuple[Dict[str, Any], str]] = {}
    by_index: Dict[int, int] = {}
    input_labels = []
    duplicates = 0
    for path in shard_paths:
        header, points = load_partial(path)
        if header is None:
            raise ConfigurationError(
                f"cannot merge {path!r}: the file is missing or empty (it has "
                f"no header record, so it was never started as a sweep artifact)"
            )
        label = _input_label(header, path)
        input_labels.append(label)
        if reference_header is None:
            reference_header, reference_label = header, label
        else:
            for name in IDENTITY_FIELDS:
                have = canonicalize(header.get(name))
                want = canonicalize(reference_header.get(name))
                if have != want:
                    raise ConfigurationError(
                        f"cannot merge {label} with {reference_label}: "
                        f"header field {name}={have!r} does not match "
                        f"{name}={want!r} — shards of one sweep must be run "
                        f"with the same scenario, seed and --set overrides"
                    )
        for seed, record in points.items():
            existing = by_seed.get(seed)
            if existing is not None:
                if canonicalize(existing[0]) != canonicalize(record):
                    raise ConfigurationError(
                        f"conflicting records for point seed {seed} "
                        f"(params={record.get('params')!r}) between "
                        f"{existing[1]} and {label}: the same point must "
                        f"produce identical results on every machine — were "
                        f"these shards run from different code versions?"
                    )
                duplicates += 1
                continue
            index = int(record["index"])
            claimed = by_index.get(index)
            if claimed is not None and claimed != seed:
                raise ConfigurationError(
                    f"conflicting records for grid index {index}: seeds "
                    f"{claimed} and {seed} both claim it (latest from "
                    f"{label}) — these artifacts are not shards of one sweep"
                )
            by_seed[seed] = (record, label)
            by_index[index] = seed
    assert reference_header is not None
    num_points = int(reference_header["num_points"])
    missing = sorted(set(range(num_points)) - set(by_index))
    if missing:
        shown = ", ".join(str(i) for i in missing[:20])
        more = f", ... ({len(missing) - 20} more)" if len(missing) > 20 else ""
        raise ConfigurationError(
            f"merge of {len(input_labels)} artifact(s) "
            f"({', '.join(input_labels)}) covers only "
            f"{len(by_index)} of {num_points} grid points; missing grid "
            f"index(es): {shown}{more} — a shard is absent from the merge, or "
            f"was killed mid-run (finish it with --resume and re-merge)"
        )
    # load_partial returns the header verbatim (kind/schema included); only
    # the shard stanza distinguishes it from the single-run header.
    merged_header = _strip_shard(reference_header)
    ordered = [by_seed[by_index[index]][0] for index in range(num_points)]
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(merged_header))
        for record in ordered:
            handle.write(canonical_json(point_record(record)))
    return {
        "inputs": len(list(shard_paths)),
        "points": num_points,
        "duplicates": duplicates,
        "scenario": reference_header.get("scenario"),
    }
