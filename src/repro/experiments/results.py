"""Sweep result artifacts: JSON/JSONL/CSV serialisation, tables, and diffs.

A :class:`SweepResult` is the collected output of one scenario sweep — one
:class:`PointResult` per grid point, in grid order.  It is the shared artifact
format of the repository: benchmarks and examples print it through
:class:`repro.analysis.tables.ResultTable`, the CLI writes it to JSON (whole
artifact at the end), JSONL (streamed point-by-point, resumable — see
:mod:`repro.experiments.artifact`) or CSV, and later analysis reloads it with
:func:`load_sweep_artifact` / :meth:`SweepResult.from_json` /
:meth:`SweepResult.from_jsonl`.

Two artifacts of the same scenario compare through :meth:`SweepResult.diff`,
which pairs points by their parameters and renders "paper vs measured"
columns via :func:`repro.analysis.tables.diff_table` — the workflow behind
every paper-vs-measured table in ``EXPERIMENTS.md``.

Serialisation is deliberately canonical (points in grid order, keys sorted,
no wall-clock timestamps) so that two sweeps of the same scenario produce
byte-identical JSON/JSONL regardless of worker count, chunk size, resume
history — or how the grid was sharded across machines: a merged shard set
(:mod:`repro.experiments.sharding`) reloads here exactly like the
single-machine artifact it is byte-identical to.  Wall-clock timing lives in
the ``.timing.jsonl`` sidecar (:mod:`repro.experiments.timing`), never in
these artifacts — the determinism contract the tests pin down.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import ResultTable, diff_table
from repro.exceptions import ConfigurationError
from repro.experiments.artifact import (
    canonical_json,
    canonicalize,
    load_partial,
    sweep_result_records,
)

#: Version tag of the JSON artifact layout.
SCHEMA = "repro.experiments.sweep/1"

#: Point executed successfully.
STATUS_OK = "ok"
#: Point rejected by the substrate as having no steady state (CapacityError).
STATUS_INFEASIBLE = "infeasible"


@dataclass(frozen=True)
class PointResult:
    """Outcome of one sweep point.

    Attributes:
        index: Position of the point in grid order.
        params: Full parameter dict of the point (base params + grid values).
        seed: Derived RNG seed the point ran with.
        status: ``"ok"`` or ``"infeasible"``.
        error: Message for infeasible points (``None`` when ok).
        summary: Latency-summary row of the point (``None`` when absent).
        metrics: Metrics-registry snapshot of the point.
        scalars: Substrate-specific derived scalars.
    """

    index: int
    params: Dict[str, Any]
    seed: int
    status: str = STATUS_OK
    error: Optional[str] = None
    summary: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    scalars: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the point executed successfully."""
        return self.status == STATUS_OK

    def value(self, name: str) -> Any:
        """Look up ``name`` among params, scalars, then the summary row."""
        for source in (self.params, self.scalars, self.summary or {}):
            if name in source:
                return source[name]
        raise ConfigurationError(
            f"point {self.index} has no value {name!r}; params={sorted(self.params)}, "
            f"scalars={sorted(self.scalars)}, summary={sorted(self.summary or {})}"
        )


@dataclass(frozen=True)
class SweepResult:
    """The collected, ordered results of one scenario sweep."""

    scenario: str
    entry_point: str
    description: str
    seed: int
    base_params: Dict[str, Any]
    axes: Dict[str, List[Any]]
    points: List[PointResult]

    # ------------------------------- access ---------------------------- #

    def ok_points(self) -> List[PointResult]:
        """The points that executed successfully, in grid order."""
        return [p for p in self.points if p.ok]

    def select(self, **filters: Any) -> List[PointResult]:
        """Ok points whose params match every ``name=value`` filter."""
        return [
            p
            for p in self.ok_points()
            if all(p.params.get(name) == value for name, value in filters.items())
        ]

    def column(self, name: str, **filters: Any) -> List[Any]:
        """The ``name`` value of every matching ok point, in grid order."""
        return [p.value(name) for p in self.select(**filters)]

    # ------------------------------- tables ---------------------------- #

    def to_table(
        self, columns: Sequence[str], title: Optional[str] = None, **filters: Any
    ) -> ResultTable:
        """Render selected per-point values as a :class:`ResultTable`.

        Each column is looked up per point via :meth:`PointResult.value`
        (params first, then scalars, then the summary row).
        """
        table = ResultTable(list(columns), title=title)
        for point in self.select(**filters):
            table.add_row(**{name: point.value(name) for name in columns})
        return table

    # ---------------------------- serialisation ------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """The full artifact as plain JSON-serialisable data."""
        return {
            "schema": SCHEMA,
            "scenario": self.scenario,
            "entry_point": self.entry_point,
            "description": self.description,
            "seed": self.seed,
            "base_params": self.base_params,
            "axes": self.axes,
            "points": [asdict(point) for point in self.points],
        }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialise to canonical JSON (sorted keys), optionally writing ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepResult":
        """Rebuild a :class:`SweepResult` from :meth:`to_dict` data."""
        if data.get("schema") != SCHEMA:
            raise ConfigurationError(
                f"unsupported sweep artifact schema {data.get('schema')!r}; "
                f"expected {SCHEMA!r}"
            )
        points = [PointResult(**point) for point in data["points"]]
        return cls(
            scenario=data["scenario"],
            entry_point=data["entry_point"],
            description=data.get("description", ""),
            seed=int(data["seed"]),
            base_params=dict(data.get("base_params", {})),
            axes={name: list(values) for name, values in data.get("axes", {}).items()},
            points=points,
        )

    @classmethod
    def from_json(cls, source: str) -> "SweepResult":
        """Load from a JSON string or a path to a JSON file."""
        text = source
        if "\n" not in source and source.endswith(".json"):
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
        return cls.from_dict(json.loads(text))

    def to_jsonl(self, path: Optional[str] = None) -> str:
        """Serialise to the streaming JSONL artifact layout.

        One header line plus one canonical-JSON line per point, in grid order
        — exactly the bytes :class:`~repro.experiments.runner.SweepRunner`
        streams when given an output path, so converting a finished sweep and
        streaming it produce identical files.
        """
        header, records = sweep_result_records(self)
        text = canonical_json(header) + "".join(canonical_json(r) for r in records)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_jsonl(cls, path: str) -> "SweepResult":
        """Load a *complete* streaming (JSONL) artifact.

        A **merged** artifact (``python -m repro.experiments merge``) is
        byte-identical to a single-machine run's and loads here like any
        other; an individual *shard* artifact holds only its own points and
        is rejected with a pointer at ``merge``.

        Raises:
            ConfigurationError: If the artifact has no header, is a shard of
                a sharded run (merge the shards first), or is missing points
                (an interrupted run — finish it with ``--resume`` before
                analysing it).
        """
        header, points = load_partial(path)
        if header is None:
            raise ConfigurationError(
                f"artifact {path!r} is empty or has no header record"
            )
        stanza = header.get("shard")
        if stanza:
            raise ConfigurationError(
                f"artifact {path!r} is shard {stanza.get('index')}/"
                f"{stanza.get('count')} of scenario {header.get('scenario')!r} "
                f"and holds only its own {stanza.get('num_points')} of "
                f"{header.get('num_points')} points; recombine the shards "
                f"first: python -m repro.experiments merge merged.jsonl "
                f"<shard artifacts...>"
            )
        missing = int(header["num_points"]) - len(points)
        if missing > 0:
            raise ConfigurationError(
                f"artifact {path!r} is incomplete: {missing} of "
                f"{header['num_points']} points missing — the run was "
                f"interrupted; rerun with --resume to finish it"
            )
        ordered = sorted(points.values(), key=lambda record: int(record["index"]))
        if missing < 0 or [int(r["index"]) for r in ordered] != list(
            range(int(header["num_points"]))
        ):
            raise ConfigurationError(
                f"artifact {path!r} holds {len(points)} point records whose "
                f"indices do not match the header's num_points="
                f"{header['num_points']}; it looks like concatenated or "
                f"hand-edited artifacts — regenerate it with a single run"
            )
        return cls(
            scenario=header["scenario"],
            entry_point=header["entry_point"],
            description=header.get("description", ""),
            seed=int(header["seed"]),
            base_params=dict(header.get("base_params", {})),
            axes={name: list(values) for name, values in header.get("axes", {}).items()},
            points=[PointResult(**record) for record in ordered],
        )

    # ------------------------------- diffing ---------------------------- #

    def diff(
        self,
        other: "SweepResult",
        labels: Tuple[str, str] = ("a", "b"),
    ) -> "SweepDiff":
        """Pair this sweep's points with ``other``'s by their parameters.

        The pairing key is each point's full parameter dict (canonicalised, so
        a tuple-vs-list difference introduced by JSON round-tripping does not
        matter) — *not* the seed, so a golden "paper" artifact diffs cleanly
        against a fresh run made with a different ``--seed``.  Points present
        on only one side (e.g. a grid that gained an axis value) are collected
        rather than raising; render the comparison with
        :meth:`SweepDiff.to_table`.
        """
        mine = {_param_key(p.params): p for p in self.points}
        theirs = {_param_key(p.params): p for p in other.points}
        pairs = [(mine[key], theirs[key]) for key in mine if key in theirs]
        pairs.sort(key=lambda pair: pair[0].index)
        return SweepDiff(
            base=self,
            other=other,
            labels=(str(labels[0]), str(labels[1])),
            pairs=pairs,
            only_base=[p for key, p in mine.items() if key not in theirs],
            only_other=[p for key, p in theirs.items() if key not in mine],
        )

    def to_csv(self, path: Optional[str] = None) -> str:
        """Flatten the sweep to CSV: one row per point, params + results as columns.

        Nested values (lists in params) are rendered with ``repr``; columns are
        the union over points, params first, then scalars, then summary fields
        (prefixed ``summary_``), then status.
        """
        param_cols: List[str] = []
        scalar_cols: List[str] = []
        summary_cols: List[str] = []
        for point in self.points:
            for name in point.params:
                if name not in param_cols:
                    param_cols.append(name)
            for name in point.scalars:
                if name not in scalar_cols:
                    scalar_cols.append(name)
            for name in point.summary or {}:
                if name not in summary_cols:
                    summary_cols.append(name)
        header = (
            ["index", "seed", "status"]
            + param_cols
            + scalar_cols
            + [f"summary_{name}" for name in summary_cols]
        )
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(header)
        for point in self.points:
            row: List[Any] = [point.index, point.seed, point.status]
            for name in param_cols:
                value = point.params.get(name, "")
                row.append(repr(value) if isinstance(value, (list, tuple, dict)) else value)
            for name in scalar_cols:
                row.append(point.scalars.get(name, ""))
            summary = point.summary or {}
            for name in summary_cols:
                row.append(summary.get(name, ""))
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text


def _param_key(params: Dict[str, Any]) -> str:
    """The canonical pairing key of one point's parameter dict."""
    return json.dumps(canonicalize(params), sort_keys=True)


@dataclass(frozen=True)
class SweepDiff:
    """Two sweeps of the same grid, paired point-by-point for comparison.

    Attributes:
        base: The reference sweep (typically the golden / "paper" artifact).
        other: The sweep compared against it (the fresh / "measured" run).
        labels: Column labels of the two sides, e.g. ``("paper", "measured")``.
        pairs: Matched ``(base_point, other_point)`` pairs, in ``base`` grid
            order.
        only_base: Points whose parameters appear only in ``base``.
        only_other: Points whose parameters appear only in ``other``.
    """

    base: SweepResult
    other: SweepResult
    labels: Tuple[str, str]
    pairs: List[Tuple[PointResult, PointResult]]
    only_base: List[PointResult]
    only_other: List[PointResult]

    DEFAULT_COLUMNS = ("mean", "p99")

    def _value(self, point: PointResult, name: str) -> Any:
        try:
            return point.value(name)
        except ConfigurationError:
            return None

    def relative_deltas(
        self, columns: Optional[Sequence[str]] = None
    ) -> List[Tuple[Dict[str, Any], str, float, float, float]]:
        """Per-pair, per-column absolute relative deltas, in percent.

        Each entry is ``(params, column, base_value, other_value, pct)`` where
        ``pct`` is ``100 * |other - base| / |base|``.  Pairs where either side
        is missing or non-numeric are skipped; a value measured as exactly
        zero on the base side yields ``0.0`` when the other side agrees and
        ``inf`` otherwise (a from-zero regression has no finite percentage).

        This is the quantity ``--fail-threshold`` gates on: CI can fail on
        regressions in the *measured numbers*, not just on the rendered table.
        """
        value_columns = list(columns) if columns else list(self.DEFAULT_COLUMNS)
        deltas: List[Tuple[Dict[str, Any], str, float, float, float]] = []
        for base_point, other_point in self.pairs:
            for name in value_columns:
                base_value = self._value(base_point, name)
                other_value = self._value(other_point, name)
                if any(
                    not isinstance(v, (int, float)) or isinstance(v, bool)
                    for v in (base_value, other_value)
                ):
                    continue
                if base_value == 0:
                    pct = 0.0 if other_value == 0 else float("inf")
                else:
                    pct = 100.0 * abs(other_value - base_value) / abs(base_value)
                deltas.append(
                    (dict(base_point.params), name, float(base_value), float(other_value), pct)
                )
        return deltas

    def max_relative_delta(self, columns: Optional[Sequence[str]] = None) -> float:
        """The largest :meth:`relative_deltas` percentage (``0.0`` if none compare)."""
        return max((pct for *_rest, pct in self.relative_deltas(columns)), default=0.0)

    def to_table(
        self,
        columns: Optional[Sequence[str]] = None,
        key_columns: Optional[Sequence[str]] = None,
        title: Optional[str] = None,
    ) -> ResultTable:
        """Render the paired points as a "paper vs measured" table.

        Args:
            columns: Value columns to compare (each resolved per point via
                :meth:`PointResult.value`; unresolvable values render ``-``).
                Defaults to ``("mean", "p99")``.
            key_columns: Identifying columns (defaults to the base sweep's
                grid axes).
            title: Table title (defaults to naming both scenarios).

        Raises:
            ConfigurationError: If no points matched at all — that means the
                two artifacts share no grid point, which is a comparison
                mistake rather than an interesting diff.
        """
        if not self.pairs:
            raise ConfigurationError(
                f"no matching points between {self.base.scenario!r} and "
                f"{self.other.scenario!r}; are these artifacts of the same grid?"
            )
        value_columns = list(columns) if columns else list(self.DEFAULT_COLUMNS)
        keys = list(key_columns) if key_columns else list(self.base.axes)
        if title is None:
            title = (
                f"{self.base.scenario} [{self.labels[0]}] vs "
                f"{self.other.scenario} [{self.labels[1]}] "
                f"({len(self.pairs)} matched points)"
            )
        rows = []
        for base_point, other_point in self.pairs:
            key_values = {name: base_point.params.get(name) for name in keys}
            a_values = {name: self._value(base_point, name) for name in value_columns}
            b_values = {name: self._value(other_point, name) for name in value_columns}
            rows.append((key_values, a_values, b_values))
        return diff_table(title, keys, rows, value_columns, labels=self.labels)


def load_sweep_artifact(path: str) -> SweepResult:
    """Load a sweep artifact, dispatching on its extension.

    ``.jsonl`` loads the streaming layout (:meth:`SweepResult.from_jsonl`);
    anything else is treated as the canonical whole-file JSON layout.  This is
    what the CLI's ``diff`` subcommand uses, so golden ``.json`` artifacts and
    streamed ``.jsonl`` runs compare interchangeably.
    """
    if path.endswith(".jsonl"):
        return SweepResult.from_jsonl(path)
    with open(path, "r", encoding="utf-8") as handle:
        return SweepResult.from_dict(json.load(handle))
