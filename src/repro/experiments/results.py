"""Sweep result artifacts: JSON/CSV serialisation and table views.

A :class:`SweepResult` is the collected output of one scenario sweep — one
:class:`PointResult` per grid point, in grid order.  It is the shared artifact
format of the repository: benchmarks and examples print it through
:class:`repro.analysis.tables.ResultTable`, the CLI writes it to JSON/CSV, and
later analysis reloads it with :meth:`SweepResult.from_json`.

Serialisation is deliberately canonical (points in grid order, keys sorted,
no wall-clock timestamps) so that two sweeps of the same scenario produce
byte-identical JSON regardless of worker count — the determinism contract the
tests pin down.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import ResultTable
from repro.exceptions import ConfigurationError

#: Version tag of the JSON artifact layout.
SCHEMA = "repro.experiments.sweep/1"

#: Point executed successfully.
STATUS_OK = "ok"
#: Point rejected by the substrate as having no steady state (CapacityError).
STATUS_INFEASIBLE = "infeasible"


@dataclass(frozen=True)
class PointResult:
    """Outcome of one sweep point.

    Attributes:
        index: Position of the point in grid order.
        params: Full parameter dict of the point (base params + grid values).
        seed: Derived RNG seed the point ran with.
        status: ``"ok"`` or ``"infeasible"``.
        error: Message for infeasible points (``None`` when ok).
        summary: Latency-summary row of the point (``None`` when absent).
        metrics: Metrics-registry snapshot of the point.
        scalars: Substrate-specific derived scalars.
    """

    index: int
    params: Dict[str, Any]
    seed: int
    status: str = STATUS_OK
    error: Optional[str] = None
    summary: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    scalars: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the point executed successfully."""
        return self.status == STATUS_OK

    def value(self, name: str) -> Any:
        """Look up ``name`` among params, scalars, then the summary row."""
        for source in (self.params, self.scalars, self.summary or {}):
            if name in source:
                return source[name]
        raise ConfigurationError(
            f"point {self.index} has no value {name!r}; params={sorted(self.params)}, "
            f"scalars={sorted(self.scalars)}, summary={sorted(self.summary or {})}"
        )


@dataclass(frozen=True)
class SweepResult:
    """The collected, ordered results of one scenario sweep."""

    scenario: str
    entry_point: str
    description: str
    seed: int
    base_params: Dict[str, Any]
    axes: Dict[str, List[Any]]
    points: List[PointResult]

    # ------------------------------- access ---------------------------- #

    def ok_points(self) -> List[PointResult]:
        """The points that executed successfully, in grid order."""
        return [p for p in self.points if p.ok]

    def select(self, **filters: Any) -> List[PointResult]:
        """Ok points whose params match every ``name=value`` filter."""
        return [
            p
            for p in self.ok_points()
            if all(p.params.get(name) == value for name, value in filters.items())
        ]

    def column(self, name: str, **filters: Any) -> List[Any]:
        """The ``name`` value of every matching ok point, in grid order."""
        return [p.value(name) for p in self.select(**filters)]

    # ------------------------------- tables ---------------------------- #

    def to_table(
        self, columns: Sequence[str], title: Optional[str] = None, **filters: Any
    ) -> ResultTable:
        """Render selected per-point values as a :class:`ResultTable`.

        Each column is looked up per point via :meth:`PointResult.value`
        (params first, then scalars, then the summary row).
        """
        table = ResultTable(list(columns), title=title)
        for point in self.select(**filters):
            table.add_row(**{name: point.value(name) for name in columns})
        return table

    # ---------------------------- serialisation ------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """The full artifact as plain JSON-serialisable data."""
        return {
            "schema": SCHEMA,
            "scenario": self.scenario,
            "entry_point": self.entry_point,
            "description": self.description,
            "seed": self.seed,
            "base_params": self.base_params,
            "axes": self.axes,
            "points": [asdict(point) for point in self.points],
        }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialise to canonical JSON (sorted keys), optionally writing ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepResult":
        """Rebuild a :class:`SweepResult` from :meth:`to_dict` data."""
        if data.get("schema") != SCHEMA:
            raise ConfigurationError(
                f"unsupported sweep artifact schema {data.get('schema')!r}; "
                f"expected {SCHEMA!r}"
            )
        points = [PointResult(**point) for point in data["points"]]
        return cls(
            scenario=data["scenario"],
            entry_point=data["entry_point"],
            description=data.get("description", ""),
            seed=int(data["seed"]),
            base_params=dict(data.get("base_params", {})),
            axes={name: list(values) for name, values in data.get("axes", {}).items()},
            points=points,
        )

    @classmethod
    def from_json(cls, source: str) -> "SweepResult":
        """Load from a JSON string or a path to a JSON file."""
        text = source
        if "\n" not in source and source.endswith(".json"):
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
        return cls.from_dict(json.loads(text))

    def to_csv(self, path: Optional[str] = None) -> str:
        """Flatten the sweep to CSV: one row per point, params + results as columns.

        Nested values (lists in params) are rendered with ``repr``; columns are
        the union over points, params first, then scalars, then summary fields
        (prefixed ``summary_``), then status.
        """
        param_cols: List[str] = []
        scalar_cols: List[str] = []
        summary_cols: List[str] = []
        for point in self.points:
            for name in point.params:
                if name not in param_cols:
                    param_cols.append(name)
            for name in point.scalars:
                if name not in scalar_cols:
                    scalar_cols.append(name)
            for name in point.summary or {}:
                if name not in summary_cols:
                    summary_cols.append(name)
        header = (
            ["index", "seed", "status"]
            + param_cols
            + scalar_cols
            + [f"summary_{name}" for name in summary_cols]
        )
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(header)
        for point in self.points:
            row: List[Any] = [point.index, point.seed, point.status]
            for name in param_cols:
                value = point.params.get(name, "")
                row.append(repr(value) if isinstance(value, (list, tuple, dict)) else value)
            for name in scalar_cols:
                row.append(point.scalars.get(name, ""))
            summary = point.summary or {}
            for name in summary_cols:
                row.append(summary.get(name, ""))
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text
