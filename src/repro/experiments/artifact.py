"""Streaming JSONL sweep artifacts: append-as-you-go, resume-from-partial.

The canonical JSON artifact (:meth:`~repro.experiments.results.SweepResult.to_json`)
is written once, at the end of a sweep.  That is the wrong shape for
paper-scale grids: a run killed at point 180 of 200 leaves nothing behind, and
a grid too large for one ``ProcessPoolExecutor.map`` call has nowhere to put
completed points while the rest execute.  This module provides the streaming
counterpart the :class:`~repro.experiments.runner.SweepRunner` writes through:

* line 1 is a **header record** identifying the sweep (scenario name, entry
  point, seed, base params, axes, point count);
* every following line is one **point record**, appended the moment the point
  (or its chunk) completes, in grid order.

Every line is canonical JSON (sorted keys, compact separators), so the bytes
of a finished artifact are a pure function of the scenario — independent of
worker count, chunk size, or how many times the run was killed and resumed.
:func:`load_partial` reads a possibly-truncated artifact back (a kill mid-write
can leave half a line; the trailing fragment is discarded), returning the
completed points keyed by their derived seed so a resumed run executes only
the missing points.

Two invariants keep the bytes pure even across a fleet of machines:

* a **sharded** run (:mod:`repro.experiments.sharding`) writes the same
  point records with the same global grid indices; only the header's
  ``shard`` stanza marks the file as partial, and ``merge`` removes it to
  reconstruct the single-machine artifact byte-for-byte;
* **wall-clock timing never appears in these files** — it is written to the
  ``.timing.jsonl`` sidecar (:mod:`repro.experiments.timing`) so that two
  runs of one scenario stay ``cmp``-equal no matter how long they took.

See ``EXPERIMENTS.md`` for the CLI workflow.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import IO, Any, Dict, Optional, Tuple

from repro.exceptions import ConfigurationError

#: Version tag of the streaming (JSONL) artifact layout.
JSONL_SCHEMA = "repro.experiments.sweep-stream/1"

#: ``kind`` value of the first line of an artifact.
KIND_HEADER = "header"
#: ``kind`` value of every subsequent line.
KIND_POINT = "point"


def canonical_json(record: Dict[str, Any]) -> str:
    """One artifact line: canonical JSON (sorted keys, compact) + newline.

    Canonical encoding is what makes finished artifacts byte-identical across
    worker counts and resume histories: a record loaded from a partial file
    and re-encoded produces exactly the bytes a fresh execution would have
    written (floats round-trip exactly through ``json``).
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def header_record(
    *,
    scenario: str,
    entry_point: str,
    description: str,
    seed: int,
    base_params: Dict[str, Any],
    axes: Dict[str, Any],
    num_points: int,
    shard: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the header (first-line) record of a streaming artifact.

    ``num_points`` is always the **full grid** size — it identifies the sweep,
    not the file.  A sharded run (``--shard I/N``) additionally carries a
    ``shard`` stanza (``{"index", "count", "num_points"}``, the last being
    the shard's own point count); the stanza is the *only* header difference
    between a shard artifact and the single-machine artifact, which is what
    lets ``merge`` reconstruct the single-machine header byte-for-byte by
    dropping it.
    """
    record = {
        "kind": KIND_HEADER,
        "schema": JSONL_SCHEMA,
        "scenario": scenario,
        "entry_point": entry_point,
        "description": description,
        "seed": seed,
        "base_params": base_params,
        "axes": axes,
        "num_points": num_points,
    }
    if shard is not None:
        record["shard"] = shard
    return record


def point_record(point: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap one executed point (the ``_execute_point`` dict) as a point record."""
    record = dict(point)
    record["kind"] = KIND_POINT
    return record


def canonicalize(value: Any) -> Any:
    """Normalise ``value`` through a JSON round trip (tuples become lists...).

    Used wherever freshly built Python values are compared against values read
    back from an artifact: the two must compare equal whenever their JSON
    encodings are byte-identical.
    """
    return json.loads(json.dumps(value, sort_keys=True))


class ArtifactWriter:
    """Appends header + point records to a JSONL artifact, flushing each line.

    The writer always starts the file from scratch (mode ``"w"``): on resume
    the runner re-emits the cached points it loaded, which costs a rewrite of
    the completed prefix but guarantees the finished file is canonical no
    matter what state the partial file was in (truncated trailing line, stale
    ordering, ...).  Each line is flushed as written so a kill loses at most
    the line in flight.
    """

    def __init__(self, path: str, header: Dict[str, Any]) -> None:
        """Open ``path`` for writing and emit the header line."""
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self._write(header)

    def _write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ConfigurationError(f"artifact writer for {self.path!r} is closed")
        self._handle.write(canonical_json(record))
        self._handle.flush()

    def append_point(self, point: Dict[str, Any]) -> None:
        """Append one completed point record."""
        self._write(point_record(point))

    def close(self) -> None:
        """Flush and close the artifact (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ArtifactWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def iter_complete_records(text: str, path: str) -> "list[Tuple[int, Dict[str, Any]]]":
    """Parse the newline-terminated JSON records of a streamed file.

    Returns ``(line_number, record)`` pairs.  A kill mid-write leaves a
    trailing fragment with no newline; everything before the final newline
    was flushed whole, so only the fragment (the last, non-empty,
    unterminated element) is discarded — the write in flight when the run
    died.  Any *other* malformed line raises: the streamed formats (artifact
    and timing sidecar) never produce one.

    Shared by :func:`load_partial` and the timing-sidecar loader so the
    truncation-tolerance rules cannot drift between the two layouts.
    """
    lines = text.split("\n")
    lines.pop()  # trailing fragment; "" when the file ends in a newline
    records = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append((number, json.loads(line)))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"artifact {path!r} line {number} is not valid JSON ({exc}); "
                f"only the final line of an interrupted artifact may be "
                f"truncated — this file looks corrupted, delete it and rerun"
            ) from None
    return records


def _parse_lines(text: str, path: str) -> Tuple[Optional[Dict[str, Any]], Dict[int, Dict[str, Any]]]:
    header: Optional[Dict[str, Any]] = None
    points: Dict[int, Dict[str, Any]] = {}
    for number, record in iter_complete_records(text, path):
        kind = record.get("kind")
        if number == 1:
            if kind != KIND_HEADER:
                raise ConfigurationError(
                    f"artifact {path!r} does not start with a header record "
                    f"(got kind={kind!r}); is this a sweep-stream JSONL artifact?"
                )
            if record.get("schema") != JSONL_SCHEMA:
                raise ConfigurationError(
                    f"unsupported artifact schema {record.get('schema')!r} in "
                    f"{path!r}; expected {JSONL_SCHEMA!r}"
                )
            header = record
        elif kind == KIND_POINT:
            points[int(record["seed"])] = {k: v for k, v in record.items() if k != "kind"}
        else:
            raise ConfigurationError(
                f"artifact {path!r} line {number} has unexpected kind {kind!r}"
            )
    # Whatever the fragment holds — half a record, or a whole record whose
    # trailing newline never made it to disk — it was the write in flight
    # when the run died, so it is discarded and the point re-executed on
    # resume (which regenerates the identical bytes).
    return header, points


def load_partial(path: str) -> Tuple[Optional[Dict[str, Any]], Dict[int, Dict[str, Any]]]:
    """Load a (possibly interrupted) streaming artifact.

    Returns:
        ``(header, points)`` where ``header`` is the header record (``None``
        when the file is empty or was killed before the header line finished)
        and ``points`` maps each completed point's derived seed to its record.
        A truncated final line — the in-flight write of a killed run — is
        silently discarded; any other malformed line raises.

    Raises:
        ConfigurationError: On a malformed non-final line, an unexpected
            record kind, or an unsupported schema.
    """
    if not os.path.exists(path):
        return None, {}
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if not text:
        return None, {}
    return _parse_lines(text, path)


def validate_header(header: Dict[str, Any], expected: Dict[str, Any], path: str) -> None:
    """Check a loaded header describes the same sweep as ``expected``.

    Compares the identity fields (scenario, entry point, seed, base params,
    axes, point count, shard stanza) after JSON canonicalisation, so a
    tuple-vs-list difference between a live scenario and its serialised form
    does not spuriously fail.  The shard stanza is part of the identity: a
    shard artifact only resumes under the same ``--shard I/N`` spec, and a
    full artifact never resumes as a shard.

    Raises:
        ConfigurationError: Naming the first mismatching field.
    """
    for name in ("scenario", "entry_point", "seed", "base_params", "axes", "num_points", "shard"):
        have, want = canonicalize(header.get(name)), canonicalize(expected.get(name))
        if have != want:
            raise ConfigurationError(
                f"cannot resume from {path!r}: artifact {name}={have!r} does not "
                f"match the requested sweep ({name}={want!r}); rerun without "
                f"--resume (or into a fresh --out) to start over"
            )


def sweep_result_records(result: Any) -> Tuple[Dict[str, Any], list]:
    """Decompose a :class:`~repro.experiments.results.SweepResult` into records.

    Returns the header record and the list of point records, i.e. exactly the
    lines :meth:`SweepResult.to_jsonl` writes and the runner streams.
    """
    header = header_record(
        scenario=result.scenario,
        entry_point=result.entry_point,
        description=result.description,
        seed=result.seed,
        base_params=result.base_params,
        axes=result.axes,
        num_points=len(result.points),
    )
    return header, [point_record(asdict(point)) for point in result.points]
