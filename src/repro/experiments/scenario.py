"""Scenario definitions: a substrate entry point plus a parameter grid.

A :class:`Scenario` is the declarative unit of experimentation: it names one
of the picklable substrate adapters (:mod:`repro.experiments.adapters`), a set
of fixed base parameters, and a :class:`~repro.experiments.grid.ParameterGrid`
of swept parameters.  The sweep runner expands the grid, merges each grid
point over the base parameters, and derives a per-point RNG seed from the
scenario's seed and the point's parameters — so a scenario is a complete,
reproducible description of an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.experiments.grid import ParameterGrid
from repro.sim.rng import substream

#: Recognised scenario tiers, from cheapest to most expensive:
#: ``smoke`` finishes in seconds (CI), ``standard`` in seconds-to-a-minute
#: (the default exploration scale), ``paper`` at the paper's full scale
#: (minutes to hours — run with ``--out x.jsonl`` so a kill is resumable).
TIERS = ("smoke", "standard", "paper")


def point_key(params: Mapping[str, Any]) -> str:
    """A canonical string key of one grid point's full parameter dict.

    Sorted by parameter name so the key is independent of dict insertion
    order; used both to derive the point's RNG seed and to pair points across
    sweeps.
    """
    return repr(sorted((str(k), v) for k, v in params.items()))


def point_seed(base_seed: Optional[int], scenario_name: str, params: Mapping[str, Any]) -> int:
    """Derive the RNG seed of one sweep point.

    The seed is a deterministic function of the scenario seed, the scenario
    name and the point's parameters (via :func:`repro.sim.rng.substream`), and
    of nothing else — not the worker that runs the point, not the order points
    complete in.  This is what makes sweep results bit-identical regardless of
    worker count.
    """
    stream = substream(base_seed, "experiments", scenario_name, point_key(params))
    return int(stream.integers(0, 2**31 - 1))


@dataclass(frozen=True)
class Scenario:
    """A named, declarative scenario sweep.

    Attributes:
        name: Scenario identifier (registry key and CLI argument).
        entry_point: Name of a substrate adapter registered in
            :data:`repro.experiments.adapters.ADAPTERS`.
        grid: The swept parameter axes.
        base_params: Fixed parameters merged under every grid point (a grid
            axis with the same name overrides the base value).
        description: One-line human description (shown by ``list``/``show``).
        seed: Base seed the per-point seeds are derived from.
        tier: Cost tier, one of :data:`TIERS` — ``smoke`` (seconds, CI),
            ``standard`` (the default exploration scale) or ``paper`` (the
            paper's full scale; see ``EXPERIMENTS.md``).
    """

    name: str
    entry_point: str
    grid: ParameterGrid
    base_params: Dict[str, Any] = field(default_factory=dict)
    description: str = ""
    seed: int = 0
    tier: str = "standard"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if not self.entry_point:
            raise ConfigurationError("a scenario needs an entry point")
        if self.tier not in TIERS:
            raise ConfigurationError(
                f"unknown scenario tier {self.tier!r}; known tiers: {TIERS}"
            )

    def points(self) -> Iterator[Dict[str, Any]]:
        """Yield the full parameter dict of every sweep point, in grid order."""
        for overrides in self.grid:
            params = dict(self.base_params)
            params.update(overrides)
            yield params

    def num_points(self) -> int:
        """Number of points in the sweep."""
        return len(self.grid)

    def with_overrides(
        self,
        base_params: Optional[Mapping[str, Any]] = None,
        seed: Optional[int] = None,
    ) -> "Scenario":
        """A copy of this scenario with base parameters and/or seed replaced."""
        merged = dict(self.base_params)
        if base_params:
            merged.update(base_params)
        return replace(
            self,
            base_params=merged,
            seed=self.seed if seed is None else int(seed),
        )
