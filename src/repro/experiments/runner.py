"""Parallel, chunked, resumable scenario-sweep execution.

:class:`SweepRunner` expands a :class:`~repro.experiments.scenario.Scenario`
into its grid points, derives each point's RNG seed (a pure function of the
scenario seed, name and point parameters — see
:func:`~repro.experiments.scenario.point_seed`), and executes the points
either inline (``workers=1``) or on a ``ProcessPoolExecutor``.

Execution is *chunked*: points are submitted to the pool in bounded batches
(``chunk_size``) rather than one grid-sized ``map`` call, and when an output
path is given every completed point is appended to a streaming JSONL artifact
(:mod:`repro.experiments.artifact`) in grid order.  That is what makes
paper-scale grids practical — a killed run leaves the completed prefix on
disk, and ``resume=True`` (CLI ``--resume``) reloads it and executes only the
missing points, keyed by the substream-derived point seed.  Because per-point
seeds and the artifact encoding are both canonical, the finished artifact is
**byte-identical for any worker count, chunk size or resume history**; the
resume tests pin this down by diffing killed-and-resumed runs against
uninterrupted ones.

Two companions extend this to fleets of machines.  ``shard=(i, n)`` restricts
a run to the points whose derived seed lands in shard ``i`` of ``n``
(:mod:`repro.experiments.sharding`) — each machine streams its own ordinary
artifact, and ``merge`` recombines them byte-identically.  And every streamed
run writes a **timing sidecar** (``out + ".timing.jsonl"``,
:mod:`repro.experiments.timing`) recording each executed point's wall-clock
seconds, out-of-band so the canonical artifact never depends on the clock.

Points whose substrate rejects them as saturated (``CapacityError``) are
recorded as ``"infeasible"`` rather than aborting the sweep — that mirrors
how the paper's 2-copy curves stop short of full load.  Any other exception
propagates: a sweep that crashes should fail loudly, not produce a partial
artifact (the streaming artifact it leaves behind is still resumable).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import CapacityError, ConfigurationError
from repro.experiments.adapters import normalize_point_params, resolve_adapter
from repro.experiments.artifact import (
    ArtifactWriter,
    canonicalize,
    header_record,
    load_partial,
    validate_header,
)
from repro.experiments.results import (
    STATUS_INFEASIBLE,
    STATUS_OK,
    PointResult,
    SweepResult,
)
from repro.experiments.scenario import Scenario, point_seed
from repro.experiments.sharding import normalize_shard, shard_of, shard_stanza
from repro.experiments.timing import TimingWriter, timing_header, timing_sidecar_path

#: Default number of points submitted to the pool per batch.  Small enough
#: that a kill loses at most one chunk of work, large enough that a pool of
#: typical width stays busy between batch boundaries.
DEFAULT_CHUNK_SIZE = 32

#: A unit of work shipped to a pool worker: (entry_point, params, seed, index).
_WorkItem = Tuple[str, Dict[str, Any], int, int]


def _execute_point(work: _WorkItem) -> Dict[str, Any]:
    """Run one sweep point; module-level so it pickles to pool workers.

    The returned dict is the canonical point record plus one transient key,
    ``"elapsed_s"`` — the adapter's wall-clock seconds.  The runner pops it
    into the timing sidecar before the record touches the artifact or a
    :class:`PointResult`, so canonical bytes never depend on the clock.
    """
    entry_point, params, seed, index = work
    adapter = resolve_adapter(entry_point)
    started = time.perf_counter()
    try:
        outcome = adapter(params, seed)
    except CapacityError as exc:
        return {
            "index": index,
            "params": params,
            "seed": seed,
            "status": STATUS_INFEASIBLE,
            "error": f"{type(exc).__name__}: {exc}",
            "summary": None,
            "metrics": None,
            "scalars": {},
            "elapsed_s": time.perf_counter() - started,
        }
    return {
        "index": index,
        "params": params,
        "seed": seed,
        "status": STATUS_OK,
        "error": None,
        "summary": outcome.get("summary"),
        "metrics": outcome.get("metrics"),
        "scalars": outcome.get("scalars", {}),
        "elapsed_s": time.perf_counter() - started,
    }


def _chunks(items: List[_WorkItem], size: int) -> List[List[_WorkItem]]:
    return [items[start : start + size] for start in range(0, len(items), size)]


class SweepRunner:
    """Expands a scenario and executes its points — parallel, chunked, resumable."""

    def __init__(self, workers: int = 1, chunk_size: Optional[int] = None) -> None:
        """Create a runner.

        Args:
            workers: Number of worker processes; ``1`` runs every point inline
                in the calling process (no pool, easiest to debug).  Results
                are identical either way.
            chunk_size: Points submitted per pool batch (default
                :data:`DEFAULT_CHUNK_SIZE`, floored at ``workers`` so no batch
                leaves workers idle by construction).  Only affects pacing and
                how much work a kill can lose — never the results.
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size!r}")
        self.workers = int(workers)
        self.chunk_size = max(
            int(chunk_size) if chunk_size is not None else DEFAULT_CHUNK_SIZE,
            self.workers,
        )

    # ------------------------------------------------------------------ #

    def run(
        self,
        scenario: Scenario,
        overrides: Optional[Mapping[str, Any]] = None,
        seed: Optional[int] = None,
        out: Optional[str] = None,
        resume: bool = False,
        progress: Optional[Callable[[int, int], None]] = None,
        shard: Optional[Tuple[int, int]] = None,
    ) -> SweepResult:
        """Execute every point of ``scenario`` and collect a :class:`SweepResult`.

        Args:
            scenario: The scenario to sweep.
            overrides: Optional base-parameter overrides (e.g. a smaller
                ``num_requests`` for a smoke run).  Grid axes still win over
                overrides, matching :meth:`Scenario.points`.
            seed: Optional replacement for the scenario's base seed.
            out: Optional path of a streaming JSONL artifact.  Every completed
                point is appended (in grid order) as the sweep runs, so a
                killed run leaves its completed prefix behind.  A sidecar at
                ``out + ".timing.jsonl"`` additionally records each executed
                point's wall-clock seconds — timing never enters the
                canonical artifact itself.
            resume: Reuse the completed points of an existing artifact at
                ``out`` (keyed by point seed) and execute only the rest.  The
                artifact is rewritten canonically, so the finished file is
                byte-identical to an uninterrupted run's.  Requires ``out``.
            progress: Optional ``callback(done, total)`` invoked after the
                cached prefix and after every completed chunk.  Under
                ``shard``, ``total`` is the shard's own point count.
            shard: Optional 1-based ``(index, count)`` pair: execute only the
                grid points whose derived seed falls in this shard
                (:func:`repro.experiments.sharding.shard_of`) so ``count``
                machines can split one sweep with no coordination.  Point
                records keep their global grid indices, and
                ``python -m repro.experiments merge`` recombines the shard
                artifacts into a file byte-identical to an unsharded run.
                ``(1, 1)`` (and ``None``) mean no sharding.

        Returns:
            The sweep's results, points in grid order (this shard's points
            only when ``shard`` is given).
        """
        if resume and out is None:
            raise ConfigurationError("resume=True requires an output path (out=...)")
        shard = normalize_shard(shard)
        if overrides:
            colliding = sorted(set(overrides) & set(scenario.grid.axes))
            if colliding:
                raise ConfigurationError(
                    f"cannot override swept parameter(s) {colliding}: the grid "
                    f"axis values always win, so the override would be silently "
                    f"ignored; edit the scenario's grid instead"
                )
        if overrides or seed is not None:
            scenario = scenario.with_overrides(base_params=overrides, seed=seed)

        # Points are normalised before seeds are derived: policy specs are
        # canonicalised and *eager* policies rewritten to the substrate's
        # legacy parameter, so a `policy="k2"` axis value shares its params,
        # seed and artifact bytes with the historical `copies=2` value (and a
        # malformed spec fails here, before any worker is spawned).
        full_work: List[_WorkItem] = [
            (
                scenario.entry_point,
                params,
                point_seed(scenario.seed, scenario.name, params),
                index,
            )
            for index, params in enumerate(
                normalize_point_params(
                    scenario.entry_point, point, axes=scenario.grid.axes
                )
                for point in scenario.points()
            )
        ]
        # Resolve the adapter up front so an unknown entry point fails before
        # any worker is spawned.
        resolve_adapter(scenario.entry_point)

        # The shard partition is a pure function of each point's derived
        # seed, so every machine computes the identical split independently.
        # Records keep their *global* grid index; `local` maps it to this
        # shard's write position.
        if shard is not None:
            work = [item for item in full_work if shard_of(item[2], shard[1]) == shard[0]]
        else:
            work = full_work
        local = {item[3]: position for position, item in enumerate(work)}

        header = header_record(
            scenario=scenario.name,
            entry_point=scenario.entry_point,
            description=scenario.description,
            seed=scenario.seed,
            base_params=dict(scenario.base_params),
            axes=scenario.grid.axes,
            num_points=len(full_work),
            shard=shard_stanza(shard, len(work)) if shard is not None else None,
        )
        cached = self._load_cache(out, resume, header, work)

        records: List[Optional[Dict[str, Any]]] = [None] * len(work)
        timings: List[Optional[float]] = [None] * len(work)
        for _entry, _params, item_seed, index in work:
            if item_seed in cached:
                records[local[index]] = cached[item_seed]
        pending = [item for item in work if records[local[item[3]]] is None]

        writer = ArtifactWriter(out, header) if out is not None else None
        timing_writer = (
            TimingWriter(
                timing_sidecar_path(out),
                timing_header(
                    scenario=scenario.name,
                    axes=list(scenario.grid.axes),
                    shard=header.get("shard"),
                    artifact=out,
                ),
            )
            if out is not None
            else None
        )
        pool = (
            ProcessPoolExecutor(max_workers=min(self.workers, len(pending)))
            if self.workers > 1 and len(pending) > 1
            else None
        )
        try:
            # The artifact is written strictly in grid order: after each chunk
            # (and the cached prefix), flush every record whose predecessors
            # are all on disk already.  Timing lands in the sidecar at the
            # same moment — but only for points executed by this invocation
            # (a resumed prefix cost no wall-clock).
            next_to_write = 0

            def flush() -> int:
                nonlocal next_to_write
                while next_to_write < len(records) and records[next_to_write] is not None:
                    if writer is not None:
                        writer.append_point(records[next_to_write])
                    if timing_writer is not None and timings[next_to_write] is not None:
                        timing_writer.append(records[next_to_write], timings[next_to_write])
                    next_to_write += 1
                return next_to_write

            done = flush()
            if progress is not None:
                progress(done, len(work))
            for chunk in _chunks(pending, self.chunk_size):
                # Executor.map preserves submission order, so records land in
                # grid order no matter which worker finishes first.
                executed = (
                    pool.map(_execute_point, chunk)
                    if pool is not None
                    else (_execute_point(item) for item in chunk)
                )
                for record in executed:
                    position = local[record["index"]]
                    # Pop the transient wall-clock key before the record can
                    # reach the canonical artifact or a PointResult.
                    timings[position] = record.pop("elapsed_s", None)
                    records[position] = record
                done = flush()
                if progress is not None:
                    progress(done, len(work))
        finally:
            if pool is not None:
                pool.shutdown()
            if timing_writer is not None:
                timing_writer.close()
            if writer is not None:
                writer.close()

        points = [PointResult(**record) for record in records]
        return SweepResult(
            scenario=scenario.name,
            entry_point=scenario.entry_point,
            description=scenario.description,
            seed=scenario.seed,
            base_params=dict(scenario.base_params),
            axes=scenario.grid.axes,
            points=points,
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _load_cache(
        out: Optional[str],
        resume: bool,
        header: Dict[str, Any],
        work: List[_WorkItem],
    ) -> Dict[int, Dict[str, Any]]:
        """Load reusable point records from a partial artifact (resume mode).

        A cached record is reused only if its seed matches a current grid
        point *and* its recorded parameters canonically equal that point's —
        the belt to the seed's braces, since the seed is already derived from
        the parameters.  The record's stored index is normalised to the
        current grid index (for a well-formed artifact they already agree;
        this stops a hand-edited index field from corrupting the rewrite).
        """
        if not resume or out is None:
            return {}
        loaded_header, loaded_points = load_partial(out)
        if loaded_header is None:
            return {}
        validate_header(loaded_header, header, out)
        by_seed: Dict[int, Dict[str, Any]] = {}
        for _entry, params, item_seed, index in work:
            record = loaded_points.get(item_seed)
            if record is None:
                continue
            if canonicalize(record.get("params")) != canonicalize(params):
                continue
            record = dict(record)
            record["index"] = index
            by_seed[item_seed] = record
        return by_seed


def run_scenario(
    scenario: Scenario,
    workers: int = 1,
    overrides: Optional[Mapping[str, Any]] = None,
    seed: Optional[int] = None,
    out: Optional[str] = None,
    resume: bool = False,
    shard: Optional[Tuple[int, int]] = None,
) -> SweepResult:
    """Convenience wrapper: ``SweepRunner(workers).run(scenario, ...)``."""
    return SweepRunner(workers=workers).run(
        scenario, overrides=overrides, seed=seed, out=out, resume=resume, shard=shard
    )
