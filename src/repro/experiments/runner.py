"""Parallel scenario-sweep execution.

:class:`SweepRunner` expands a :class:`~repro.experiments.scenario.Scenario`
into its grid points, derives each point's RNG seed (a pure function of the
scenario seed, name and point parameters — see
:func:`~repro.experiments.scenario.point_seed`), and executes the points
either inline (``workers=1``) or on a ``ProcessPoolExecutor``.  Results come
back in grid order whatever the completion order, so a sweep's
:class:`~repro.experiments.results.SweepResult` is bit-identical for any
worker count.

Points whose substrate rejects them as saturated (``CapacityError``) are
recorded as ``"infeasible"`` rather than aborting the sweep — that mirrors
how the paper's 2-copy curves stop short of full load.  Any other exception
propagates: a sweep that crashes should fail loudly, not produce a partial
artifact.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import CapacityError, ConfigurationError
from repro.experiments.adapters import resolve_adapter
from repro.experiments.results import (
    STATUS_INFEASIBLE,
    STATUS_OK,
    PointResult,
    SweepResult,
)
from repro.experiments.scenario import Scenario, point_seed

#: A unit of work shipped to a pool worker: (entry_point, params, seed, index).
_WorkItem = Tuple[str, Dict[str, Any], int, int]


def _execute_point(work: _WorkItem) -> Dict[str, Any]:
    """Run one sweep point; module-level so it pickles to pool workers."""
    entry_point, params, seed, index = work
    adapter = resolve_adapter(entry_point)
    try:
        outcome = adapter(params, seed)
    except CapacityError as exc:
        return {
            "index": index,
            "params": params,
            "seed": seed,
            "status": STATUS_INFEASIBLE,
            "error": f"{type(exc).__name__}: {exc}",
            "summary": None,
            "metrics": None,
            "scalars": {},
        }
    return {
        "index": index,
        "params": params,
        "seed": seed,
        "status": STATUS_OK,
        "error": None,
        "summary": outcome.get("summary"),
        "metrics": outcome.get("metrics"),
        "scalars": outcome.get("scalars", {}),
    }


class SweepRunner:
    """Expands a scenario and executes its points, optionally in parallel."""

    def __init__(self, workers: int = 1) -> None:
        """Create a runner.

        Args:
            workers: Number of worker processes; ``1`` runs every point inline
                in the calling process (no pool, easiest to debug).  Results
                are identical either way.
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        self.workers = int(workers)

    def run(
        self,
        scenario: Scenario,
        overrides: Optional[Mapping[str, Any]] = None,
        seed: Optional[int] = None,
    ) -> SweepResult:
        """Execute every point of ``scenario`` and collect a :class:`SweepResult`.

        Args:
            scenario: The scenario to sweep.
            overrides: Optional base-parameter overrides (e.g. a smaller
                ``num_requests`` for a smoke run).  Grid axes still win over
                overrides, matching :meth:`Scenario.points`.
            seed: Optional replacement for the scenario's base seed.

        Returns:
            The sweep's results, points in grid order.
        """
        if overrides:
            colliding = sorted(set(overrides) & set(scenario.grid.axes))
            if colliding:
                raise ConfigurationError(
                    f"cannot override swept parameter(s) {colliding}: the grid "
                    f"axis values always win, so the override would be silently "
                    f"ignored; edit the scenario's grid instead"
                )
        if overrides or seed is not None:
            scenario = scenario.with_overrides(base_params=overrides, seed=seed)

        work: List[_WorkItem] = [
            (
                scenario.entry_point,
                params,
                point_seed(scenario.seed, scenario.name, params),
                index,
            )
            for index, params in enumerate(scenario.points())
        ]
        # Resolve the adapter up front so an unknown entry point fails before
        # any worker is spawned.
        resolve_adapter(scenario.entry_point)

        if self.workers == 1 or len(work) <= 1:
            raw = [_execute_point(item) for item in work]
        else:
            max_workers = min(self.workers, len(work))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                # Executor.map preserves submission order, so results land in
                # grid order no matter which worker finishes first.
                raw = list(pool.map(_execute_point, work))

        points = [PointResult(**record) for record in raw]
        return SweepResult(
            scenario=scenario.name,
            entry_point=scenario.entry_point,
            description=scenario.description,
            seed=scenario.seed,
            base_params=dict(scenario.base_params),
            axes=scenario.grid.axes,
            points=points,
        )


def run_scenario(
    scenario: Scenario,
    workers: int = 1,
    overrides: Optional[Mapping[str, Any]] = None,
    seed: Optional[int] = None,
) -> SweepResult:
    """Convenience wrapper: ``SweepRunner(workers).run(scenario, ...)``."""
    return SweepRunner(workers=workers).run(scenario, overrides=overrides, seed=seed)
