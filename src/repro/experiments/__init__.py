"""Declarative, parallel, resumable scenario sweeps over every substrate.

The paper's results are all *sweeps* — grids of (distribution x load x copies
x overhead) — so the repository provides sweeping as a subsystem rather than
ad-hoc loops:

* :class:`ParameterGrid` — the cartesian product of named axes;
* :class:`Scenario` — a substrate entry point + base params + grid, tagged
  with a cost tier (``smoke`` / ``standard`` / ``paper``);
* :class:`SweepRunner` — expands the grid, derives a per-point seed via
  :func:`repro.sim.rng.substream`, executes points in bounded chunks on a
  ``ProcessPoolExecutor``, and (given an output path) streams each completed
  point to a JSONL artifact that a killed run can ``resume`` from — the
  finished artifact is byte-identical for any worker count, chunk size or
  resume history;
* :class:`SweepResult` / :class:`PointResult` — the shared JSON/JSONL/CSV
  artifact format, feeding :mod:`repro.analysis.tables`;
* :meth:`SweepResult.diff` / :class:`SweepDiff` — pair two artifacts of the
  same grid point-by-point and render "paper vs measured" columns
  (``python -m repro.experiments diff``);
* sharding (:mod:`repro.experiments.sharding`) — ``run --shard I/N`` splits
  one sweep across N machines along a deterministic seed-derived partition,
  and ``merge`` recombines the shard artifacts into a file byte-identical to
  the single-machine run;
* timing sidecars (:mod:`repro.experiments.timing`) — every streamed run
  writes per-point wall-clock seconds to ``<out>.timing.jsonl``
  (``timing-report`` tabulates slowest points and per-shard totals) so the
  canonical artifact itself never contains timing;
* a registry of built-in scenarios in three tiers, from the CI smoke sweep
  to the paper-scale k=6 fat-tree / full DNS matrix / EC2-trace database
  runs (``python -m repro.experiments list --tier paper``).

``EXPERIMENTS.md`` at the repository root maps every paper figure to its
scenario, exact CLI command and expected runtime.

Example:
    >>> from repro.experiments import SweepRunner, get_scenario
    >>> result = SweepRunner(workers=1).run(
    ...     get_scenario("queueing-smoke"), overrides={"num_requests": 500})
    >>> [p.status for p in result.points]
    ['ok', 'ok']
"""

from repro.experiments.grid import ParameterGrid
from repro.experiments.scenario import TIERS, Scenario, point_key, point_seed
from repro.experiments.adapters import ADAPTERS, resolve_adapter
from repro.experiments.artifact import JSONL_SCHEMA, load_partial
from repro.experiments.results import (
    PointResult,
    SweepDiff,
    SweepResult,
    load_sweep_artifact,
)
from repro.experiments.runner import DEFAULT_CHUNK_SIZE, SweepRunner, run_scenario
from repro.experiments.sharding import merge_artifacts, parse_shard, shard_of
from repro.experiments.timing import (
    TIMING_SCHEMA,
    load_timing,
    timing_sidecar_path,
)
from repro.experiments.registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)

__all__ = [
    "ADAPTERS",
    "DEFAULT_CHUNK_SIZE",
    "JSONL_SCHEMA",
    "TIMING_SCHEMA",
    "ParameterGrid",
    "PointResult",
    "Scenario",
    "SweepDiff",
    "SweepResult",
    "SweepRunner",
    "TIERS",
    "all_scenarios",
    "get_scenario",
    "load_partial",
    "load_sweep_artifact",
    "load_timing",
    "merge_artifacts",
    "parse_shard",
    "point_key",
    "point_seed",
    "register_scenario",
    "resolve_adapter",
    "run_scenario",
    "scenario_names",
    "shard_of",
    "timing_sidecar_path",
]
