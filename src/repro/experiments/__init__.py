"""Declarative, parallel scenario sweeps over every substrate.

The paper's results are all *sweeps* — grids of (distribution x load x copies
x overhead) — so the repository provides sweeping as a subsystem rather than
ad-hoc loops:

* :class:`ParameterGrid` — the cartesian product of named axes;
* :class:`Scenario` — a substrate entry point + base params + grid;
* :class:`SweepRunner` — expands the grid, derives a per-point seed via
  :func:`repro.sim.rng.substream`, executes points in parallel with
  ``ProcessPoolExecutor``, and returns results bit-identical for any worker
  count;
* :class:`SweepResult` / :class:`PointResult` — the shared JSON/CSV artifact
  format, feeding :mod:`repro.analysis.tables`;
* a registry of built-in scenarios (``python -m repro.experiments list``).

Example:
    >>> from repro.experiments import SweepRunner, get_scenario
    >>> result = SweepRunner(workers=1).run(
    ...     get_scenario("queueing-smoke"), overrides={"num_requests": 500})
    >>> [p.status for p in result.points]
    ['ok', 'ok']
"""

from repro.experiments.grid import ParameterGrid
from repro.experiments.scenario import Scenario, point_key, point_seed
from repro.experiments.adapters import ADAPTERS, resolve_adapter
from repro.experiments.results import PointResult, SweepResult
from repro.experiments.runner import SweepRunner, run_scenario
from repro.experiments.registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)

__all__ = [
    "ADAPTERS",
    "ParameterGrid",
    "PointResult",
    "Scenario",
    "SweepResult",
    "SweepRunner",
    "all_scenarios",
    "get_scenario",
    "point_key",
    "point_seed",
    "register_scenario",
    "resolve_adapter",
    "run_scenario",
    "scenario_names",
]
