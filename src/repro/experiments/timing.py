"""Per-point wall-clock timing sidecars (``x.jsonl.timing.jsonl``).

The canonical sweep artifact is a pure function of the scenario — that is
what makes resume, worker-count determinism and shard merging byte-exact —
so wall-clock timing, which varies run to run, can never live inside it.
This module is the out-of-band home for it: whenever the runner streams a
``.jsonl`` artifact, it also writes a **sidecar** next to it at
:func:`timing_sidecar_path` recording, for every point *executed by that
invocation*, the wall-clock seconds the substrate adapter took.

The sidecar is deliberately not canonical and never merged into artifacts:

* it describes one invocation on one machine (a ``--resume`` rewrites it
  with only the newly executed points — the cached prefix cost nothing);
* the artifact ``cmp``/``diff`` contracts ignore it entirely, so two
  byte-identical artifacts can carry arbitrarily different sidecars;
* its consumers are humans and the ``timing-report`` CLI, which tabulates
  the slowest points and per-shard totals to inform shard-count and
  shard-balance decisions for fleet runs (see ``EXPERIMENTS.md``).

Layout mirrors the artifact: line 1 is a header (schema, scenario, shard
stanza, grid axes), every further line one timing record (grid index, seed,
params, status, ``elapsed_s``).  The loader tolerates a truncated final line
the same way :func:`repro.experiments.artifact.load_partial` does.
"""

from __future__ import annotations

import os
from typing import IO, Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments.artifact import canonical_json, iter_complete_records

#: Version tag of the timing-sidecar layout.
TIMING_SCHEMA = "repro.experiments.sweep-timing/1"

#: Suffix appended to the artifact path to name its sidecar.
TIMING_SUFFIX = ".timing.jsonl"

#: ``kind`` of the sidecar's first line.
KIND_TIMING_HEADER = "timing-header"
#: ``kind`` of every following sidecar line.
KIND_TIMING = "timing"


def timing_sidecar_path(artifact_path: str) -> str:
    """The sidecar path of a streaming artifact: ``<artifact>.timing.jsonl``."""
    return artifact_path + TIMING_SUFFIX


def timing_header(
    *,
    scenario: str,
    axes: List[str],
    shard: Optional[Dict[str, Any]] = None,
    artifact: Optional[str] = None,
) -> Dict[str, Any]:
    """Build the sidecar header record."""
    record: Dict[str, Any] = {
        "kind": KIND_TIMING_HEADER,
        "schema": TIMING_SCHEMA,
        "scenario": scenario,
        "axes": list(axes),
        "shard": shard,
    }
    if artifact is not None:
        record["artifact"] = os.path.basename(artifact)
    return record


class TimingWriter:
    """Appends timing records next to a streaming artifact, one per executed point.

    Opened fresh (mode ``"w"``) by every invocation: the sidecar answers
    "what did *this run* spend, where", so cached points reused by
    ``--resume`` do not reappear in it.  Each line is flushed as written,
    like the artifact itself.
    """

    def __init__(self, path: str, header: Dict[str, Any]) -> None:
        """Open ``path`` and emit the header line."""
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self._write(header)

    def _write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ConfigurationError(f"timing writer for {self.path!r} is closed")
        self._handle.write(canonical_json(record))
        self._handle.flush()

    def append(self, point: Dict[str, Any], elapsed_s: float) -> None:
        """Record that ``point`` (an executed point record) took ``elapsed_s``."""
        self._write(
            {
                "kind": KIND_TIMING,
                "index": point["index"],
                "seed": point["seed"],
                "params": point["params"],
                "status": point["status"],
                "elapsed_s": float(elapsed_s),
            }
        )

    def close(self) -> None:
        """Flush and close the sidecar (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TimingWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def load_timing(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load a timing sidecar: ``(header, records)``.

    A truncated final line (the write in flight when a run was killed) is
    discarded, mirroring the artifact loader; any other malformed line
    raises.

    Raises:
        ConfigurationError: If the file is missing, empty, does not start
            with a timing header, or holds a malformed non-final line.
    """
    if not os.path.exists(path):
        raise ConfigurationError(
            f"timing sidecar {path!r} does not exist; sidecars are written "
            f"next to streaming artifacts (--out x.jsonl produces "
            f"x.jsonl{TIMING_SUFFIX})"
        )
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    header: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = []
    # Same truncation-tolerance rules as the artifact itself: the shared
    # parser discards an unterminated final line and rejects anything else
    # malformed.
    for number, record in iter_complete_records(text, path):
        kind = record.get("kind")
        if number == 1:
            if kind != KIND_TIMING_HEADER or record.get("schema") != TIMING_SCHEMA:
                raise ConfigurationError(
                    f"{path!r} is not a timing sidecar (expected a "
                    f"{TIMING_SCHEMA!r} header, got kind={kind!r}); the "
                    f"canonical artifact itself carries no timing data"
                )
            header = record
        elif kind == KIND_TIMING:
            records.append(record)
        else:
            raise ConfigurationError(
                f"timing sidecar {path!r} line {number} has unexpected kind {kind!r}"
            )
    if header is None:
        raise ConfigurationError(f"timing sidecar {path!r} is empty")
    return header, records


def sidecar_label(header: Dict[str, Any], path: str) -> str:
    """Short display label of one sidecar: its shard stanza, else its filename."""
    stanza = header.get("shard")
    if stanza:
        return f"shard {stanza.get('index')}/{stanza.get('count')}"
    return os.path.basename(path)
