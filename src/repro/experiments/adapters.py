"""Picklable substrate entry points for the sweep runner.

Every adapter is a module-level function ``adapter(params, seed) -> dict`` so
that :class:`~repro.experiments.runner.SweepRunner` can ship ``(entry_point
name, params, seed)`` tuples to ``ProcessPoolExecutor`` workers: plain
strings, dicts and ints pickle trivially, and the worker resolves the adapter
by name in :data:`ADAPTERS`.

Adapters return a plain dict with three keys, all JSON-serialisable:

* ``"summary"`` — the point's :class:`~repro.analysis.stats.LatencySummary`
  as a flat row (or ``None`` when the point produced no samples);
* ``"metrics"`` — a :meth:`~repro.metrics.MetricsRegistry.snapshot` of the
  point's counters and recorders;
* ``"scalars"`` — flat derived quantities (threshold benefit, cache hit
  ratio, tail fractions, ...) specific to the substrate.

Adapters draw all randomness from the ``seed`` they are handed (derived per
point by :func:`repro.experiments.scenario.point_seed`), never from global
state, which is what makes sweep results independent of worker count.

The policy axis
---------------

Every adapter accepts a ``policy`` parameter — a
:mod:`repro.core.policy` spec string (``"none"``, ``"k2"``,
``"hedge:10ms"``, ``"hedge:p95"``) — as the replication description, which is
what lets hedging ablations live in ordinary parameter grids.  Before seeds
are derived, the sweep runner passes each point through
:func:`normalize_point_params`, which canonicalises specs and rewrites
*eager* policies into the substrate's legacy parameter (``copies=k``, or
``replication=bool`` for the fat-tree).  That normalisation means a
``policy="k2"`` axis value produces the **same point parameters, seed and
artifact bytes** as the historical ``copies=2`` axis value.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.core.policy import (
    canonical_policy_spec,
    eager_copies,
    parse_policy,
    policy_to_spec,
)
from repro.exceptions import ConfigurationError
from repro.metrics import LatencyRecorder, MetricsRegistry


def _summary_row(samples: np.ndarray, name: str) -> Dict[str, Any]:
    return LatencyRecorder.from_samples(samples, name=name).summary().as_row()


#: The legacy per-substrate parameter an eager policy spec normalises into.
_LEGACY_REPLICATION_PARAM = {
    "queueing": "copies",
    "queueing_paired": "copies",
    "database": "copies",
    "memcached": "copies",
    "dns": "copies",
    "handshake": "copies",
    "fattree": "replication",
}


def normalize_point_params(
    entry_point: str,
    params: Dict[str, Any],
    axes: Any = (),
) -> Dict[str, Any]:
    """Canonicalise one sweep point's ``policy`` and ``churn`` parameters.

    Called by the sweep runner on every grid point *before* the point seed is
    derived.  A malformed spec therefore fails fast, before any worker is
    spawned, and two spellings of the same policy (``"hedge:0.01s"`` vs
    ``"hedge:10ms"``) — or of the same churn timeline (event order, ``0.40``
    vs ``0.4``) — share one seed.  An empty churn spec is dropped entirely,
    putting it on the exact point the static grid produces.  Eager policies are rewritten into the
    substrate's legacy parameter — ``policy="k2"`` becomes ``copies=2``
    (``replication=True`` for the fat-tree) — so policy-axis sweeps of eager
    configurations are byte-identical to the historical integer-``copies``
    sweeps, golden artifacts included.

    A ``policy`` setting replaces a legacy value coming from *base
    parameters* (which is what lets ``--set policy=hedge:p95`` re-policy a
    scenario whose base says ``copies: 2``); only a point where the legacy
    parameter is itself a swept ``axes`` member conflicts, since there the
    grid explicitly asks for both descriptions at once.

    Raises:
        ConfigurationError: On a malformed spec, a policy colliding with a
            swept legacy axis, or an eager copy count the substrate cannot
            express.
    """
    if "churn" in params:
        from repro.cluster.churn import canonical_churn_spec

        params = dict(params)
        canonical = canonical_churn_spec(params["churn"])
        if canonical:
            params["churn"] = canonical
        else:
            # An empty timeline IS the static run: dropping the key keeps
            # `churn=""` on the same point seed and artifact bytes as a
            # grid that never mentions churn at all.
            del params["churn"]
    if "policy" not in params:
        return params
    params = dict(params)
    resolved = parse_policy(params["policy"])
    legacy = _LEGACY_REPLICATION_PARAM.get(entry_point)
    if legacy is not None and legacy in params:
        if legacy in axes:
            raise ConfigurationError(
                f"point params sweep both 'policy' and {legacy!r}; the policy "
                f"axis replaces the legacy parameter — drop the {legacy!r} "
                f"axis (policy={params['policy']!r} already describes the "
                "replication)"
            )
        # The legacy value came from base params/overrides: the explicit
        # policy wins (this is what `--set policy=...` relies on).
        del params[legacy]
    eager = eager_copies(resolved)
    if eager is not None and legacy is not None:
        if entry_point == "fattree" and eager > 2:
            raise ConfigurationError(
                f"the in-network mechanism replicates along one alternate "
                f"path; policy {params['policy']!r} wants k={eager}"
            )
        del params["policy"]
        if entry_point == "fattree":
            params[legacy] = eager >= 2
        else:
            params[legacy] = eager
    else:
        params["policy"] = policy_to_spec(resolved)
    return params


def _make_distribution(params: Dict[str, Any]):
    """Build the unit-mean service-time distribution named by ``params``.

    Recognised ``distribution`` values: ``deterministic``, ``exponential``,
    ``pareto`` (``alpha``), ``weibull`` (``shape``), ``two_point`` (``p``).
    """
    from repro.distributions import Deterministic, Exponential, Pareto, TwoPoint, Weibull

    kind = str(params.get("distribution", "exponential")).lower().replace("-", "_")
    if kind == "deterministic":
        return Deterministic(1.0)
    if kind == "exponential":
        return Exponential(1.0)
    if kind == "pareto":
        return Pareto(alpha=float(params.get("alpha", 2.1)), mean=1.0)
    if kind == "weibull":
        return Weibull(shape=float(params.get("shape", 0.5))).unit_mean()
    if kind == "two_point":
        return TwoPoint(float(params.get("p", 0.9)))
    raise ConfigurationError(
        f"unknown service-time distribution {kind!r}; known: deterministic, "
        "exponential, pareto, weibull, two_point"
    )


# --------------------------------------------------------------------------- #
# Section 2.1: queueing model
# --------------------------------------------------------------------------- #


def run_queueing(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One ``run_fast`` point of the Section 2.1 replication queueing model.

    Params: ``distribution`` (+ its shape parameters), ``load``, ``copies``
    or ``policy`` (a policy spec such as ``"hedge:p95"``), ``num_servers``,
    ``num_requests``, ``warmup_fraction``, ``client_overhead``.
    """
    from repro.queueing import ReplicatedQueueingModel

    policy = params.get("policy")
    num_requests = int(params.get("num_requests", 20_000))
    model = ReplicatedQueueingModel(
        _make_distribution(params),
        num_servers=int(params.get("num_servers", 10)),
        copies=None if policy is not None else int(params.get("copies", 2)),
        client_overhead=float(params.get("client_overhead", 0.0)),
        seed=seed,
        policy=policy,
    )
    result = model.run_fast(
        float(params["load"]),
        num_requests=num_requests,
        warmup_fraction=float(params.get("warmup_fraction", 0.1)),
    )
    registry = MetricsRegistry("queueing")
    registry.counter("requests").increment(num_requests)
    registry.counter("copies_launched").increment(result.copies_launched)
    registry.recorder("latency").record_many(result.response_times)
    scalars: Dict[str, Any] = {"mean": result.mean, "p999": result.summary.p999}
    if policy is not None:
        scalars["copies_launched_per_request"] = result.copies_launched / num_requests
    return {
        "summary": result.summary.as_row(),
        "metrics": registry.snapshot(),
        "scalars": scalars,
    }


def run_queueing_paired(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A paired replication-vs-baseline point of the queueing model.

    Runs the unreplicated and the replicated configuration — ``copies`` eager
    copies or a ``policy`` spec — with the *same* seed (common random numbers,
    as the paper's testbed replayed the same workload) and reports the paired
    benefit — the quantity whose sign change defines the threshold load.
    """
    from repro.queueing import ReplicatedQueueingModel

    service = _make_distribution(params)
    load = float(params["load"])
    policy = params.get("policy")
    num_servers = int(params.get("num_servers", 10))
    num_requests = int(params.get("num_requests", 20_000))
    overhead = float(params.get("client_overhead", 0.0))

    baseline = ReplicatedQueueingModel(
        service, num_servers=num_servers, copies=1, seed=seed
    ).run_fast(load, num_requests=num_requests)
    replicated = ReplicatedQueueingModel(
        service,
        num_servers=num_servers,
        copies=None if policy is not None else int(params.get("copies", 2)),
        client_overhead=overhead,
        seed=seed,
        policy=policy,
    ).run_fast(load, num_requests=num_requests)

    registry = MetricsRegistry("queueing-paired")
    registry.counter("requests").increment(2 * num_requests)
    registry.counter("copies_launched").increment(
        num_requests + replicated.copies_launched
    )
    registry.recorder("latency_baseline").record_many(baseline.response_times)
    registry.recorder("latency_replicated").record_many(replicated.response_times)
    scalars: Dict[str, Any] = {
        "mean_baseline": baseline.mean,
        "mean_replicated": replicated.mean,
        "benefit": baseline.mean - replicated.mean,
        "replication_helps": bool(replicated.mean < baseline.mean),
        "p999_baseline": baseline.summary.p999,
        "p999_replicated": replicated.summary.p999,
    }
    if policy is not None:
        scalars["copies_launched_per_request"] = replicated.copies_launched / num_requests
    return {
        "summary": replicated.summary.as_row(),
        "metrics": registry.snapshot(),
        "scalars": scalars,
    }


# --------------------------------------------------------------------------- #
# Sections 2.2 / 2.3: storage cluster
# --------------------------------------------------------------------------- #

_DATABASE_VARIANTS = (
    "base",
    "small_files",
    "pareto_files",
    "small_cache",
    "ec2",
    "large_files",
    "all_cached",
)


def run_database(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One (load, copies-or-policy) point of the Section 2.2 disk-backed database.

    Params: ``variant`` (one of the Figure 5-11 named configurations),
    ``load``, ``copies`` or ``policy`` (e.g. ``"hedge:20ms"``), ``num_files``,
    ``num_requests``, optional ``ccdf_thresholds_ms`` (tail fractions
    reported as scalars), and optional ``churn`` (a membership-event spec
    such as ``"add:4@0.4"``) with ``migration_rate`` — churn runs export the
    before/spike/after p99 decomposition as scalars.
    """
    from repro.cluster import DatabaseClusterConfig, DatabaseClusterExperiment

    variant = str(params.get("variant", "base"))
    if variant not in _DATABASE_VARIANTS:
        raise ConfigurationError(
            f"unknown database variant {variant!r}; known: {_DATABASE_VARIANTS}"
        )
    policy = params.get("policy")
    config = getattr(DatabaseClusterConfig, variant)(
        num_files=int(params.get("num_files", 30_000)), seed=seed
    )
    experiment = DatabaseClusterExperiment(config)
    result = experiment.run(
        float(params["load"]),
        copies=None if policy is not None else int(params.get("copies", 2)),
        num_requests=int(params.get("num_requests", 15_000)),
        policy=policy,
        churn=params.get("churn"),
        migration_rate=float(params.get("migration_rate", 50.0)),
    )
    scalars: Dict[str, Any] = {
        "mean": result.mean,
        "p999": result.p999,
        "cache_hit_ratio": result.cache_hit_ratio,
    }
    if policy is not None:
        scalars["copies_launched_per_request"] = result.copies_launched / int(
            params.get("num_requests", 15_000)
        )
    if result.spike is not None:
        scalars.update(result.spike)
    for threshold_ms in params.get("ccdf_thresholds_ms", ()):
        fraction = float(np.mean(result.response_times > threshold_ms / 1000.0))
        scalars[f"frac_later_{threshold_ms:g}ms"] = fraction
    return {"summary": result.summary.as_row(), "metrics": result.metrics, "scalars": scalars}


def run_memcached(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One (load, copies-or-policy, stub) point of the Section 2.3 memcached model.

    Params: ``load``, ``copies`` or ``policy``, ``stub``, ``num_requests``,
    and optional ``churn`` (a membership-event spec such as ``"crash:1@0.4"``)
    with ``migration_rate``, ``num_keys`` and ``cold_penalty_s`` — churn runs
    export the before/spike/after p99 decomposition as scalars.
    """
    from repro.cluster import MemcachedConfig, MemcachedExperiment

    policy = params.get("policy")
    num_requests = int(params.get("num_requests", 30_000))
    config = MemcachedConfig(seed=seed)
    result = MemcachedExperiment(config).run(
        float(params["load"]),
        copies=None if policy is not None else int(params.get("copies", 2)),
        stub=bool(params.get("stub", False)),
        num_requests=num_requests,
        policy=policy,
        churn=params.get("churn"),
        migration_rate=float(params.get("migration_rate", 2000.0)),
        num_keys=int(params.get("num_keys", 20_000)),
        cold_penalty_s=float(params.get("cold_penalty_s", 0.002)),
    )
    scalars: Dict[str, Any] = {"mean": result.mean, "p999": result.summary.p999}
    if policy is not None:
        scalars["copies_launched_per_request"] = result.copies_launched / num_requests
    if result.spike is not None:
        scalars.update(result.spike)
    return {
        "summary": result.summary.as_row(),
        "metrics": result.metrics,
        "scalars": scalars,
    }


# --------------------------------------------------------------------------- #
# Section 2.4: fat-tree network
# --------------------------------------------------------------------------- #


def run_fattree(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One fat-tree run (Section 2.4) with or without in-network replication.

    Params: ``k``, ``load``, ``num_flows``, ``replication`` (bool) or
    ``policy`` (``"none"``, ``"k2"``, or deferred ``"hedge:<delay>"``),
    ``link_rate_gbps``, ``per_hop_delay_us``, ``first_packets``, and
    ``fidelity`` (``"packet"`` = full event simulation, ``"flow"`` = the
    link-share fast path of :mod:`repro.network.flow_fidelity`).
    """
    from repro.network import FatTreeExperiment, FatTreeExperimentConfig
    from repro.network.replication import ReplicationConfig

    policy = params.get("policy")
    if policy is not None:
        replication = ReplicationConfig.from_policy(
            policy, first_packets=int(params.get("first_packets", 8))
        )
    else:
        replicate = bool(params.get("replication", True))
        replication = (
            ReplicationConfig(first_packets=int(params.get("first_packets", 8)))
            if replicate
            else ReplicationConfig.disabled()
        )
    config = FatTreeExperimentConfig(
        k=int(params.get("k", 4)),
        link_rate_gbps=float(params.get("link_rate_gbps", 5.0)),
        per_hop_delay_us=float(params.get("per_hop_delay_us", 2.0)),
        load=float(params["load"]),
        num_flows=int(params.get("num_flows", 500)),
        replication=replication,
        seed=seed,
        fidelity=str(params.get("fidelity", "packet")),
    )
    result = FatTreeExperiment(config).run()
    short = result.short_flow_fcts()
    elephants = result.elephant_fcts()
    completed = result.completed()
    timeouts = sum(r.timeouts for r in result.records)
    registry = MetricsRegistry("fattree")
    registry.counter("flows").increment(len(result.records))
    registry.counter("flows_completed").increment(len(completed))
    registry.counter("dropped_packets").increment(result.dropped_packets)
    registry.counter("dropped_replicas").increment(result.dropped_replicas)
    registry.counter("timeouts").increment(timeouts)
    if short.size:
        registry.recorder("short_flow_fct").record_many(short)
    return {
        "summary": _summary_row(short, "short_flow_fct") if short.size else None,
        "metrics": registry.snapshot(),
        # median/p99 short-flow FCT and timeouts are the Figure 14(a)/(b)
        # series; the elephant mean is the "replication must not hurt the
        # elephants" sanity column of Figure 14(c).
        "scalars": {
            "short_flows_completed": int(short.size),
            "median_short_fct": float(np.median(short)) if short.size else None,
            "p99_short_fct": float(np.percentile(short, 99)) if short.size else None,
            "elephant_mean_fct": float(np.mean(elephants)) if elephants.size else None,
            "timeouts": int(timeouts),
        },
    }


# --------------------------------------------------------------------------- #
# Section 3: wide-area models
# --------------------------------------------------------------------------- #


def run_dns(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One copy-count (or policy) point of the Section 3.2 DNS experiment.

    Params: ``copies`` or ``policy`` (e.g. ``"hedge:50ms"``),
    ``num_vantage_points``, ``num_servers``, ``stage1_queries``,
    ``stage2_queries``, ``tail_threshold_s``.
    """
    from repro.wan import DnsExperiment, DnsExperimentConfig

    policy = params.get("policy")
    threshold_s = float(params.get("tail_threshold_s", 0.5))
    if policy is not None:
        resolved = parse_policy(policy)
        config = DnsExperimentConfig(
            num_vantage_points=int(params.get("num_vantage_points", 6)),
            num_servers=int(params.get("num_servers", max(resolved.max_copies, 5))),
            stage1_queries_per_server=int(params.get("stage1_queries", 150)),
            stage2_queries_per_config=int(params.get("stage2_queries", 600)),
            seed=seed,
        )
        result = DnsExperiment(config).run_policy(resolved)
        summary = result.summary()
        registry = MetricsRegistry("dns")
        registry.counter("queries").increment(result.queries_launched + result.num_trials)
        registry.recorder("latency").record_many(result.samples)
        tail = result.tail_improvement(threshold_s)
        return {
            "summary": summary.as_row(),
            "metrics": registry.snapshot(),
            "scalars": {
                "mean_ms": summary.mean * 1000.0,
                "mean_reduction_pct": result.reduction_percent["mean"],
                "median_reduction_pct": result.reduction_percent["median"],
                "p95_reduction_pct": result.reduction_percent["p95"],
                "p99_reduction_pct": result.reduction_percent["p99"],
                "frac_later": result.fraction_later_than(threshold_s),
                "tail_improvement": None if not np.isfinite(tail) else float(tail),
                # The policy's traffic cost: the eager k policy pays k per
                # trial, hedging pays only for backups that actually fired.
                "queries_per_trial": result.mean_queries_per_trial,
            },
        }

    copies = int(params.get("copies", 2))
    config = DnsExperimentConfig(
        num_vantage_points=int(params.get("num_vantage_points", 6)),
        num_servers=int(params.get("num_servers", max(copies, 5))),
        stage1_queries_per_server=int(params.get("stage1_queries", 150)),
        stage2_queries_per_config=int(params.get("stage2_queries", 600)),
        seed=seed,
    )
    copies_list = sorted({1, copies})
    results = DnsExperiment(config).run(copies_list=copies_list)
    summary = results.summary(copies)
    registry = MetricsRegistry("dns")
    registry.counter("queries").increment(
        len(copies_list) * config.num_vantage_points * config.stage2_queries_per_config
    )
    registry.recorder("latency").record_many(results.samples_by_copies[copies])
    return {
        "summary": summary.as_row(),
        "metrics": registry.snapshot(),
        # The four reduction percentages are exactly the Figure 16 series
        # (mean/median/95th/99th vs the best single server); frac_later and
        # tail_improvement are the Figure 15 CDF-tail quantities.
        "scalars": {
            "mean_ms": summary.mean * 1000.0,
            "mean_reduction_pct": results.reduction_percent["mean"][copies],
            "median_reduction_pct": results.reduction_percent["median"][copies],
            "p95_reduction_pct": results.reduction_percent["p95"][copies],
            "p99_reduction_pct": results.reduction_percent["p99"][copies],
            "frac_later": results.fraction_later_than(threshold_s, copies),
            "tail_improvement": (
                None
                if copies == 1 or not np.isfinite(results.tail_improvement(threshold_s, copies))
                else float(results.tail_improvement(threshold_s, copies))
            ),
        },
    }


def run_handshake(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One copy-count (or policy) point of the Section 3.1 TCP-handshake model.

    Params: ``copies`` or ``policy`` (``"none"``, ``"k2"``, or deferred
    ``"hedge:<delay>"``), ``rtt``, ``num_samples``.
    """
    from repro.wan import HandshakeModel

    model = HandshakeModel(rtt=float(params.get("rtt", 0.05)))
    num_samples = int(params.get("num_samples", 50_000))
    policy = params.get("policy")
    if policy is not None:
        samples, backups = model.sample_completion_times_policy(
            policy, num_samples, np.random.default_rng(seed)
        )
        registry = MetricsRegistry("handshake")
        registry.counter("handshakes").increment(num_samples)
        registry.counter("backup_packets").increment(int(backups))
        registry.recorder("completion_time").record_many(samples)
        return {
            "summary": _summary_row(samples, "handshake"),
            "metrics": registry.snapshot(),
            "scalars": {
                "loss_probability": model.loss_probability(1),
                "backup_packets_per_handshake": backups / num_samples,
            },
        }

    copies = int(params.get("copies", 2))
    samples = model.sample_completion_times(
        copies, num_samples, np.random.default_rng(seed)
    )
    registry = MetricsRegistry("handshake")
    registry.counter("handshakes").increment(num_samples)
    registry.recorder("completion_time").record_many(samples)
    return {
        "summary": _summary_row(samples, "handshake"),
        "metrics": registry.snapshot(),
        "scalars": {
            "loss_probability": model.loss_probability(copies),
            "expected_completion_s": model.expected_completion_time(copies),
            "expected_savings_s": model.expected_savings(copies) if copies > 1 else 0.0,
        },
    }


# --------------------------------------------------------------------------- #
# Beyond the paper: redundant job pipelines (repro.pipeline)
# --------------------------------------------------------------------------- #


def run_pipeline(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One policy point of the straggler-hedged job-pipeline substrate.

    Params: ``policy`` (any spec; applied per chunk), ``num_jobs``,
    ``num_workers``, ``num_chunks`` (first-stage chunk count; later stages
    shrink with ``output_ratio``), ``num_stages``, ``output_ratio``,
    ``chunk_alpha`` (chunk-size tail index), ``straggler_alpha`` (machine
    tail index), ``seconds_per_unit``, ``total_work``, ``fail_prob`` and
    ``restart_s``.  The summary row is over *job completion times* (the
    fan-in max, not per-request latencies); ``wasted_work_fraction`` is the
    cost axis of the completion-time-vs-waste frontier.

    Note: ``policy`` stays a spec here (no legacy ``copies`` rewrite) — the
    pipeline substrate has no historical integer-copies parameter.
    """
    from repro.pipeline import (
        JobSpec,
        PipelineConfig,
        PipelineExperiment,
        StageSpec,
        WorkerPool,
    )

    num_stages = int(params.get("num_stages", 1))
    num_chunks = int(params.get("num_chunks", 32))
    output_ratio = float(params.get("output_ratio", 0.5))
    chunk_alpha = float(params.get("chunk_alpha", 1.6))
    stages = []
    for stage_index in range(num_stages):
        chunks = max(1, int(round(num_chunks * output_ratio**stage_index)))
        stages.append(
            StageSpec(
                num_chunks=chunks, size_alpha=chunk_alpha, output_ratio=output_ratio
            )
        )
    config = PipelineConfig(
        job=JobSpec(total_work=float(params.get("total_work", 100.0)), stages=stages),
        pool=WorkerPool(
            num_workers=int(params.get("num_workers", 16)),
            seconds_per_unit=float(params.get("seconds_per_unit", 0.02)),
            straggler_alpha=float(params.get("straggler_alpha", 1.5)),
            fail_probability=float(params.get("fail_prob", 0.0)),
            restart_s=float(params.get("restart_s", 1.0)),
        ),
        policy=params.get("policy", "none"),
        num_jobs=int(params.get("num_jobs", 150)),
        seed=seed,
    )
    result = PipelineExperiment(config).run()
    scalars: Dict[str, Any] = {
        "wasted_work_fraction": result.wasted_work_fraction,
        "useful_work_s": result.useful_work_s,
        "wasted_work_s": result.wasted_work_s,
        "copies_per_chunk": result.copies_per_chunk,
        "cancelled_per_chunk": (
            result.copies_cancelled / result.chunks if result.chunks else 0.0
        ),
    }
    for stage_index in range(result.num_stages):
        scalars[f"stage{stage_index}_makespan_mean_s"] = float(
            np.mean(result.stage_makespan_s[:, stage_index])
        )
    # result.path (event vs fast) is deliberately NOT reported: artifacts
    # must be byte-identical across REPRO_PIPELINE_PATH (CI cmps them).
    return {
        "summary": result.summary().as_row(),
        "metrics": result.metrics,
        "scalars": scalars,
    }


#: Registry of picklable entry points, keyed by the name scenarios use.
ADAPTERS: Dict[str, Callable[[Dict[str, Any], int], Dict[str, Any]]] = {
    "queueing": run_queueing,
    "queueing_paired": run_queueing_paired,
    "database": run_database,
    "memcached": run_memcached,
    "fattree": run_fattree,
    "dns": run_dns,
    "handshake": run_handshake,
    "pipeline": run_pipeline,
}


def resolve_adapter(entry_point: str) -> Callable[[Dict[str, Any], int], Dict[str, Any]]:
    """Look up an adapter by entry-point name.

    Raises:
        ConfigurationError: If the name is not registered.
    """
    adapter = ADAPTERS.get(entry_point)
    if adapter is None:
        raise ConfigurationError(
            f"unknown entry point {entry_point!r}; known: {sorted(ADAPTERS)}"
        )
    return adapter
