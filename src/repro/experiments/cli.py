"""Command-line interface of the experiments subsystem.

::

    python -m repro.experiments list
    python -m repro.experiments show <scenario>
    python -m repro.experiments run <scenario> --workers 4 --out results.json

``run`` prints a compact result table and optionally writes the canonical
JSON/CSV artifacts.  Because per-point seeds depend only on the scenario and
the point parameters, the written artifacts are byte-identical for any
``--workers`` value.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import ResultTable
from repro.exceptions import ConfigurationError, ReproError
from repro.experiments.registry import all_scenarios, get_scenario
from repro.experiments.results import SweepResult
from repro.experiments.runner import SweepRunner


def _parse_override(text: str) -> tuple:
    """Parse one ``--set key=value`` pair; values are Python literals or strings."""
    if "=" not in text:
        raise ConfigurationError(f"--set expects key=value, got {text!r}")
    key, raw = text.split("=", 1)
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key.strip(), value


def _overrides(pairs: Optional[Sequence[str]]) -> Dict[str, Any]:
    return dict(_parse_override(pair) for pair in pairs or ())


def _summary_table(result: SweepResult) -> ResultTable:
    """A one-row-per-point overview table of a sweep."""
    axis_names = list(result.axes)
    columns = axis_names + ["status", "mean", "p99"]
    table = ResultTable(columns, title=f"scenario {result.scenario!r} ({len(result.points)} points)")
    for point in result.points:
        row: Dict[str, Any] = {name: point.params.get(name) for name in axis_names}
        row["status"] = point.status
        summary = point.summary or {}
        row["mean"] = summary.get("mean")
        row["p99"] = summary.get("p99")
        table.add_row(**row)
    return table


def cmd_list(_args: argparse.Namespace) -> int:
    table = ResultTable(["scenario", "entry point", "points", "description"])
    for scenario in all_scenarios():
        table.add_row(**{
            "scenario": scenario.name,
            "entry point": scenario.entry_point,
            "points": scenario.num_points(),
            "description": scenario.description,
        })
    print(table.to_text())
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    print(f"name:        {scenario.name}")
    print(f"entry point: {scenario.entry_point}")
    print(f"description: {scenario.description}")
    print(f"seed:        {scenario.seed}")
    print(f"base params: {scenario.base_params}")
    print(f"grid:        {scenario.grid!r}")
    for name, values in scenario.grid.axes.items():
        print(f"  {name}: {values}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    runner = SweepRunner(workers=args.workers)
    result = runner.run(scenario, overrides=_overrides(args.set), seed=args.seed)
    if not args.quiet:
        print(_summary_table(result).to_text())
        infeasible = [p for p in result.points if not p.ok]
        if infeasible:
            print(f"({len(infeasible)} point(s) infeasible — saturated, skipped)")
    if args.out:
        result.to_json(args.out)
        if not args.quiet:
            print(f"wrote JSON artifact: {args.out}")
    if args.csv:
        result.to_csv(args.csv)
        if not args.quiet:
            print(f"wrote CSV artifact: {args.csv}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.experiments`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run declarative scenario sweeps across the repro substrates.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios").set_defaults(func=cmd_list)

    show = sub.add_parser("show", help="describe one scenario")
    show.add_argument("scenario")
    show.set_defaults(func=cmd_show)

    run = sub.add_parser("run", help="execute a scenario sweep")
    run.add_argument("scenario")
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = inline; results identical either way)",
    )
    run.add_argument("--out", help="write the JSON artifact to this path")
    run.add_argument("--csv", help="write a flattened CSV artifact to this path")
    run.add_argument("--seed", type=int, default=None, help="override the scenario's base seed")
    run.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="override a base parameter (repeatable), e.g. --set num_requests=1000",
    )
    run.add_argument("--quiet", action="store_true", help="suppress the result table")
    run.set_defaults(func=cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
