"""Command-line interface of the experiments subsystem.

::

    python -m repro.experiments list [--tier paper]
    python -m repro.experiments show <scenario>
    python -m repro.experiments run <scenario> --workers 4 --out results.jsonl [--resume]
    python -m repro.experiments diff golden.json fresh.jsonl

``run`` prints a compact result table and optionally writes artifacts: a
``--out`` path ending in ``.jsonl`` streams each completed point to disk as
the sweep runs (resumable after a kill with ``--resume``); ``.json`` writes
the canonical whole-file artifact at the end.  Because per-point seeds depend
only on the scenario and the point parameters, the written artifacts are
byte-identical for any ``--workers``/``--chunk-size`` value and any resume
history.  ``diff`` loads two artifacts (either layout) and prints the
paper-vs-measured comparison table.  ``EXPERIMENTS.md`` maps every paper
figure to its scenario and exact command.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import ResultTable
from repro.exceptions import ConfigurationError, ReproError
from repro.experiments.registry import all_scenarios, get_scenario
from repro.experiments.results import SweepResult, load_sweep_artifact
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import TIERS


def _parse_override(text: str) -> tuple:
    """Parse one ``--set key=value`` pair; values are Python literals or strings."""
    if "=" not in text:
        raise ConfigurationError(f"--set expects key=value, got {text!r}")
    key, raw = text.split("=", 1)
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key.strip(), value


def _overrides(pairs: Optional[Sequence[str]]) -> Dict[str, Any]:
    return dict(_parse_override(pair) for pair in pairs or ())


def _comma_list(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    items = [item.strip() for item in text.split(",") if item.strip()]
    return items or None


def _summary_table(result: SweepResult) -> ResultTable:
    """A one-row-per-point overview table of a sweep."""
    axis_names = list(result.axes)
    columns = axis_names + ["status", "mean", "p99"]
    table = ResultTable(columns, title=f"scenario {result.scenario!r} ({len(result.points)} points)")
    for point in result.points:
        row: Dict[str, Any] = {name: point.params.get(name) for name in axis_names}
        row["status"] = point.status
        summary = point.summary or {}
        row["mean"] = summary.get("mean")
        row["p99"] = summary.get("p99")
        table.add_row(**row)
    return table


def cmd_list(args: argparse.Namespace) -> int:
    table = ResultTable(["scenario", "tier", "entry point", "points", "description"])
    for scenario in all_scenarios(tier=args.tier):
        table.add_row(**{
            "scenario": scenario.name,
            "tier": scenario.tier,
            "entry point": scenario.entry_point,
            "points": scenario.num_points(),
            "description": scenario.description,
        })
    print(table.to_text())
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    print(f"name:        {scenario.name}")
    print(f"tier:        {scenario.tier}")
    print(f"entry point: {scenario.entry_point}")
    print(f"description: {scenario.description}")
    print(f"seed:        {scenario.seed}")
    print(f"base params: {scenario.base_params}")
    print(f"grid:        {scenario.grid!r}")
    for name, values in scenario.grid.axes.items():
        print(f"  {name}: {values}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    streaming = bool(args.out and args.out.endswith(".jsonl"))
    if args.resume and not streaming:
        raise ConfigurationError(
            "--resume needs a streaming artifact: pass --out <path>.jsonl "
            "(the whole-file .json artifact is only written when a run finishes, "
            "so there is nothing to resume from)"
        )
    runner = SweepRunner(workers=args.workers, chunk_size=args.chunk_size)
    progress = None
    if streaming and not args.quiet:
        def progress(done: int, total: int) -> None:
            print(f"  [{done}/{total}] points in artifact", flush=True)
    result = runner.run(
        scenario,
        overrides=_overrides(args.set),
        seed=args.seed,
        out=args.out if streaming else None,
        resume=args.resume,
        progress=progress,
    )
    if not args.quiet:
        print(_summary_table(result).to_text())
        infeasible = [p for p in result.points if not p.ok]
        if infeasible:
            print(f"({len(infeasible)} point(s) infeasible — saturated, skipped)")
    if args.out:
        if not streaming:
            result.to_json(args.out)
        if not args.quiet:
            kind = "JSONL (streamed)" if streaming else "JSON"
            print(f"wrote {kind} artifact: {args.out}")
    if args.csv:
        result.to_csv(args.csv)
        if not args.quiet:
            print(f"wrote CSV artifact: {args.csv}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    labels = _comma_list(args.labels) or []
    if len(labels) != 2:
        raise ConfigurationError(f"--labels expects two comma-separated names, got {args.labels!r}")
    base = load_sweep_artifact(args.artifact_a)
    other = load_sweep_artifact(args.artifact_b)
    diff = base.diff(other, labels=(labels[0], labels[1]))
    table = diff.to_table(
        columns=_comma_list(args.columns), key_columns=_comma_list(args.keys)
    )
    print(table.to_text())
    if diff.only_base or diff.only_other:
        print(
            f"(unmatched points: {len(diff.only_base)} only in {labels[0]}, "
            f"{len(diff.only_other)} only in {labels[1]})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.experiments`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run declarative scenario sweeps across the repro substrates.",
        epilog=(
            "See EXPERIMENTS.md for the figure-by-figure reproduction guide "
            "mapping every paper figure to a scenario and command."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser(
        "list",
        help="list registered scenarios",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  python -m repro.experiments list\n"
            "  python -m repro.experiments list --tier paper\n"
        ),
    )
    list_cmd.add_argument(
        "--tier", choices=TIERS, default=None,
        help="only scenarios of this tier (smoke = CI, standard = default, "
             "paper = full paper scale)",
    )
    list_cmd.set_defaults(func=cmd_list)

    show = sub.add_parser(
        "show",
        help="describe one scenario",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  python -m repro.experiments show dns-best-k\n"
            "  python -m repro.experiments show paper-fattree-k6\n"
        ),
    )
    show.add_argument("scenario")
    show.set_defaults(func=cmd_show)

    run = sub.add_parser(
        "run",
        help="execute a scenario sweep",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  # quick look at a standard-tier sweep\n"
            "  python -m repro.experiments run queueing-threshold --workers 4\n"
            "  # paper-scale run, streamed to a resumable JSONL artifact\n"
            "  python -m repro.experiments run paper-dns-matrix --workers 4 \\\n"
            "      --out dns-matrix.jsonl\n"
            "  # ...killed half-way?  finish only the missing points:\n"
            "  python -m repro.experiments run paper-dns-matrix --workers 8 \\\n"
            "      --out dns-matrix.jsonl --resume\n"
            "  # smoke-size any scenario by overriding base parameters\n"
            "  python -m repro.experiments run database-ec2 --set num_requests=1000\n"
        ),
    )
    run.add_argument("scenario")
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = inline; results identical either way)",
    )
    run.add_argument(
        "--chunk-size", type=int, default=None,
        help="points submitted to the pool per batch; affects only pacing and "
             "how much work a kill can lose, never the results",
    )
    run.add_argument(
        "--out",
        help="write an artifact here: a .jsonl path streams points as they "
             "complete (resumable), any other path gets canonical JSON at the end",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="reuse completed points from an existing --out .jsonl artifact "
             "and execute only the missing ones (final bytes identical to an "
             "uninterrupted run)",
    )
    run.add_argument("--csv", help="write a flattened CSV artifact to this path")
    run.add_argument("--seed", type=int, default=None, help="override the scenario's base seed")
    run.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="override a base parameter (repeatable), e.g. --set num_requests=1000",
    )
    run.add_argument("--quiet", action="store_true", help="suppress the result table")
    run.set_defaults(func=cmd_run)

    diff = sub.add_parser(
        "diff",
        help="compare two sweep artifacts point-by-point",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  # golden (paper) artifact vs a fresh measured run\n"
            "  python -m repro.experiments diff golden.json fresh.jsonl\n"
            "  # pick the compared columns and the identifying key columns\n"
            "  python -m repro.experiments diff a.json b.json \\\n"
            "      --columns mean,p99,benefit --keys load,copies\n"
        ),
    )
    diff.add_argument("artifact_a", help="reference artifact (.json or .jsonl)")
    diff.add_argument("artifact_b", help="artifact compared against it (.json or .jsonl)")
    diff.add_argument(
        "--columns", default=None,
        help="comma-separated value columns to compare (default: mean,p99)",
    )
    diff.add_argument(
        "--keys", default=None,
        help="comma-separated identifying columns (default: the grid axes)",
    )
    diff.add_argument(
        "--labels", default="paper,measured",
        help="comma-separated labels of the two sides (default: paper,measured)",
    )
    diff.set_defaults(func=cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
