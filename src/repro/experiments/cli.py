"""Command-line interface of the experiments subsystem.

::

    python -m repro.experiments list [--tier paper]
    python -m repro.experiments show <scenario>
    python -m repro.experiments run <scenario> --workers 4 --out results.jsonl [--resume]
    python -m repro.experiments run <scenario> --shard 2/3 --out shard2.jsonl
    python -m repro.experiments merge merged.jsonl shard1.jsonl shard2.jsonl shard3.jsonl
    python -m repro.experiments timing-report shard1.jsonl.timing.jsonl [...]
    python -m repro.experiments diff golden.json fresh.jsonl

``run`` prints a compact result table and optionally writes artifacts: a
``--out`` path ending in ``.jsonl`` streams each completed point to disk as
the sweep runs (resumable after a kill with ``--resume``); ``.json`` writes
the canonical whole-file artifact at the end.  Because per-point seeds depend
only on the scenario and the point parameters, the written artifacts are
byte-identical for any ``--workers``/``--chunk-size`` value and any resume
history.  ``--shard I/N`` extends the same contract across machines: N hosts
each run one shard of the grid (a deterministic seed-based partition, no
coordination) and ``merge`` recombines the shard artifacts into a file
byte-identical to the single-machine run.  Every streamed run also writes a
wall-clock **timing sidecar** (``<out>.timing.jsonl``) that ``timing-report``
tabulates — slowest points, per-shard totals — while the canonical artifact
itself stays timing-free.  ``diff`` loads two artifacts (either layout) and
prints the paper-vs-measured comparison table.  ``EXPERIMENTS.md`` maps every
paper figure to its scenario and exact command.
"""

from __future__ import annotations

import argparse
import ast
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.tables import ResultTable
from repro.exceptions import ConfigurationError, ReproError
from repro.flags import reject_unknown_flags
from repro.experiments.registry import all_scenarios, get_scenario
from repro.experiments.results import SweepResult, load_sweep_artifact
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import TIERS
from repro.experiments.sharding import merge_artifacts, parse_shard
from repro.experiments.timing import load_timing, sidecar_label, timing_sidecar_path


def _parse_override(text: str) -> tuple:
    """Parse one ``--set key=value`` pair; values are Python literals or strings."""
    if "=" not in text:
        raise ConfigurationError(f"--set expects key=value, got {text!r}")
    key, raw = text.split("=", 1)
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key.strip(), value


def _overrides(pairs: Optional[Sequence[str]]) -> Dict[str, Any]:
    return dict(_parse_override(pair) for pair in pairs or ())


def _comma_list(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    items = [item.strip() for item in text.split(",") if item.strip()]
    return items or None


def _axis_value(point, name: str) -> Any:
    """A point's value for one grid axis, for display.

    Eager ``policy`` axis values are normalised into the substrate's legacy
    parameter before execution (``"k2"`` → ``copies=2``), so reconstruct the
    spec for display rather than showing a blank.
    """
    value = point.params.get(name)
    if value is None and name == "policy":
        copies = point.params.get("copies")
        if copies is not None:
            return "none" if int(copies) == 1 else f"k{int(copies)}"
        replication = point.params.get("replication")
        if replication is not None:
            return "k2" if replication else "none"
    return value


def _summary_table(result: SweepResult) -> ResultTable:
    """A one-row-per-point overview table of a sweep."""
    axis_names = list(result.axes)
    columns = axis_names + ["status", "mean", "p99"]
    table = ResultTable(columns, title=f"scenario {result.scenario!r} ({len(result.points)} points)")
    for point in result.points:
        row: Dict[str, Any] = {name: _axis_value(point, name) for name in axis_names}
        row["status"] = point.status
        summary = point.summary or {}
        row["mean"] = summary.get("mean")
        row["p99"] = summary.get("p99")
        table.add_row(**row)
    return table


def cmd_list(args: argparse.Namespace) -> int:
    table = ResultTable(["scenario", "tier", "entry point", "points", "description"])
    for scenario in all_scenarios(tier=args.tier):
        table.add_row(**{
            "scenario": scenario.name,
            "tier": scenario.tier,
            "entry point": scenario.entry_point,
            "points": scenario.num_points(),
            "description": scenario.description,
        })
    print(table.to_text())
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    print(f"name:        {scenario.name}")
    print(f"tier:        {scenario.tier}")
    print(f"entry point: {scenario.entry_point}")
    print(f"description: {scenario.description}")
    print(f"seed:        {scenario.seed}")
    print(f"base params: {scenario.base_params}")
    print(f"grid:        {scenario.grid!r}")
    for name, values in scenario.grid.axes.items():
        print(f"  {name}: {values}")
    return 0


def _format_duration(seconds: float) -> str:
    """``73`` → ``"1m13s"``; sub-minute values render as plain seconds."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _format_elapsed(seconds: float) -> str:
    """Sub-minute values keep 3 significant digits; longer ones use 1m13s form."""
    return f"{seconds:.3g}s" if seconds < 60 else _format_duration(seconds)


def _make_progress(stream=None) -> Callable[[int, int], None]:
    """A live ``[done/total] pct · elapsed · eta`` progress line.

    The rate (and therefore the ETA) is computed over points *executed this
    run*: a resumed run's cached prefix arrives in the first callback and is
    excluded, so the ETA reflects the remaining work, not the artifact's
    history.  On a terminal the line redraws in place; on a pipe (CI logs)
    each update is a plain line.
    """
    stream = stream if stream is not None else sys.stdout
    interactive = bool(getattr(stream, "isatty", lambda: False)())
    state: Dict[str, float] = {}

    def progress(done: int, total: int) -> None:
        now = time.monotonic()
        if "start" in state:
            elapsed = now - state["start"]
            executed = done - state["cached"]
        else:
            state["start"], state["cached"] = now, float(done)
            elapsed, executed = 0.0, 0.0
        pct = 100.0 * done / total if total else 100.0
        line = f"  [{done}/{total}] {pct:3.0f}% · elapsed {_format_duration(elapsed)}"
        if done >= total:
            line += " · done"
        elif executed > 0 and elapsed > 0:
            eta = (total - done) * elapsed / executed
            line += f" · eta {_format_duration(eta)}"
        if interactive:
            end = "\n" if done >= total else ""
            print(f"\r\x1b[2K{line}", end=end, file=stream, flush=True)
        else:
            print(line, file=stream, flush=True)

    return progress


def cmd_run(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    streaming = bool(args.out and args.out.endswith(".jsonl"))
    if args.resume and not streaming:
        raise ConfigurationError(
            "--resume needs a streaming artifact: pass --out <path>.jsonl "
            "(the whole-file .json artifact is only written when a run finishes, "
            "so there is nothing to resume from)"
        )
    shard = parse_shard(args.shard) if args.shard else None
    if shard is not None and args.out and not streaming:
        raise ConfigurationError(
            "--shard artifacts must stream to a .jsonl --out path: shards are "
            "partial by construction and `merge` recombines the streaming "
            "layout (got --out " + repr(args.out) + ")"
        )
    runner = SweepRunner(workers=args.workers, chunk_size=args.chunk_size)
    progress = None if args.quiet else _make_progress()
    result = runner.run(
        scenario,
        overrides=_overrides(args.set),
        seed=args.seed,
        out=args.out if streaming else None,
        resume=args.resume,
        progress=progress,
        shard=shard,
    )
    if not args.quiet:
        if shard is not None:
            print(
                f"shard {shard[0]}/{shard[1]}: {len(result.points)} of "
                f"{scenario.num_points()} grid points"
            )
        print(_summary_table(result).to_text())
        infeasible = [p for p in result.points if not p.ok]
        if infeasible:
            print(f"({len(infeasible)} point(s) infeasible — saturated, skipped)")
    if args.out:
        if not streaming:
            result.to_json(args.out)
        if not args.quiet:
            kind = "JSONL (streamed)" if streaming else "JSON"
            print(f"wrote {kind} artifact: {args.out}")
            if streaming:
                print(f"wrote timing sidecar: {timing_sidecar_path(args.out)}")
    if args.csv:
        result.to_csv(args.csv)
        if not args.quiet:
            print(f"wrote CSV artifact: {args.csv}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one grid point under cProfile and print the cumulative-time table."""
    import cProfile
    import pstats

    scenario = get_scenario(args.scenario)
    if args.set:
        scenario = scenario.with_overrides(base_params=_overrides(args.set))
    from repro.experiments.adapters import normalize_point_params, resolve_adapter
    from repro.experiments.scenario import point_seed

    points = [
        normalize_point_params(scenario.entry_point, point, axes=scenario.grid.axes)
        for point in scenario.points()
    ]
    if not 0 <= args.point < len(points):
        raise ConfigurationError(
            f"--point must be in [0, {len(points)}) for scenario "
            f"{scenario.name!r}, got {args.point}"
        )
    params = points[args.point]
    seed = point_seed(scenario.seed, scenario.name, params)
    adapter = resolve_adapter(scenario.entry_point)
    shown = " ".join(f"{key}={value}" for key, value in sorted(params.items()))
    print(f"profiling {scenario.name!r} point {args.point}/{len(points)}: {shown}")
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    adapter(params, seed)
    profiler.disable()
    elapsed = time.perf_counter() - started
    print(f"point wall-clock: {elapsed:.3f}s")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    summary = merge_artifacts(args.out, args.shards)
    deduped = (
        f", {summary['duplicates']} duplicate point(s) deduplicated"
        if summary["duplicates"]
        else ""
    )
    print(
        f"merged {summary['inputs']} artifact(s) of scenario "
        f"{summary['scenario']!r} -> {args.out}: {summary['points']} points"
        f"{deduped}"
    )
    print(
        "(bytes are identical to a single-machine run of the scenario; "
        "verify with cmp, or diff --fail-threshold 0 against a golden artifact)"
    )
    return 0


def cmd_timing_report(args: argparse.Namespace) -> int:
    if args.top < 1:
        raise ConfigurationError(f"--top must be >= 1, got {args.top!r}")
    loaded = [(path,) + load_timing(path) for path in args.sidecars]
    # One report covers one sweep: pooling sidecars of different scenarios
    # under colliding "shard I/N" labels would silently mislead.
    scenarios = sorted({header.get("scenario") for _path, header, _r in loaded})
    if len(scenarios) > 1:
        offenders = ", ".join(
            (
                f"{path!r} ({sidecar_label(header, path)}): "
                if header.get("shard")
                else f"{path!r}: "
            )
            + f"{header.get('scenario')!r}"
            for path, header, _records in loaded
        )
        raise ConfigurationError(
            f"timing-report covers one sweep at a time, but these sidecars "
            f"span scenarios {scenarios} — {offenders}; run one report per "
            f"scenario"
        )

    totals = ResultTable(
        ["shard", "points", "total", "mean/point", "max"],
        title=f"per-shard wall-clock totals ({len(loaded)} sidecar(s))",
    )
    entries = []  # (elapsed, label, record) across all sidecars
    for path, header, records in loaded:
        label = sidecar_label(header, path)
        axes = header.get("axes") or []
        elapsed = [float(r["elapsed_s"]) for r in records]
        totals.add_row(**{
            "shard": label,
            "points": len(records),
            "total": _format_elapsed(sum(elapsed)) if records else "-",
            "mean/point": _format_elapsed(sum(elapsed) / len(records)) if records else "-",
            "max": _format_elapsed(max(elapsed)) if records else "-",
        })
        for record in records:
            entries.append((float(record["elapsed_s"]), label, axes, record))
    print(totals.to_text())

    entries.sort(key=lambda entry: -entry[0])
    slowest = ResultTable(
        ["elapsed", "shard", "index", "point", "status"],
        title=f"slowest points (top {min(args.top, len(entries))} of {len(entries)})",
    )
    for elapsed, label, axes, record in entries[: args.top]:
        params = record.get("params") or {}
        shown = {name: params.get(name) for name in axes} if axes else params
        slowest.add_row(**{
            "elapsed": _format_elapsed(elapsed),
            "shard": label,
            "index": record.get("index"),
            "point": " ".join(f"{k}={v}" for k, v in shown.items()) or "-",
            "status": record.get("status"),
        })
    print()
    print(slowest.to_text())
    if not entries:
        print(
            "(no timing records: the runs behind these sidecars executed no "
            "points — fully cached --resume, or an empty shard)"
        )
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    labels = _comma_list(args.labels) or []
    if len(labels) != 2:
        raise ConfigurationError(f"--labels expects two comma-separated names, got {args.labels!r}")
    if args.fail_threshold is not None and args.fail_threshold < 0:
        raise ConfigurationError(
            f"--fail-threshold must be >= 0, got {args.fail_threshold!r}"
        )
    base = load_sweep_artifact(args.artifact_a)
    other = load_sweep_artifact(args.artifact_b)
    diff = base.diff(other, labels=(labels[0], labels[1]))
    columns = _comma_list(args.columns)
    table = diff.to_table(columns=columns, key_columns=_comma_list(args.keys))
    print(table.to_text())
    if diff.only_base or diff.only_other:
        print(
            f"(unmatched points: {len(diff.only_base)} only in {labels[0]}, "
            f"{len(diff.only_other)} only in {labels[1]})"
        )
    if args.fail_threshold is None:
        return 0
    # Gate mode: exit non-zero when any compared value moved by more than the
    # threshold (or when the grids do not even pair up), so CI can fail on
    # regressions in the measured numbers rather than on table rendering.
    worst = (None, "", 0.0, 0.0, -1.0)
    compared = 0
    for entry in diff.relative_deltas(columns):
        compared += 1
        if entry[4] > worst[4]:
            worst = entry
    unmatched = len(diff.only_base) + len(diff.only_other)
    # A gate that compared nothing must fail loudly: a typo'd --columns name
    # (every pair skipped as missing/non-numeric) would otherwise read as a
    # permanently green regression check.
    failed = worst[4] > args.fail_threshold or unmatched > 0 or compared == 0
    if worst[4] >= 0:
        params, name, base_value, other_value, pct = worst
        print(
            f"largest delta: {name} {base_value:g} -> {other_value:g} "
            f"({pct:.4g}% at {params}); threshold {args.fail_threshold:g}%",
            file=sys.stderr if failed else sys.stdout,
        )
    if failed:
        if compared == 0:
            print(
                "FAIL: no numeric value pairs were compared — check --columns "
                f"({(columns or list(diff.DEFAULT_COLUMNS))!r}) against the "
                "artifacts' scalars/summary fields",
                file=sys.stderr,
            )
        elif unmatched:
            print(f"FAIL: {unmatched} unmatched point(s)", file=sys.stderr)
        else:
            print(
                f"FAIL: delta exceeds --fail-threshold {args.fail_threshold:g}%",
                file=sys.stderr,
            )
        return 1
    print(f"OK: all {compared} deltas within {args.fail_threshold:g}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.experiments`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run declarative scenario sweeps across the repro substrates.",
        epilog=(
            "See EXPERIMENTS.md for the figure-by-figure reproduction guide "
            "mapping every paper figure to a scenario and command."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser(
        "list",
        help="list registered scenarios",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  python -m repro.experiments list\n"
            "  python -m repro.experiments list --tier paper\n"
        ),
    )
    list_cmd.add_argument(
        "--tier", choices=TIERS, default=None,
        help="only scenarios of this tier (smoke = CI, standard = default, "
             "paper = full paper scale)",
    )
    list_cmd.set_defaults(func=cmd_list)

    show = sub.add_parser(
        "show",
        help="describe one scenario",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  python -m repro.experiments show dns-best-k\n"
            "  python -m repro.experiments show paper-fattree-k6\n"
        ),
    )
    show.add_argument("scenario")
    show.set_defaults(func=cmd_show)

    run = sub.add_parser(
        "run",
        help="execute a scenario sweep (optionally one shard of it)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  # quick look at a standard-tier sweep\n"
            "  python -m repro.experiments run queueing-threshold --workers 4\n"
            "  # paper-scale run, streamed to a resumable JSONL artifact\n"
            "  python -m repro.experiments run paper-dns-matrix --workers 4 \\\n"
            "      --out dns-matrix.jsonl\n"
            "  # ...killed half-way?  finish only the missing points:\n"
            "  python -m repro.experiments run paper-dns-matrix --workers 8 \\\n"
            "      --out dns-matrix.jsonl --resume\n"
            "  # split the same sweep across 3 machines (this is machine 2);\n"
            "  # `merge` later recombines the shards byte-identically\n"
            "  python -m repro.experiments run paper-dns-matrix --shard 2/3 \\\n"
            "      --out dns-shard2.jsonl\n"
            "  # smoke-size any scenario by overriding base parameters\n"
            "  python -m repro.experiments run database-ec2 --set num_requests=1000\n"
            "  # re-policy a scenario: hedge at the observed 95th percentile\n"
            "  # instead of the base parameters' eager copies\n"
            "  python -m repro.experiments run queueing-threshold --set policy=hedge:p95\n"
            "\n"
            "a .jsonl --out also writes <out>.timing.jsonl — per-point wall-clock\n"
            "timing for `timing-report`; the canonical artifact stays timing-free.\n"
        ),
    )
    run.add_argument("scenario")
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = inline; results identical either way)",
    )
    run.add_argument(
        "--chunk-size", type=int, default=None,
        help="points submitted to the pool per batch; affects only pacing and "
             "how much work a kill can lose, never the results",
    )
    run.add_argument(
        "--out",
        help="write an artifact here: a .jsonl path streams points as they "
             "complete (resumable), any other path gets canonical JSON at the end",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="reuse completed points from an existing --out .jsonl artifact "
             "and execute only the missing ones (final bytes identical to an "
             "uninterrupted run)",
    )
    run.add_argument(
        "--shard", metavar="I/N", default=None,
        help="execute only shard I of N (1-based) — a deterministic, "
             "seed-derived partition of the grid, so N machines can split one "
             "sweep with no coordination; requires a .jsonl --out (or none), "
             "and `merge` recombines the shard artifacts byte-identically; "
             "1/1 means no sharding",
    )
    run.add_argument("--csv", help="write a flattened CSV artifact to this path")
    run.add_argument("--seed", type=int, default=None, help="override the scenario's base seed")
    run.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="override a base parameter (repeatable), e.g. --set num_requests=1000",
    )
    run.add_argument("--quiet", action="store_true", help="suppress the result table")
    run.set_defaults(func=cmd_run)

    profile = sub.add_parser(
        "profile",
        help="run one grid point under cProfile (find the hot path of a slow sweep)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description=(
            "Execute exactly one grid point of a scenario under cProfile and "
            "print the cumulative-time table.  Pair it with `timing-report` "
            "(which names the slowest points of a recorded sweep) to see "
            "*why* a point is slow; the profiled run uses the identical "
            "normalised parameters and derived seed as the sweep, so the "
            "profile reflects the real artifact-producing code path."
        ),
        epilog=(
            "examples:\n"
            "  python -m repro.experiments profile queueing-smoke --point 0\n"
            "  python -m repro.experiments profile paper-database-ec2 --point 17 --top 15\n"
        ),
    )
    profile.add_argument("scenario")
    profile.add_argument(
        "--point", type=int, default=0,
        help="grid index of the point to profile (0-based, grid order; "
             "`timing-report` prints these indices)",
    )
    profile.add_argument(
        "--top", type=int, default=25,
        help="number of rows of the cumulative-time table to print",
    )
    profile.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="override a base parameter (repeatable), e.g. --set num_requests=1000",
    )
    profile.set_defaults(func=cmd_profile)

    diff = sub.add_parser(
        "diff",
        help="compare two sweep artifacts point-by-point",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  # golden (paper) artifact vs a fresh measured run\n"
            "  python -m repro.experiments diff golden.json fresh.jsonl\n"
            "  # pick the compared columns and the identifying key columns\n"
            "  python -m repro.experiments diff a.json b.json \\\n"
            "      --columns mean,p99,benefit --keys load,copies\n"
            "  # CI gate: fail (exit 1) on any >2% regression in the numbers\n"
            "  python -m repro.experiments diff golden.json fresh.json \\\n"
            "      --fail-threshold 2\n"
        ),
    )
    diff.add_argument("artifact_a", help="reference artifact (.json or .jsonl)")
    diff.add_argument("artifact_b", help="artifact compared against it (.json or .jsonl)")
    diff.add_argument(
        "--columns", default=None,
        help="comma-separated value columns to compare (default: mean,p99)",
    )
    diff.add_argument(
        "--keys", default=None,
        help="comma-separated identifying columns (default: the grid axes)",
    )
    diff.add_argument(
        "--labels", default="paper,measured",
        help="comma-separated labels of the two sides (default: paper,measured)",
    )
    diff.add_argument(
        "--fail-threshold", type=float, default=None, metavar="PCT",
        help="gate mode: exit 1 if any compared value differs by more than "
             "PCT percent (or if the artifacts have unmatched points) — lets "
             "CI fail on regressions in measured numbers; 0 demands exact "
             "agreement",
    )
    diff.set_defaults(func=cmd_diff)

    merge = sub.add_parser(
        "merge",
        help="recombine shard artifacts into one byte-identical artifact",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description=(
            "Merge the streaming artifacts of a sharded sweep (`run --shard "
            "I/N`) into one complete artifact.  The output is byte-identical "
            "to what a single-machine run of the scenario would have written "
            "(pinned by CI with cmp): point records are already canonical and "
            "carry global grid indices, so merging is a re-sorted union.  "
            "Inputs may arrive in any order and may overlap (identical "
            "duplicates are deduplicated); conflicting records for the same "
            "point, mismatched headers (different scenario/seed/--set "
            "overrides) and missing grid points are hard errors.  Timing "
            "sidecars are per-machine and are NOT merged — point "
            "timing-report at the shard sidecars directly."
        ),
        epilog=(
            "examples:\n"
            "  python -m repro.experiments merge dns-matrix.jsonl \\\n"
            "      dns-shard1.jsonl dns-shard2.jsonl dns-shard3.jsonl\n"
            "  cmp dns-matrix.jsonl dns-matrix-single-machine.jsonl   # identical\n"
        ),
    )
    merge.add_argument("out", help="path of the merged .jsonl artifact to write")
    merge.add_argument(
        "shards", nargs="+",
        help="shard artifacts to combine (any order; overlaps deduplicated; "
             "a truncated final line — a shard killed mid-write — is "
             "tolerated, its in-flight point simply counts as missing)",
    )
    merge.set_defaults(func=cmd_merge)

    timing = sub.add_parser(
        "timing-report",
        help="tabulate wall-clock timing sidecars (slowest points, per-shard totals)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description=(
            "Report on the .timing.jsonl sidecars written next to streamed "
            "artifacts.  Timing lives ONLY in sidecars — canonical artifacts "
            "are byte-stable and clock-free — so this is the place to see "
            "where the wall-clock went: per-sidecar (per-shard) totals for "
            "balancing a fleet, and the globally slowest points for choosing "
            "a shard count.  A sidecar describes the points its run actually "
            "executed; a fully-cached --resume leaves it empty."
        ),
        epilog=(
            "examples:\n"
            "  python -m repro.experiments timing-report run.jsonl.timing.jsonl\n"
            "  # fleet view: one sidecar per shard, scp'd back to one place\n"
            "  python -m repro.experiments timing-report \\\n"
            "      dns-shard1.jsonl.timing.jsonl dns-shard2.jsonl.timing.jsonl \\\n"
            "      dns-shard3.jsonl.timing.jsonl --top 5\n"
        ),
    )
    timing.add_argument(
        "sidecars", nargs="+",
        help="one or more .timing.jsonl sidecar paths (one per shard/run)",
    )
    timing.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="how many of the slowest points to list (default 10)",
    )
    timing.set_defaults(func=cmd_timing_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # A typo'd REPRO_* variable (say REPRO_DRAW=legacy) would silently
        # run the default code path of a long sweep; fail before any work.
        reject_unknown_flags()
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
