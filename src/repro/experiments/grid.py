"""Declarative parameter grids for scenario sweeps.

A :class:`ParameterGrid` is the cartesian product of named axes — exactly the
shape of the paper's evaluation: (distribution x load x copies x overhead).
Expansion order is deterministic (row-major over the axes in declaration
order), which is what lets the sweep runner assign each point a stable index
and seed regardless of how many workers execute it.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Mapping, Sequence

from repro.exceptions import ConfigurationError


class ParameterGrid:
    """The cartesian product of named parameter axes.

    Example:
        >>> grid = ParameterGrid({"load": [0.1, 0.2], "copies": [1, 2]})
        >>> len(grid)
        4
        >>> list(grid)[0]
        {'load': 0.1, 'copies': 1}
    """

    def __init__(self, axes: Mapping[str, Sequence[Any]]) -> None:
        """Create a grid from ``{axis_name: [values...]}``.

        Raises:
            ConfigurationError: If the grid has no axes or an axis is empty.
        """
        if not axes:
            raise ConfigurationError("a parameter grid needs at least one axis")
        self._axes: Dict[str, List[Any]] = {}
        for name, values in axes.items():
            values = list(values)
            if not values:
                raise ConfigurationError(f"grid axis {name!r} has no values")
            self._axes[str(name)] = values

    @property
    def axes(self) -> Dict[str, List[Any]]:
        """The axes as ``{name: values}``, in declaration order (a copy)."""
        return {name: list(values) for name, values in self._axes.items()}

    def __len__(self) -> int:
        size = 1
        for values in self._axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        """Yield one ``{axis: value}`` dict per grid point, row-major."""
        names = list(self._axes)
        for combo in itertools.product(*self._axes.values()):
            yield dict(zip(names, combo))

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}[{len(v)}]" for name, v in self._axes.items())
        return f"ParameterGrid({sizes}: {len(self)} points)"
