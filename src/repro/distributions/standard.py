"""Standard continuous distributions.

All distributions are non-negative; each documents its parameterisation so the
analytic moments used by the queueing approximations are unambiguous.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.distributions.base import ArrayOrFloat, Distribution
from repro.exceptions import DistributionError


class Deterministic(Distribution):
    """A point mass: every sample equals ``value``.

    The paper uses this as the conjectured worst case for replication
    (threshold load ≈ 25.8% under Poisson arrivals).
    """

    def __init__(self, value: float = 1.0) -> None:
        """Create a point mass at ``value`` (> 0)."""
        if value <= 0:
            raise DistributionError(f"value must be positive, got {value!r}")
        self.value = float(value)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        if size is None:
            return self.value
        return np.full(size, self.value)

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0


class Exponential(Distribution):
    """Exponential distribution with the given ``mean`` (rate = 1/mean).

    The analytically tractable case of Theorem 1: with exponential service the
    threshold load is exactly 1/3.
    """

    def __init__(self, mean: float = 1.0) -> None:
        """Create an exponential distribution with mean ``mean`` (> 0)."""
        if mean <= 0:
            raise DistributionError(f"mean must be positive, got {mean!r}")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        return rng.exponential(self._mean, size)

    def mean(self) -> float:
        return self._mean

    def variance(self) -> float:
        return self._mean**2


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]`` with ``0 <= low < high``."""

    def __init__(self, low: float, high: float) -> None:
        """Create a uniform distribution on ``[low, high]``."""
        if low < 0 or high <= low:
            raise DistributionError(f"need 0 <= low < high, got low={low!r}, high={high!r}")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        return rng.uniform(self.low, self.high, size)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0


class LogNormal(Distribution):
    """Log-normal distribution parameterised by the underlying normal's mu/sigma.

    ``X = exp(N(mu, sigma^2))``.  Used by the wide-area DNS model, where
    per-server response times are well described by a log-normal body plus a
    loss/timeout tail.
    """

    def __init__(self, mu: float, sigma: float) -> None:
        """Create ``exp(N(mu, sigma^2))``; ``sigma`` must be non-negative."""
        if sigma < 0:
            raise DistributionError(f"sigma must be >= 0, got {sigma!r}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "LogNormal":
        """Construct from a target mean and coefficient of variation."""
        if mean <= 0 or cv < 0:
            raise DistributionError(f"need mean > 0 and cv >= 0, got {mean!r}, {cv!r}")
        sigma2 = math.log(1.0 + cv**2)
        mu = math.log(mean) - sigma2 / 2.0
        return cls(mu, math.sqrt(sigma2))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        return rng.lognormal(self.mu, self.sigma, size)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def variance(self) -> float:
        return (math.exp(self.sigma**2) - 1.0) * math.exp(2 * self.mu + self.sigma**2)


class Pareto(Distribution):
    """Pareto (Type I) distribution with tail index ``alpha`` and scale ``xm``.

    ``P(X > x) = (xm / x)^alpha`` for ``x >= xm``.  The mean is finite only
    for ``alpha > 1`` and the variance only for ``alpha > 2``; the paper's
    Figure 1(b) uses ``alpha = 2.1`` (finite but large variance).
    """

    def __init__(self, alpha: float, xm: Optional[float] = None, mean: Optional[float] = None) -> None:
        """Create a Pareto distribution.

        Exactly one of ``xm`` (scale) or ``mean`` must be given; when ``mean``
        is given the scale is derived as ``xm = mean · (alpha - 1) / alpha``.

        Raises:
            DistributionError: If ``alpha <= 1`` (infinite mean) or both/none
                of ``xm`` and ``mean`` are provided.
        """
        if alpha <= 1:
            raise DistributionError(
                f"alpha must be > 1 for a finite mean, got {alpha!r}"
            )
        if (xm is None) == (mean is None):
            raise DistributionError("provide exactly one of xm or mean")
        self.alpha = float(alpha)
        if xm is not None:
            if xm <= 0:
                raise DistributionError(f"xm must be positive, got {xm!r}")
            self.xm = float(xm)
        else:
            assert mean is not None
            if mean <= 0:
                raise DistributionError(f"mean must be positive, got {mean!r}")
            self.xm = float(mean) * (self.alpha - 1.0) / self.alpha

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        # numpy's pareto() is the Lomax distribution (Pareto II shifted to 0);
        # (1 + Lomax) * xm is a Pareto I sample with scale xm.
        return (1.0 + rng.pareto(self.alpha, size)) * self.xm

    def mean(self) -> float:
        return self.alpha * self.xm / (self.alpha - 1.0)

    def variance(self) -> float:
        if self.alpha <= 2:
            return math.inf
        a = self.alpha
        return self.xm**2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    def tail_index(self) -> float:
        """The regular-variation tail index (used by the heavy-tail analytics)."""
        return self.alpha


class BoundedPareto(Distribution):
    """Pareto distribution truncated to ``[low, high]``.

    Used for file-size and flow-size models where physically impossible
    multi-gigabyte samples must be excluded while keeping a heavy-tailed body.
    """

    def __init__(self, alpha: float, low: float, high: float) -> None:
        """Create a Pareto(alpha) truncated to ``[low, high]`` with ``0 < low < high``."""
        if alpha <= 0:
            raise DistributionError(f"alpha must be positive, got {alpha!r}")
        if not 0 < low < high:
            raise DistributionError(f"need 0 < low < high, got {low!r}, {high!r}")
        self.alpha = float(alpha)
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        u = rng.uniform(0.0, 1.0, size)
        a, lo, hi = self.alpha, self.low, self.high
        # Inverse-CDF: F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a) for lo <= x <= hi.
        return lo * (1.0 - u * (1.0 - (lo / hi) ** a)) ** (-1.0 / a)

    def mean(self) -> float:
        a, lo, hi = self.alpha, self.low, self.high
        if a == 1.0:
            return (math.log(hi / lo) * lo * hi) / (hi - lo)
        return (lo**a / (1.0 - (lo / hi) ** a)) * (a / (a - 1.0)) * (
            1.0 / lo ** (a - 1.0) - 1.0 / hi ** (a - 1.0)
        )

    def variance(self) -> float:
        a, lo, hi = self.alpha, self.low, self.high
        if a == 2.0:
            second = (lo**a / (1.0 - (lo / hi) ** a)) * 2.0 * math.log(hi / lo)
        else:
            second = (lo**a / (1.0 - (lo / hi) ** a)) * (a / (a - 2.0)) * (
                1.0 / lo ** (a - 2.0) - 1.0 / hi ** (a - 2.0)
            )
        return second - self.mean() ** 2


class Weibull(Distribution):
    """Weibull distribution with shape ``k`` and scale ``lam``.

    ``P(X > x) = exp(-(x/lam)^k)``.  Shapes below 1 are heavy-tailed (in the
    stretched-exponential sense) and are the family used in Figure 2(a).
    """

    def __init__(self, shape: float, scale: float = 1.0) -> None:
        """Create a Weibull distribution with the given shape and scale (> 0)."""
        if shape <= 0 or scale <= 0:
            raise DistributionError(
                f"shape and scale must be positive, got {shape!r}, {scale!r}"
            )
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        return self.scale * rng.weibull(self.shape, size)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)


class Erlang(Distribution):
    """Erlang distribution: sum of ``k`` i.i.d. exponentials (low variance).

    Its squared coefficient of variation is ``1/k < 1``, making it the
    standard light-tailed test case for the Myers–Vernon approximation.
    """

    def __init__(self, k: int, mean: float = 1.0) -> None:
        """Create an Erlang-``k`` distribution with the given overall mean."""
        if k < 1 or int(k) != k:
            raise DistributionError(f"k must be a positive integer, got {k!r}")
        if mean <= 0:
            raise DistributionError(f"mean must be positive, got {mean!r}")
        self.k = int(k)
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        return rng.gamma(self.k, self._mean / self.k, size)

    def mean(self) -> float:
        return self._mean

    def variance(self) -> float:
        return self._mean**2 / self.k


class HyperExponential(Distribution):
    """Mixture of exponentials (high variance, CV^2 > 1).

    With probability ``probs[i]`` a sample is exponential with mean
    ``means[i]``.  Used as the standard light-tailed-but-variable test case.
    """

    def __init__(self, probs: Sequence[float], means: Sequence[float]) -> None:
        """Create a hyperexponential mixture.

        Args:
            probs: Mixture weights (non-negative, summing to 1 within 1e-9).
            means: Branch means, one per weight, all positive.
        """
        if len(probs) != len(means) or not probs:
            raise DistributionError("probs and means must be equal-length, non-empty")
        if any(p < 0 for p in probs) or abs(sum(probs) - 1.0) > 1e-9:
            raise DistributionError(f"probs must be non-negative and sum to 1, got {probs!r}")
        if any(m <= 0 for m in means):
            raise DistributionError(f"all branch means must be positive, got {means!r}")
        self.probs = np.asarray(probs, dtype=float)
        self.means = np.asarray(means, dtype=float)

    @classmethod
    def from_mean_cv2(cls, mean: float, cv2: float) -> "HyperExponential":
        """Two-branch balanced-means hyperexponential with the given mean and CV^2.

        Requires ``cv2 >= 1`` (a hyperexponential cannot have less variability
        than an exponential).
        """
        if cv2 < 1.0:
            raise DistributionError(f"hyperexponential requires cv2 >= 1, got {cv2!r}")
        if cv2 == 1.0:
            return cls([1.0], [mean])
        p = 0.5 * (1.0 + math.sqrt((cv2 - 1.0) / (cv2 + 1.0)))
        m1 = mean / (2.0 * p)
        m2 = mean / (2.0 * (1.0 - p))
        return cls([p, 1.0 - p], [m1, m2])

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        n = 1 if size is None else int(size)
        branches = rng.choice(len(self.probs), size=n, p=self.probs)
        values = rng.exponential(self.means[branches])
        if size is None:
            return float(values[0])
        return values

    def mean(self) -> float:
        return float(np.dot(self.probs, self.means))

    def variance(self) -> float:
        second = float(np.dot(self.probs, 2.0 * self.means**2))
        return second - self.mean() ** 2
