"""Datacenter flow-size distribution (Section 2.4 workload).

The paper draws flow sizes from "a standard data center workload [Benson et
al., IMC 2010]", described as ranging from 1 KB to 3 MB with more than 80% of
flows smaller than 10 KB (most of the *bytes* nevertheless come from the few
large "elephant" flows).  The original trace is not available offline, so
:class:`DataCenterFlowSizes` implements a piecewise log-linear CDF with those
published characteristics; the benchmark only depends on the qualitative mix
(many mice, few elephants carrying most bytes), which this preserves.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import ArrayOrFloat, Distribution
from repro.exceptions import DistributionError

#: Default CDF knots as (flow size in bytes, cumulative probability).
#: 50% of flows <= 4 KB, 82% <= 10 KB, 94% <= 100 KB, 97.5% <= 1 MB, max 3 MB;
#: with these knots roughly 70% of the *bytes* come from flows of 1 MB or more,
#: matching the "few elephants carry most of the traffic" property of the
#: Benson et al. datacenter workloads the paper uses.
DEFAULT_KNOTS: Tuple[Tuple[float, float], ...] = (
    (1_000.0, 0.0),
    (2_000.0, 0.25),
    (4_000.0, 0.50),
    (10_000.0, 0.82),
    (100_000.0, 0.94),
    (1_000_000.0, 0.975),
    (3_000_000.0, 1.0),
)


class DataCenterFlowSizes(Distribution):
    """Piecewise log-linear flow-size distribution for datacenter traffic.

    Sizes are interpolated log-linearly between CDF knots, which gives a
    smooth heavy-tailed mix with the published mass points.  Use
    :meth:`fraction_below` to verify workload properties (e.g. >80% of flows
    below 10 KB) and :meth:`bytes_fraction_from_elephants` to check that most
    bytes come from large flows.
    """

    def __init__(self, knots: Sequence[Tuple[float, float]] = DEFAULT_KNOTS) -> None:
        """Create the distribution from ``(size_bytes, cumulative_prob)`` knots.

        Raises:
            DistributionError: If knots are not strictly increasing in both
                coordinates or do not span probabilities 0 to 1.
        """
        if len(knots) < 2:
            raise DistributionError("need at least two CDF knots")
        sizes = np.asarray([k[0] for k in knots], dtype=float)
        probs = np.asarray([k[1] for k in knots], dtype=float)
        if np.any(np.diff(sizes) <= 0) or np.any(np.diff(probs) < 0):
            raise DistributionError("knots must be increasing in size and non-decreasing in prob")
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise DistributionError("knot probabilities must start at 0 and end at 1")
        if sizes[0] <= 0:
            raise DistributionError("flow sizes must be positive")
        self._sizes = sizes
        self._probs = probs
        self._log_sizes = np.log(sizes)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        u = rng.uniform(0.0, 1.0, size)
        log_value = np.interp(u, self._probs, self._log_sizes)
        out = np.exp(log_value)
        if size is None:
            return float(out)
        return out

    def mean(self) -> float:
        # Exact mean of the piecewise log-linear interpolation, computed by
        # integrating size over probability segment by segment.
        total = 0.0
        for i in range(len(self._probs) - 1):
            p0, p1 = self._probs[i], self._probs[i + 1]
            if p1 == p0:
                continue
            a, b = self._log_sizes[i], self._log_sizes[i + 1]
            # size(u) = exp(a + (b-a) * (u-p0)/(p1-p0)); integrate over [p0, p1].
            slope = (b - a)
            if abs(slope) < 1e-12:
                total += np.exp(a) * (p1 - p0)
            else:
                total += (p1 - p0) * (np.exp(b) - np.exp(a)) / slope
        return float(total)

    def variance(self) -> float:
        total = 0.0
        for i in range(len(self._probs) - 1):
            p0, p1 = self._probs[i], self._probs[i + 1]
            if p1 == p0:
                continue
            a, b = 2 * self._log_sizes[i], 2 * self._log_sizes[i + 1]
            slope = (b - a)
            if abs(slope) < 1e-12:
                total += np.exp(a) * (p1 - p0)
            else:
                total += (p1 - p0) * (np.exp(b) - np.exp(a)) / slope
        return float(total) - self.mean() ** 2

    def fraction_below(self, size_bytes: float) -> float:
        """CDF value: the fraction of flows no larger than ``size_bytes``."""
        if size_bytes <= self._sizes[0]:
            return 0.0
        if size_bytes >= self._sizes[-1]:
            return 1.0
        return float(np.interp(np.log(size_bytes), self._log_sizes, self._probs))

    def bytes_fraction_from_elephants(
        self, elephant_threshold_bytes: float, rng: np.random.Generator, samples: int = 200_000
    ) -> float:
        """Monte-Carlo estimate of the byte share carried by large flows.

        Args:
            elephant_threshold_bytes: Flows at least this large count as
                elephants.
            rng: Random generator for the estimate.
            samples: Number of flow-size draws.
        """
        sizes = self.sample(rng, samples)
        total = float(np.sum(sizes))
        if total == 0:
            return 0.0
        return float(np.sum(sizes[sizes >= elephant_threshold_bytes]) / total)
