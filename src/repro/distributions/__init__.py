"""Probability distributions for service times, file sizes and flow sizes.

Every distribution implements the small :class:`~repro.distributions.base.Distribution`
interface (sampling plus exact first and second moments where they exist),
which lets the queueing analytics (Pollaczek–Khinchine, Myers–Vernon,
heavy-tail approximations) and the simulators consume the same objects.

The module also provides the three unit-mean *families* the paper sweeps in
Figure 2 (Weibull, Pareto and a two-point discrete family, each parameterised
so variance grows from 0 to infinity along the x-axis), the random unit-mean
discrete distributions of Figure 3, and the datacenter flow-size mix of
Section 2.4.
"""

from repro.distributions.base import Distribution, ScaledDistribution
from repro.distributions.standard import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    Pareto,
    BoundedPareto,
    Uniform,
    Weibull,
)
from repro.distributions.discrete import (
    DiscreteDistribution,
    TwoPoint,
    random_unit_mean_discrete,
)
from repro.distributions.empirical import Empirical
from repro.distributions.families import (
    pareto_family,
    two_point_family,
    weibull_family,
)
from repro.distributions.datacenter import DataCenterFlowSizes

__all__ = [
    "Distribution",
    "ScaledDistribution",
    "Deterministic",
    "Exponential",
    "Uniform",
    "LogNormal",
    "Pareto",
    "BoundedPareto",
    "Weibull",
    "Erlang",
    "HyperExponential",
    "DiscreteDistribution",
    "TwoPoint",
    "random_unit_mean_discrete",
    "Empirical",
    "weibull_family",
    "pareto_family",
    "two_point_family",
    "DataCenterFlowSizes",
]
