"""Empirical distributions built from observed samples.

Used to feed measured latency samples back into the analytics (e.g. the
"should I replicate?" advisor takes an :class:`Empirical` built from a
service's latency log) and to resample datacenter flow-size traces.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distributions.base import ArrayOrFloat, Distribution
from repro.exceptions import DistributionError


class Empirical(Distribution):
    """The empirical distribution of a set of observed samples.

    Sampling draws uniformly (with replacement) from the stored samples, i.e.
    this is the bootstrap distribution of the data.
    """

    def __init__(self, samples: Sequence[float]) -> None:
        """Create the empirical distribution of ``samples``.

        Raises:
            DistributionError: If ``samples`` is empty or contains negative
                values.
        """
        data = np.asarray(samples, dtype=float)
        if data.size == 0:
            raise DistributionError("samples must be non-empty")
        if np.any(data < 0):
            raise DistributionError("samples must be non-negative")
        self.samples = data

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        n = 1 if size is None else int(size)
        out = rng.choice(self.samples, size=n, replace=True)
        if size is None:
            return float(out[0])
        return out

    def mean(self) -> float:
        return float(self.samples.mean())

    def variance(self) -> float:
        return float(self.samples.var())

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``0 <= q <= 100``) of the stored samples."""
        if not 0.0 <= q <= 100.0:
            raise DistributionError(f"percentile must be in [0, 100], got {q!r}")
        return float(np.percentile(self.samples, q))

    def __len__(self) -> int:
        return int(self.samples.size)
