"""Common interface for all distributions in the package."""

from __future__ import annotations

import abc
import math
from typing import Optional, Union

import numpy as np

from repro.exceptions import DistributionError

ArrayOrFloat = Union[float, np.ndarray]


class Distribution(abc.ABC):
    """A one-dimensional, non-negative probability distribution.

    Subclasses must implement :meth:`sample` and :meth:`mean`; they should
    implement :meth:`variance` whenever a finite second moment exists (and
    return ``math.inf`` when it does not), because the queueing
    approximations use the squared coefficient of variation.
    """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        """Draw one sample (``size=None``) or an array of ``size`` samples."""

    @abc.abstractmethod
    def mean(self) -> float:
        """The distribution mean (must be finite and positive)."""

    def variance(self) -> float:
        """The distribution variance (``math.inf`` if it does not exist)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not provide an analytic variance"
        )

    def second_moment(self) -> float:
        """E[X^2], derived from mean and variance."""
        var = self.variance()
        if math.isinf(var):
            return math.inf
        return var + self.mean() ** 2

    def cv2(self) -> float:
        """Squared coefficient of variation: Var[X] / E[X]^2."""
        var = self.variance()
        if math.isinf(var):
            return math.inf
        return var / self.mean() ** 2

    def scaled_to_mean(self, target_mean: float) -> "Distribution":
        """Return this distribution rescaled so its mean is ``target_mean``.

        Scaling is multiplicative (``Y = c·X``), which preserves the shape and
        the coefficient of variation — the property the Section 2.1 analysis
        cares about.
        """
        if target_mean <= 0:
            raise DistributionError(f"target_mean must be positive, got {target_mean!r}")
        factor = target_mean / self.mean()
        return ScaledDistribution(self, factor)

    def unit_mean(self) -> "Distribution":
        """Return this distribution rescaled to mean 1 (paper's convention)."""
        return self.scaled_to_mean(1.0)

    def describe(self) -> str:
        """Human-readable one-line description used in benchmark output."""
        var = None
        try:
            var = self.variance()
        except NotImplementedError:
            pass
        if var is None:
            return f"{type(self).__name__}(mean={self.mean():.4g})"
        return f"{type(self).__name__}(mean={self.mean():.4g}, var={var:.4g})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class ScaledDistribution(Distribution):
    """A distribution multiplied by a positive constant ``factor``.

    Produced by :meth:`Distribution.scaled_to_mean`; exposed publicly so the
    analytics can recognise and unwrap it if they need the base shape.
    """

    def __init__(self, base: Distribution, factor: float) -> None:
        """Wrap ``base`` so every sample is multiplied by ``factor``."""
        if factor <= 0:
            raise DistributionError(f"scale factor must be positive, got {factor!r}")
        self.base = base
        self.factor = float(factor)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        return self.base.sample(rng, size) * self.factor

    def mean(self) -> float:
        return self.base.mean() * self.factor

    def variance(self) -> float:
        base_var = self.base.variance()
        if math.isinf(base_var):
            return math.inf
        return base_var * self.factor**2
