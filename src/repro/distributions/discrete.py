"""Discrete distributions, including the Figure 3 random families.

The paper probes its worst-case conjecture (Conjecture 1: deterministic
service time minimises the threshold load) by sampling random unit-mean
discrete distributions with support ``{1, 2, ..., N}`` in two ways — uniformly
over the probability simplex and from a symmetric Dirichlet with concentration
0.1 — and checking that every sampled distribution has a threshold load above
the deterministic ≈25.8% bound.  :func:`random_unit_mean_discrete` reproduces
that sampling procedure.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distributions.base import ArrayOrFloat, Distribution
from repro.exceptions import DistributionError


class DiscreteDistribution(Distribution):
    """A finite discrete distribution over arbitrary non-negative values.

    Attributes:
        values: The support points (non-negative floats).
        probs: The probability of each support point (sums to 1).
    """

    def __init__(self, values: Sequence[float], probs: Sequence[float]) -> None:
        """Create a discrete distribution on ``values`` with weights ``probs``.

        Raises:
            DistributionError: If lengths differ, any value is negative, any
                probability is negative, or the probabilities do not sum to 1
                (tolerance 1e-9).
        """
        if len(values) != len(probs) or len(values) == 0:
            raise DistributionError("values and probs must be equal-length and non-empty")
        values_arr = np.asarray(values, dtype=float)
        probs_arr = np.asarray(probs, dtype=float)
        if np.any(values_arr < 0):
            raise DistributionError("support values must be non-negative")
        if np.any(probs_arr < 0) or abs(float(probs_arr.sum()) - 1.0) > 1e-9:
            raise DistributionError("probabilities must be non-negative and sum to 1")
        self.values = values_arr
        self.probs = probs_arr

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        n = 1 if size is None else int(size)
        idx = rng.choice(len(self.values), size=n, p=self.probs)
        out = self.values[idx]
        if size is None:
            return float(out[0])
        return out

    def mean(self) -> float:
        return float(np.dot(self.probs, self.values))

    def variance(self) -> float:
        second = float(np.dot(self.probs, self.values**2))
        return second - self.mean() ** 2

    def normalized(self) -> "DiscreteDistribution":
        """Return a copy rescaled to unit mean (the paper's convention)."""
        mean = self.mean()
        if mean <= 0:
            raise DistributionError("cannot normalise a distribution with zero mean")
        return DiscreteDistribution(self.values / mean, self.probs)


class TwoPoint(Distribution):
    """The paper's two-point service-time family (Figure 2(c)).

    Service time is ``0.5`` with probability ``p`` and ``(1 - 0.5·p)/(1 - p)``
    with probability ``1 - p``, which keeps the mean at exactly 1 while the
    variance grows without bound as ``p -> 1``.  At ``p = 0`` the distribution
    is deterministic (the conjectured worst case).
    """

    def __init__(self, p: float, low: float = 0.5) -> None:
        """Create the two-point family member with parameter ``p`` in ``[0, 1)``.

        Args:
            p: Probability of the low value.
            low: The low value (0.5 in the paper); must satisfy ``0 < low < 1``
                so that the complementary high value stays positive.
        """
        if not 0.0 <= p < 1.0:
            raise DistributionError(f"p must be in [0, 1), got {p!r}")
        if not 0.0 < low < 1.0:
            raise DistributionError(f"low must be in (0, 1), got {low!r}")
        self.p = float(p)
        self.low = float(low)
        self.high = (1.0 - self.low * self.p) / (1.0 - self.p)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayOrFloat:
        u = rng.uniform(0.0, 1.0, size)
        out = np.where(u < self.p, self.low, self.high)
        if size is None:
            return float(out)
        return out

    def mean(self) -> float:
        return self.p * self.low + (1.0 - self.p) * self.high

    def variance(self) -> float:
        second = self.p * self.low**2 + (1.0 - self.p) * self.high**2
        return second - self.mean() ** 2


def random_unit_mean_discrete(
    support_size: int,
    rng: np.random.Generator,
    method: str = "uniform",
    concentration: float = 0.1,
) -> DiscreteDistribution:
    """Sample a random unit-mean discrete distribution with support ``{1..N}``.

    This reproduces the Figure 3 sampling procedure: draw a probability vector
    over ``{1, 2, ..., support_size}`` either uniformly from the simplex
    (``method="uniform"``, i.e. Dirichlet(1)) or from a symmetric
    Dirichlet(``concentration``) (``method="dirichlet"``, concentration 0.1 in
    the paper), then rescale the support so the mean is exactly 1.

    Args:
        support_size: Number of support points ``N`` (>= 1).
        rng: Random generator used for the draw.
        method: ``"uniform"`` or ``"dirichlet"``.
        concentration: Dirichlet concentration when ``method="dirichlet"``.

    Returns:
        A unit-mean :class:`DiscreteDistribution`.

    Raises:
        DistributionError: On an unknown method or non-positive support size.
    """
    if support_size < 1:
        raise DistributionError(f"support_size must be >= 1, got {support_size!r}")
    if method == "uniform":
        probs = rng.dirichlet(np.ones(support_size))
    elif method == "dirichlet":
        probs = rng.dirichlet(np.full(support_size, float(concentration)))
    else:
        raise DistributionError(f"unknown sampling method {method!r}")
    values = np.arange(1, support_size + 1, dtype=float)
    dist = DiscreteDistribution(values, probs)
    return dist.normalized()
