"""The three unit-mean service-time families swept in Figure 2.

Each family is parameterised by a single number on ``[0, right_edge)`` such
that the variance is 0 at the left edge and grows to infinity at the right
edge, matching the x-axes of Figures 2(a)-(c):

* :func:`weibull_family` — inverse shape parameter ``gamma`` (x-axis 0..18):
  Weibull with shape ``1/gamma`` rescaled to unit mean; ``gamma -> 0`` is
  deterministic, large ``gamma`` is extremely heavy.
* :func:`pareto_family` — inverse "scale" parameter ``beta`` (x-axis 0..1):
  Pareto with tail index ``alpha = 1 + 1/beta`` rescaled to unit mean;
  ``beta -> 0`` approaches deterministic, ``beta -> 1`` approaches
  ``alpha -> 2`` where the variance diverges.
* :func:`two_point_family` — the probability ``p`` of the low value (x-axis
  0..1): deterministic at ``p = 0``, variance diverging as ``p -> 1``.
"""

from __future__ import annotations

from repro.distributions.base import Distribution
from repro.distributions.discrete import TwoPoint
from repro.distributions.standard import Deterministic, Pareto, Weibull
from repro.exceptions import DistributionError


def weibull_family(gamma: float) -> Distribution:
    """Unit-mean Weibull with inverse shape parameter ``gamma`` (Figure 2(a)).

    Args:
        gamma: Inverse shape parameter, >= 0.  ``gamma = 0`` returns the
            deterministic unit-mean distribution (the shape -> infinity limit);
            ``gamma = 1`` is the exponential; larger values are heavier.

    Returns:
        A unit-mean :class:`~repro.distributions.base.Distribution`.
    """
    if gamma < 0:
        raise DistributionError(f"gamma must be >= 0, got {gamma!r}")
    if gamma == 0:
        return Deterministic(1.0)
    return Weibull(shape=1.0 / gamma, scale=1.0).unit_mean()


def pareto_family(beta: float) -> Distribution:
    """Unit-mean Pareto with inverse scale parameter ``beta`` (Figure 2(b)).

    The tail index is ``alpha = 1 + 1/beta``, so the family interpolates from
    near-deterministic (``beta -> 0``, ``alpha -> infinity``) to
    infinite-variance (``beta -> 1``, ``alpha -> 2``).

    Args:
        beta: Inverse scale parameter in ``[0, 1)``; ``beta = 0`` returns the
            deterministic distribution.
    """
    if not 0.0 <= beta < 1.0:
        raise DistributionError(f"beta must be in [0, 1), got {beta!r}")
    if beta == 0.0:
        return Deterministic(1.0)
    alpha = 1.0 + 1.0 / beta
    return Pareto(alpha=alpha, mean=1.0)


def two_point_family(p: float) -> Distribution:
    """The paper's two-point family with parameter ``p`` (Figure 2(c)).

    Service time is 0.5 with probability ``p`` and ``(1 - 0.5p)/(1 - p)`` with
    probability ``1 - p``; the mean is exactly 1 for every ``p``.
    """
    if not 0.0 <= p < 1.0:
        raise DistributionError(f"p must be in [0, 1), got {p!r}")
    if p == 0.0:
        return Deterministic(1.0)
    return TwoPoint(p)
