"""Discrete-event simulation engine.

This subpackage provides the substrate every simulator in the repository is
built on: a binary-heap event scheduler (:class:`~repro.sim.engine.Simulator`),
cancellable scheduled events (:class:`~repro.sim.events.Event`), generator
based processes (:mod:`repro.sim.process`), queueing resources
(:mod:`repro.sim.resources`) and reproducible random-number streams
(:mod:`repro.sim.rng`).

The engine is deliberately small and callback-first: the hot paths of the
queueing, cluster and network simulators schedule plain callables, while the
generator-based :class:`~repro.sim.process.Process` wrapper offers SimPy-like
ergonomics for the less performance-critical experiment drivers.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventState
from repro.sim.process import Completion, Process, Timeout, WaitFor, run_processes
from repro.sim.resources import FifoQueue, PriorityQueueResource, Server
from repro.sim.rng import RandomStreams, substream

__all__ = [
    "Simulator",
    "Event",
    "EventState",
    "Process",
    "Completion",
    "Timeout",
    "WaitFor",
    "run_processes",
    "Server",
    "FifoQueue",
    "PriorityQueueResource",
    "RandomStreams",
    "substream",
]
