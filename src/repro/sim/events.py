"""Scheduled events for the discrete-event simulator.

An :class:`Event` is created by :meth:`repro.sim.engine.Simulator.schedule`
and represents a callback that will fire at a given simulated time unless it
is cancelled first.  Events are ordered by ``(time, priority, sequence)`` so
that ties at the same timestamp are resolved deterministically: first by the
caller-supplied priority, then by scheduling order.

``Event`` is a ``__slots__`` class rather than a dataclass: packet-mode
network simulations allocate one event per packet per hop, so the per-event
memory and attribute-access overhead is on the critical path.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional


class EventState(enum.Enum):
    """Lifecycle state of a scheduled event."""

    PENDING = "pending"
    """The event is in the scheduler's queue and has not fired yet."""

    FIRED = "fired"
    """The event's callback has been executed."""

    CANCELLED = "cancelled"
    """The event was cancelled before firing; its callback will never run."""


def _noop() -> None:
    return None


class Event:
    """A callback scheduled to run at a simulated time.

    Instances are created by the simulator; user code normally only holds on
    to them in order to :meth:`cancel` them (for example, a retransmission
    timer that is no longer needed, or the losing copies of a hedged request).

    Attributes:
        time: Simulated time at which the event fires.
        priority: Tie-break priority for events at the same time (lower fires
            first).  Defaults to 0.
        sequence: Monotonically increasing scheduling sequence number used as
            the final tie-break so ordering is fully deterministic.
        callback: The callable invoked when the event fires (not part of the
            ordering key).
        args: Positional arguments passed to ``callback``.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "args", "state", "on_cancel")

    def __init__(
        self,
        time: float,
        priority: int = 0,
        sequence: int = 0,
        callback: Callable[..., Any] = _noop,
        args: tuple = (),
        state: EventState = EventState.PENDING,
        on_cancel: Optional[Callable[["Event"], None]] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.state = state
        #: Set by the scheduler so it can keep an accurate live count of
        #: pending (non-cancelled) events; not part of the ordering key.
        self.on_cancel = on_cancel

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"sequence={self.sequence!r}, state={self.state.value!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.priority, self.sequence) == (
            other.time,
            other.priority,
            other.sequence,
        )

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def __le__(self, other: "Event") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Event") -> bool:
        return not (self == other or self < other)

    def __ge__(self, other: "Event") -> bool:
        return not self < other

    def cancel(self) -> bool:
        """Cancel the event if it has not fired yet.

        Returns:
            ``True`` if the event was pending and is now cancelled, ``False``
            if it had already fired or was already cancelled.  Cancelling is
            O(1): the event is left in the queue and skipped when popped (the
            owning scheduler is notified so its pending count stays accurate).
        """
        if self.state is EventState.PENDING:
            self.state = EventState.CANCELLED
            if self.on_cancel is not None:
                self.on_cancel(self)
            return True
        return False

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return self.state is EventState.PENDING

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled before firing."""
        return self.state is EventState.CANCELLED

    def _fire(self) -> None:
        """Run the callback and mark the event as fired (engine internal)."""
        self.state = EventState.FIRED
        self.callback(*self.args)
