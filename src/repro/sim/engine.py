"""The discrete-event simulation core.

:class:`Simulator` maintains a simulated clock and a binary heap of
:class:`~repro.sim.events.Event` objects.  Every simulator in this repository
(the Section 2.1 queueing model, the Section 2.2/2.3 storage cluster, the
Section 2.4 fat-tree network and the Section 3 wide-area models) advances time
through this single engine, which keeps the semantics of "simulated seconds"
consistent across substrates and makes experiments reproducible.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from repro.exceptions import SimulationError
from repro.sim.events import Event, EventState


class Simulator:
    """A minimal, fast discrete-event scheduler.

    The simulator owns the clock (:attr:`now`) and an event heap.  Work is
    scheduled with :meth:`schedule` (relative delay) or :meth:`schedule_at`
    (absolute time) and executed by :meth:`run`, :meth:`run_until` or
    :meth:`step`.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, fired.append, "hello")
        >>> sim.run()
        >>> sim.now, fired
        (1.5, ['hello'])
    """

    #: Cancelled events are purged from the heap once they are this many and
    #: outnumber the live events (amortised O(1) per cancellation).
    _PURGE_MIN_CANCELLED = 64

    def __init__(self, start_time: float = 0.0) -> None:
        """Create a simulator whose clock starts at ``start_time`` seconds."""
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._sequence = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._cancelled_in_heap = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events whose callbacks have been executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events waiting to fire.

        Maintained as a live counter: cancelling an event decrements it
        immediately even though the cancelled entry stays in the heap until it
        is popped or lazily purged, so long-running simulations can introspect
        their backlog accurately.
        """
        return max(0, len(self._heap) - self._cancelled_in_heap)

    def _note_cancellation(self, _event: Event) -> None:
        """Event-cancellation hook keeping the live pending count accurate.

        Only events currently in the heap carry this hook: :meth:`clear` and
        :meth:`_purge_cancelled` detach it from evicted events, so a stale
        handle cancelled later cannot skew the count.
        """
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= self._PURGE_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._purge_cancelled()

    def _purge_cancelled(self) -> None:
        """Drop cancelled entries from the heap and restore the heap invariant."""
        kept = []
        for event in self._heap:
            if event.state is EventState.CANCELLED:
                event.on_cancel = None
            else:
                kept.append(event)
        self._heap = kept
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Args:
            delay: Non-negative delay in simulated seconds.
            callback: Callable to invoke when the event fires.
            *args: Positional arguments for the callback.
            priority: Tie-break priority among events at the same timestamp;
                lower values fire first.

        Returns:
            The scheduled :class:`Event`, which may be cancelled.

        Raises:
            SimulationError: If ``delay`` is negative or not a finite number.
        """
        if not math.isfinite(delay):
            raise SimulationError(f"event delay must be finite, got {delay!r}")
        if delay < 0.0:
            raise SimulationError(f"cannot schedule an event {delay!r} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``.

        Raises:
            SimulationError: If ``time`` is not a finite number or is before
                the current clock.  NaN is rejected explicitly: it compares
                false against every clock value, so it would slip past the
                ordering check below and corrupt the event heap's invariant.
        """
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6g}: clock is already at t={self._now:.6g}"
            )
        self._sequence += 1
        event = Event(
            time=float(time),
            priority=priority,
            sequence=self._sequence,
            callback=callback,
            args=args,
            on_cancel=self._note_cancellation,
        )
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Execute the next pending event, advancing the clock to its time.

        Returns:
            ``True`` if an event was executed, ``False`` if the heap is empty
            (the clock is left unchanged in that case).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.state is EventState.CANCELLED:
                self._cancelled_in_heap -= 1
                continue
            self._now = event.time
            event._fire()
            self._events_processed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event heap is exhausted (or ``max_events`` fired).

        Args:
            max_events: Optional safety cap on the number of events to
                process; ``None`` means run to completion.

        Returns:
            The number of events processed by this call.

        Raises:
            SimulationError: If the simulator is already running (re-entrant
                ``run`` calls from inside a callback are not allowed).
        """
        if self._running:
            raise SimulationError("Simulator.run() called re-entrantly from a callback")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while not self._stopped and self.step():
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        return processed

    def run_until(self, until: float) -> int:
        """Run events with timestamps ``<= until`` and set the clock to ``until``.

        Events scheduled after ``until`` remain in the heap, so the simulation
        can be resumed by a later call.

        Args:
            until: Absolute simulated time to run up to (inclusive).

        Returns:
            The number of events processed by this call.

        Raises:
            SimulationError: If ``until`` is before the current clock or the
                simulator is already running.
        """
        if until < self._now:
            raise SimulationError(
                f"run_until({until!r}) is before the current time {self._now!r}"
            )
        if self._running:
            raise SimulationError("Simulator.run_until() called re-entrantly from a callback")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while not self._stopped and self._heap:
                head = self._heap[0]
                if head.state is EventState.CANCELLED:
                    heapq.heappop(self._heap)
                    self._cancelled_in_heap -= 1
                    continue
                if head.time > until:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if not self._stopped:
            self._now = max(self._now, until)
        return processed

    def stop(self) -> None:
        """Request that the current :meth:`run`/:meth:`run_until` call return.

        Safe to call from inside an event callback; the event currently being
        processed completes, and no further events fire.
        """
        self._stopped = True

    def clear(self) -> None:
        """Drop all pending events without firing them.  The clock is kept."""
        for event in self._heap:
            event.on_cancel = None
        self._heap.clear()
        self._cancelled_in_heap = 0
