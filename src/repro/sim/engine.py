"""The discrete-event simulation core.

:class:`Simulator` maintains a simulated clock and a priority queue of
:class:`~repro.sim.events.Event` objects.  Every simulator in this repository
(the Section 2.1 queueing model, the Section 2.2/2.3 storage cluster, the
Section 2.4 fat-tree network and the Section 3 wide-area models) advances time
through this single engine, which keeps the semantics of "simulated seconds"
consistent across substrates and makes experiments reproducible.

Two queue backends are available, both producing the exact same event order
(the ordering key ``(time, priority, sequence)`` is a total order because
``sequence`` is unique, so *any* correct priority queue pops the same event
next):

* ``"heap"`` — a binary heap of ``(time, priority, sequence, event)`` tuples.
  Keeping the ordering key in the tuple means every comparison happens in C
  during ``heappush``/``heappop`` instead of calling ``Event.__lt__``.
* ``"calendar"`` — a calendar queue: events are hashed into fixed-width time
  buckets (each bucket a small heap) so push/pop cost stays O(1)-ish in the
  number of pending events instead of O(log n).  Because bucket index is a
  function of ``time`` alone, all same-time events (the only possible ties)
  land in the same bucket and the cross-bucket order is by construction the
  order of the heap backend.

``"auto"`` (the default) starts on the heap and migrates to the calendar
queue once the pending-event count crosses a threshold where the O(log n)
factor starts to matter.  The backend choice is a pure performance knob:
artifacts are byte-identical across backends, pinned by equivalence tests.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from repro import flags
from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.events import Event, EventState

#: Environment variable overriding the default queue backend for every
#: ``Simulator()`` created without an explicit ``queue=`` argument.  Used by
#: CI to re-run whole sweeps under ``calendar`` and ``cmp`` the artifacts.
#: Declared (with its choices) in :mod:`repro.flags`.
QUEUE_ENV_VAR = flags.SIM_QUEUE.name

_QUEUE_CHOICES = ("auto", "heap", "calendar")


class Simulator:
    """A minimal, fast discrete-event scheduler.

    The simulator owns the clock (:attr:`now`) and an event queue.  Work is
    scheduled with :meth:`schedule` (relative delay) or :meth:`schedule_at`
    (absolute time) and executed by :meth:`run`, :meth:`run_until` or
    :meth:`step`.

    Args:
        start_time: Initial value of the simulated clock, in seconds.
        queue: Queue backend: ``"heap"``, ``"calendar"``, or ``"auto"``
            (heap now, calendar once the backlog grows past
            :attr:`_AUTO_CALENDAR_THRESHOLD`).  ``None`` reads the
            ``REPRO_SIM_QUEUE`` environment variable, defaulting to
            ``"auto"``.  Backends are observably equivalent; see the module
            docstring.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, fired.append, "hello")
        >>> sim.run()
        >>> sim.now, fired
        (1.5, ['hello'])
    """

    #: Cancelled events are purged from the queue once they are this many and
    #: outnumber the live events (amortised O(1) per cancellation).
    _PURGE_MIN_CANCELLED = 64

    #: ``queue="auto"`` migrates from the heap to the calendar queue when the
    #: backlog first exceeds this many entries.  The binary heap's per-op cost
    #: grows with log2(n) C tuple comparisons, the calendar queue's stays flat
    #: but pays fixed Python-level bucketing overhead per op, so the crossover
    #: sits at a large backlog.
    _AUTO_CALENDAR_THRESHOLD = 32768

    #: A calendar bucket growing beyond this many entries triggers a width
    #: resize (the buckets have degenerated towards one big heap).
    _MAX_BUCKET = 1024

    def __init__(self, start_time: float = 0.0, queue: Optional[str] = None) -> None:
        """Create a simulator whose clock starts at ``start_time`` seconds."""
        if queue is None:
            try:
                queue = flags.SIM_QUEUE.read()
            except ConfigurationError as exc:
                raise SimulationError(str(exc)) from exc
        if queue not in _QUEUE_CHOICES:
            raise SimulationError(
                f"queue must be one of {_QUEUE_CHOICES}, got {queue!r}"
            )
        self._now = float(start_time)
        self._heap: list[tuple] = []
        self._sequence = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._cancelled_in_heap = 0
        self._queue_mode = queue
        self._backend = "calendar" if queue == "calendar" else "heap"
        # Calendar-queue state.  The width starts at 1.0 and is re-derived
        # from the observed event-time span on the first resize, so callers
        # never have to guess a timescale up front.
        self._buckets: dict[int, list[tuple]] = {}
        self._bucket_heap: list[int] = []
        self._bucket_width = 1.0
        self._calendar_len = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events whose callbacks have been executed so far."""
        return self._events_processed

    @property
    def queue_backend(self) -> str:
        """The queue backend currently in use (``"heap"`` or ``"calendar"``)."""
        return self._backend

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events waiting to fire.

        Maintained as a live counter: cancelling an event decrements it
        immediately even though the cancelled entry stays in the queue until
        it is popped or lazily purged, so long-running simulations can
        introspect their backlog accurately.
        """
        return max(0, len(self._heap) + self._calendar_len - self._cancelled_in_heap)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------

    def _note_cancellation(self, _event: Event) -> None:
        """Event-cancellation hook keeping the live pending count accurate.

        Only events currently in the queue carry this hook: :meth:`clear` and
        :meth:`_purge_cancelled` detach it from evicted events, so a stale
        handle cancelled later cannot skew the count.
        """
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= self._PURGE_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap) + self._calendar_len
        ):
            self._purge_cancelled()

    def _purge_cancelled(self) -> None:
        """Drop cancelled entries from the queue and restore its invariants.

        The heap list is compacted in place so that a ``run`` loop holding a
        local reference keeps seeing the live queue.
        """
        cancelled = EventState.CANCELLED
        kept = []
        for entry in self._heap:
            event = entry[3]
            if event.state is cancelled:
                event.on_cancel = None
            else:
                kept.append(entry)
        self._heap[:] = kept
        heapq.heapify(self._heap)
        if self._calendar_len:
            total = 0
            for index in list(self._buckets):
                bucket = self._buckets[index]
                alive = []
                for entry in bucket:
                    event = entry[3]
                    if event.state is cancelled:
                        event.on_cancel = None
                    else:
                        alive.append(entry)
                if alive:
                    heapq.heapify(alive)
                    self._buckets[index] = alive
                    total += len(alive)
                else:
                    del self._buckets[index]
            self._bucket_heap = list(self._buckets)
            heapq.heapify(self._bucket_heap)
            self._calendar_len = total
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Args:
            delay: Non-negative delay in simulated seconds.
            callback: Callable to invoke when the event fires.
            *args: Positional arguments for the callback.
            priority: Tie-break priority among events at the same timestamp;
                lower values fire first.

        Returns:
            The scheduled :class:`Event`, which may be cancelled.

        Raises:
            SimulationError: If ``delay`` is negative or not a finite number.
        """
        if not math.isfinite(delay):
            raise SimulationError(f"event delay must be finite, got {delay!r}")
        if delay < 0.0:
            raise SimulationError(f"cannot schedule an event {delay!r} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``.

        Raises:
            SimulationError: If ``time`` is not a finite number or is before
                the current clock.  NaN is rejected explicitly: it compares
                false against every clock value, so it would slip past the
                ordering check below and corrupt the event queue's invariant.
        """
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6g}: clock is already at t={self._now:.6g}"
            )
        self._sequence += 1
        event = Event(
            time=float(time),
            priority=priority,
            sequence=self._sequence,
            callback=callback,
            args=args,
            on_cancel=self._note_cancellation,
        )
        entry = (event.time, priority, self._sequence, event)
        if self._backend == "heap":
            heapq.heappush(self._heap, entry)
            if (
                self._queue_mode == "auto"
                and len(self._heap) > self._AUTO_CALENDAR_THRESHOLD
            ):
                self._migrate_to_calendar()
        else:
            self._calendar_push(entry)
        return event

    # ------------------------------------------------------------------
    # Calendar-queue internals
    # ------------------------------------------------------------------

    def _calendar_push(self, entry: tuple) -> None:
        index = int(entry[0] // self._bucket_width)
        bucket = self._buckets.get(index)
        if bucket:
            heapq.heappush(bucket, entry)
            if len(bucket) > self._MAX_BUCKET:
                self._resize_calendar()
        else:
            self._buckets[index] = [entry]
            heapq.heappush(self._bucket_heap, index)
        self._calendar_len += 1

    def _calendar_peek(self) -> Optional[tuple]:
        buckets = self._buckets
        bucket_heap = self._bucket_heap
        while bucket_heap:
            index = bucket_heap[0]
            bucket = buckets.get(index)
            if bucket:
                return bucket[0]
            # Stale index: its bucket drained (or was never refilled).
            heapq.heappop(bucket_heap)
            buckets.pop(index, None)
        return None

    def _calendar_pop(self) -> Optional[tuple]:
        entry = self._calendar_peek()
        if entry is None:
            return None
        bucket = self._buckets[self._bucket_heap[0]]
        heapq.heappop(bucket)
        self._calendar_len -= 1
        return entry

    def _calendar_entries(self) -> list[tuple]:
        entries: list[tuple] = []
        for bucket in self._buckets.values():
            entries.extend(bucket)
        return entries

    def _rebuild_calendar(self, entries: list[tuple]) -> None:
        """Re-bucket ``entries`` under the current width (order-preserving)."""
        width = self._bucket_width
        buckets: dict[int, list[tuple]] = {}
        for entry in entries:
            buckets.setdefault(int(entry[0] // width), []).append(entry)
        for bucket in buckets.values():
            heapq.heapify(bucket)
        self._buckets = buckets
        self._bucket_heap = list(buckets)
        heapq.heapify(self._bucket_heap)
        self._calendar_len = len(entries)

    def _resize_calendar(self) -> None:
        """Re-derive the bucket width from the observed event-time span."""
        entries = self._calendar_entries()
        if len(entries) < 2:
            return
        times = [entry[0] for entry in entries]
        span = max(times) - min(times)
        if span > 0.0:
            # Aim for a small constant number of events per bucket; ties all
            # share a timestamp so they necessarily share a bucket.
            self._bucket_width = max(span * 8.0 / len(entries), 1e-12)
        self._rebuild_calendar(entries)

    def _migrate_to_calendar(self) -> None:
        """Move the heap backlog into calendar buckets (``queue="auto"``)."""
        entries = self._heap
        self._heap = []
        self._backend = "calendar"
        if entries:
            times = [entry[0] for entry in entries]
            span = max(times) - min(times)
            if span > 0.0:
                self._bucket_width = max(span * 8.0 / len(entries), 1e-12)
        self._rebuild_calendar(entries)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event, advancing the clock to its time.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue is
            empty (the clock is left unchanged in that case).
        """
        cancelled = EventState.CANCELLED
        while True:
            if self._backend == "heap":
                if not self._heap:
                    return False
                entry = heapq.heappop(self._heap)
            else:
                entry = self._calendar_pop()
                if entry is None:
                    return False
            event = entry[3]
            if event.state is cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = entry[0]
            event._fire()
            self._events_processed += 1
            return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is exhausted (or ``max_events`` fired).

        Events are drained in batches: all entries sharing the head timestamp
        are popped in one pass of the inner loop, without re-entering
        :meth:`step` or re-reading engine state per event.

        Args:
            max_events: Optional safety cap on the number of events to
                process; ``None`` means run to completion.

        Returns:
            The number of events processed by this call.

        Raises:
            SimulationError: If the simulator is already running (re-entrant
                ``run`` calls from inside a callback are not allowed).
        """
        if self._running:
            raise SimulationError("Simulator.run() called re-entrantly from a callback")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while not self._stopped:
                if self._backend == "heap":
                    processed = self._run_heap(max_events, processed, math.inf)
                else:
                    processed = self._run_calendar(max_events, processed, math.inf)
                if max_events is not None and processed >= max_events:
                    break
                if self._backend == "heap":
                    if not self._heap:
                        break
                elif self._calendar_peek() is None:
                    break
        finally:
            self._running = False
        return processed

    def run_until(self, until: float) -> int:
        """Run events with timestamps ``<= until`` and set the clock to ``until``.

        Events scheduled after ``until`` remain in the queue, so the
        simulation can be resumed by a later call.

        Args:
            until: Absolute simulated time to run up to (inclusive).

        Returns:
            The number of events processed by this call.

        Raises:
            SimulationError: If ``until`` is before the current clock or the
                simulator is already running.
        """
        if until < self._now:
            raise SimulationError(
                f"run_until({until!r}) is before the current time {self._now!r}"
            )
        if self._running:
            raise SimulationError("Simulator.run_until() called re-entrantly from a callback")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while not self._stopped:
                if self._backend == "heap":
                    processed = self._run_heap(None, processed, until)
                else:
                    processed = self._run_calendar(None, processed, until)
                head = self._heap[0] if self._heap else self._calendar_peek()
                if head is None or head[0] > until:
                    break
        finally:
            self._running = False
        if not self._stopped:
            self._now = max(self._now, until)
        return processed

    def _run_heap(self, max_events: Optional[int], processed: int, until: float) -> int:
        """Tight heap drain loop; returns the updated processed count.

        Returns early (without error) when the backend migrates to the
        calendar queue mid-run, when ``until`` or ``max_events`` is reached,
        or when :meth:`stop` is called from a callback.
        """
        heap = self._heap  # compacted in place by _purge_cancelled
        pop = heapq.heappop
        cancelled = EventState.CANCELLED
        fired = EventState.FIRED
        while heap:
            head_time = heap[0][0]
            if head_time > until:
                break
            # Batch-drain every entry at this timestamp in one pass.
            while heap and heap[0][0] == head_time:
                entry = pop(heap)
                event = entry[3]
                if event.state is cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                self._now = head_time
                event.state = fired
                event.callback(*event.args)
                self._events_processed += 1
                processed += 1
                if self._stopped:
                    return processed
                if max_events is not None and processed >= max_events:
                    return processed
            if self._backend != "heap":
                break
        return processed

    def _run_calendar(
        self, max_events: Optional[int], processed: int, until: float
    ) -> int:
        """Calendar-queue drain loop mirroring :meth:`_run_heap`."""
        cancelled = EventState.CANCELLED
        fired = EventState.FIRED
        while True:
            head = self._calendar_peek()
            if head is None:
                break
            head_time = head[0]
            if head_time > until:
                break
            bucket = self._buckets[self._bucket_heap[0]]
            while bucket and bucket[0][0] == head_time:
                entry = heapq.heappop(bucket)
                self._calendar_len -= 1
                event = entry[3]
                if event.state is cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                self._now = head_time
                event.state = fired
                event.callback(*event.args)
                self._events_processed += 1
                processed += 1
                if self._stopped:
                    return processed
                if max_events is not None and processed >= max_events:
                    return processed
                # Callbacks may schedule into (or purge) this same bucket;
                # re-resolve it so the local reference never goes stale.
                head = self._calendar_peek()
                if head is None or head[0] != head_time:
                    break
                bucket = self._buckets[self._bucket_heap[0]]
        return processed

    def stop(self) -> None:
        """Request that the current :meth:`run`/:meth:`run_until` call return.

        Safe to call from inside an event callback; the event currently being
        processed completes, and no further events fire.
        """
        self._stopped = True

    def clear(self) -> None:
        """Drop all pending events without firing them.  The clock is kept.

        ``_sequence`` intentionally survives a clear: it is the global
        tie-break of the event ordering key, and resetting it would let an
        event scheduled after the clear compare equal to (or before) a stale
        pre-clear handle, breaking the determinism of event order when a
        simulator is reused.  The monotonic sequence also keeps heap entries
        totally ordered, so comparisons never fall through to the ``Event``
        objects themselves.
        """
        for entry in self._heap:
            entry[3].on_cancel = None
        self._heap.clear()
        for bucket in self._buckets.values():
            for entry in bucket:
                entry[3].on_cancel = None
        self._buckets.clear()
        self._bucket_heap.clear()
        self._calendar_len = 0
        self._cancelled_in_heap = 0
