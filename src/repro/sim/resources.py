"""Queueing resources built on the event engine.

The substrates share three building blocks:

* :class:`Server` — a single FIFO queue + server with caller-supplied service
  times.  This is the work-horse of the Section 2.1 queueing model and of the
  disk/memcached models, where "the disk" or "the memcached process" is a
  server whose service time depends on the request.
* :class:`FifoQueue` — a plain FIFO buffer with optional capacity, used for
  switch output queues when priorities are not needed.
* :class:`PriorityQueueResource` — a strict-priority, drop-tail byte-bounded
  queue used by the fat-tree switches in Section 2.4 (original packets at high
  priority, replicated packets at low priority).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator


class Server:
    """A single-server FIFO queue.

    Jobs are submitted with :meth:`submit`; each job carries a service time
    and a completion callback.  The server works on one job at a time in
    arrival order.  The completion callback receives
    ``(job, start_time, finish_time)`` so callers can compute waiting and
    response times without the server knowing anything about the experiment.

    Attributes:
        busy: Whether a job is currently in service.
        queue_length: Number of jobs waiting (not counting the one in service).
    """

    def __init__(self, sim: Simulator, name: str = "server") -> None:
        """Create an idle server attached to ``sim``."""
        self._sim = sim
        self.name = name
        self.busy = False
        self._queue: Deque[Tuple[Any, float, Callable[[Any, float, float], None]]] = deque()
        self.jobs_completed = 0
        self.busy_time = 0.0

    @property
    def queue_length(self) -> int:
        """Number of jobs waiting for service (excludes the job in service)."""
        return len(self._queue)

    def submit(
        self,
        job: Any,
        service_time: float,
        on_complete: Callable[[Any, float, float], None],
    ) -> Tuple[Any, float, Callable[[Any, float, float], None]]:
        """Enqueue ``job`` requiring ``service_time`` seconds of service.

        Args:
            job: Opaque job object handed back to ``on_complete``.
            service_time: Non-negative service requirement in seconds.
            on_complete: Called as ``on_complete(job, start, finish)`` when the
                job finishes service.

        Returns:
            An opaque entry token; pass it to :meth:`cancel` to withdraw the
            job while it is still waiting (hedged requests cancel their losing
            copies this way).

        Raises:
            ConfigurationError: If ``service_time`` is negative.
        """
        if service_time < 0:
            raise ConfigurationError(f"service_time must be >= 0, got {service_time!r}")
        entry = (job, float(service_time), on_complete)
        self._queue.append(entry)
        if not self.busy:
            self._start_next()
        return entry

    def cancel(self, entry: Tuple[Any, float, Callable[[Any, float, float], None]]) -> bool:
        """Withdraw a queued job before it starts service.

        Args:
            entry: The token :meth:`submit` returned.

        Returns:
            ``True`` if the job was still waiting and has been removed;
            ``False`` if it already started (or finished) service — a job in
            service runs to completion, matching the paper's observation that
            cancellation saves queueing, not work already under way.
        """
        try:
            self._queue.remove(entry)
        except ValueError:
            return False
        return True

    def _start_next(self) -> None:
        if not self._queue:
            self.busy = False
            return
        self.busy = True
        job, service_time, on_complete = self._queue.popleft()
        start = self._sim.now
        finish = start + service_time
        self.busy_time += service_time
        self._sim.schedule(service_time, self._finish, job, start, finish, on_complete)

    def _finish(
        self,
        job: Any,
        start: float,
        finish: float,
        on_complete: Callable[[Any, float, float], None],
    ) -> None:
        self.jobs_completed += 1
        on_complete(job, start, finish)
        self._start_next()

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the server has been busy.

        Args:
            elapsed: Observation window in seconds; defaults to the current
                simulated time.
        """
        window = self._sim.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_time / window)


class FifoQueue:
    """A capacity-bounded FIFO buffer (in items), with drop counting."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        """Create a queue holding at most ``capacity`` items (``None`` = unbounded)."""
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(f"capacity must be positive or None, got {capacity!r}")
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self.drops = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item: Any) -> bool:
        """Append ``item``; returns ``False`` (and counts a drop) if full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.drops += 1
            return False
        self._items.append(item)
        return True

    def pop(self) -> Any:
        """Remove and return the oldest item.

        Raises:
            IndexError: If the queue is empty.
        """
        return self._items.popleft()

    def peek(self) -> Any:
        """Return the oldest item without removing it."""
        return self._items[0]

    @property
    def empty(self) -> bool:
        """Whether the queue holds no items."""
        return not self._items


class PriorityQueueResource:
    """A strict-priority, byte-bounded, drop-tail queue.

    Used for switch output ports: each enqueued item has a priority class
    (lower number = served strictly first) and a size in bytes.  The total
    byte occupancy across all priority classes is bounded by
    ``capacity_bytes``; an arriving item that does not fit is dropped
    regardless of priority (drop-tail, as in the paper's ns-3 setup).
    """

    def __init__(self, capacity_bytes: Optional[float], levels: int = 2) -> None:
        """Create a queue with ``levels`` strict-priority classes.

        Args:
            capacity_bytes: Shared byte budget across classes (``None`` =
                unbounded).
            levels: Number of priority classes (>= 1).
        """
        if levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {levels!r}")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be positive or None, got {capacity_bytes!r}"
            )
        self.capacity_bytes = capacity_bytes
        self.levels = levels
        self._queues: List[Deque[Tuple[Any, float]]] = [deque() for _ in range(levels)]
        self.occupancy_bytes = 0.0
        self.drops = 0
        self.drops_by_priority = [0] * levels

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    def push(
        self, item: Any, size_bytes: float, priority: int = 0, displace_lower: bool = True
    ) -> bool:
        """Enqueue ``item`` of ``size_bytes`` at ``priority`` (0 = highest).

        When the shared buffer is full and ``displace_lower`` is true, queued
        items of *strictly lower* priority are dropped (newest first) to make
        room for the arriving higher-priority item.  This preserves the
        Section 2.4 guarantee that replicated (low-priority) traffic can never
        cause loss or delay of ordinary traffic, even though the buffer is
        shared.

        Returns:
            ``True`` if enqueued, ``False`` if dropped for lack of buffer space.

        Raises:
            ConfigurationError: If ``priority`` is outside ``[0, levels)``.
        """
        if not 0 <= priority < self.levels:
            raise ConfigurationError(
                f"priority {priority!r} outside [0, {self.levels}) for this queue"
            )
        if (
            self.capacity_bytes is not None
            and self.occupancy_bytes + size_bytes > self.capacity_bytes
        ):
            if displace_lower:
                self._displace_lower_priority(size_bytes, priority)
            if self.occupancy_bytes + size_bytes > self.capacity_bytes:
                self.drops += 1
                self.drops_by_priority[priority] += 1
                return False
        self._queues[priority].append((item, float(size_bytes)))
        self.occupancy_bytes += size_bytes
        return True

    def _displace_lower_priority(self, needed_bytes: float, priority: int) -> None:
        """Drop lower-priority items (newest first) until ``needed_bytes`` fit."""
        assert self.capacity_bytes is not None
        for lower in range(self.levels - 1, priority, -1):
            queue = self._queues[lower]
            while queue and self.occupancy_bytes + needed_bytes > self.capacity_bytes:
                _, size = queue.pop()
                self.occupancy_bytes -= size
                self.drops += 1
                self.drops_by_priority[lower] += 1
            if self.occupancy_bytes + needed_bytes <= self.capacity_bytes:
                return

    def pop(self) -> Tuple[Any, float, int]:
        """Dequeue from the highest-priority non-empty class.

        Returns:
            ``(item, size_bytes, priority)``.

        Raises:
            IndexError: If every class is empty.
        """
        for priority, queue in enumerate(self._queues):
            if queue:
                item, size = queue.popleft()
                self.occupancy_bytes -= size
                return item, size, priority
        raise IndexError("pop from empty PriorityQueueResource")

    @property
    def empty(self) -> bool:
        """Whether all priority classes are empty."""
        return all(not q for q in self._queues)

    def occupancy_of(self, priority: int) -> int:
        """Number of items queued at ``priority``."""
        return len(self._queues[priority])
