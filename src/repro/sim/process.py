"""Generator-based processes on top of the event engine.

The callback style of :class:`~repro.sim.engine.Simulator` is fast but awkward
for multi-step behaviours (a client that sends a request, waits, retries, ...).
:class:`Process` wraps a Python generator so that sequential simulated
behaviour can be written in straight-line code, SimPy-style::

    def client(sim):
        yield Timeout(1.0)            # sleep one simulated second
        result = yield WaitFor(done)  # wait for another process / completion
        ...

    Process(sim, client(sim))

Only two yieldable primitives are provided because they are all the experiment
drivers need: :class:`Timeout` (sleep) and :class:`WaitFor` (wait until a
:class:`Completion` is triggered, receiving its value).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.sim.engine import Simulator


class Timeout:
    """Yieldable: suspend the process for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"Timeout delay must be non-negative, got {delay!r}")
        self.delay = float(delay)


class Completion:
    """A one-shot condition processes can wait on (a tiny future).

    A completion starts pending; :meth:`succeed` triggers it with a value, and
    every process waiting on it (via :class:`WaitFor`) is resumed with that
    value.  Triggering twice is an error — completions are one-shot by design
    so accidental double-completion in a model surfaces as a bug immediately.
    """

    def __init__(self, sim: Simulator) -> None:
        """Create a pending completion bound to ``sim``."""
        self._sim = sim
        self._value: Any = None
        self._done = False
        self._waiters: List["Process"] = []

    @property
    def done(self) -> bool:
        """Whether :meth:`succeed` has been called."""
        return self._done

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (``None`` while pending)."""
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Trigger the completion, resuming all waiting processes.

        Raises:
            SimulationError: If the completion was already triggered.
        """
        if self._done:
            raise SimulationError("Completion.succeed() called twice")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim.schedule(0.0, process._resume, value)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)


class WaitFor:
    """Yieldable: suspend until ``completion`` is triggered.

    The process receives ``completion.value`` as the result of the ``yield``.
    If the completion is already done, the process resumes on the next
    zero-delay event (so ordering stays deterministic).
    """

    __slots__ = ("completion",)

    def __init__(self, completion: Completion) -> None:
        self.completion = completion


class Process:
    """Drive a generator as a simulated process.

    The generator may yield :class:`Timeout` or :class:`WaitFor` instances.
    When the generator returns, the process is finished and :attr:`finished`
    becomes ``True``; its return value (via ``return value``) is stored in
    :attr:`result` and the :attr:`completion` is triggered with it, so other
    processes can wait for this one.
    """

    def __init__(self, sim: Simulator, generator: Generator[Any, Any, Any]) -> None:
        """Register ``generator`` with ``sim`` and start it at the current time."""
        self._sim = sim
        self._generator = generator
        self.finished = False
        self.result: Any = None
        self.completion = Completion(sim)
        sim.schedule(0.0, self._resume, None)

    def _resume(self, value: Any) -> None:
        """Advance the generator with ``value`` and act on what it yields."""
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.completion.succeed(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._sim.schedule(yielded.delay, self._resume, None)
        elif isinstance(yielded, WaitFor):
            completion = yielded.completion
            if completion.done:
                self._sim.schedule(0.0, self._resume, completion.value)
            else:
                completion._add_waiter(self)
        elif isinstance(yielded, Process):
            self._dispatch(WaitFor(yielded.completion))
        else:
            raise SimulationError(
                f"process yielded unsupported object {yielded!r}; "
                "expected Timeout, WaitFor or Process"
            )


def run_processes(sim: Simulator, *generators: Generator[Any, Any, Any]) -> Tuple[Any, ...]:
    """Convenience helper: run ``generators`` as processes until the sim drains.

    Returns:
        The return values of the processes, in the order given.
    """
    processes = [Process(sim, gen) for gen in generators]
    sim.run()
    unfinished = [i for i, p in enumerate(processes) if not p.finished]
    if unfinished:
        raise SimulationError(
            f"processes {unfinished} did not finish; they are waiting on a "
            "completion that nothing triggers (deadlock)"
        )
    return tuple(p.result for p in processes)
