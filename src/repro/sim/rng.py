"""Reproducible random-number streams for simulations.

Every experiment in the repository draws its randomness through this module so
that (a) results are reproducible given a seed and (b) logically independent
parts of a simulation (arrivals, service times, server selection, network
noise, ...) use independent streams.  Independent streams matter for variance
reduction when comparing configurations: the "1 copy" and "2 copies" runs of
an experiment can share the arrival and service streams so that the comparison
is paired rather than independent, exactly as the paper's testbed did by
replaying the same workload.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional

import numpy as np


def _stable_key_hash(part: object) -> int:
    """A process-independent 32-bit hash of a key component.

    Python's built-in ``hash`` is salted per process for strings, which would
    make "reproducible" streams differ between runs; hashing the repr with
    BLAKE2 keeps streams stable across processes and platforms.
    """
    digest = hashlib.blake2b(str(part).encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big")


def substream(seed: Optional[int], *key: object) -> np.random.Generator:
    """Derive an independent :class:`numpy.random.Generator` from a seed and key.

    The same ``(seed, key)`` pair always yields the same stream, and different
    keys yield streams that are independent for all practical purposes (the
    key is folded into NumPy's ``SeedSequence`` entropy).

    Args:
        seed: Base seed (``None`` draws fresh OS entropy, which makes the run
            non-reproducible — fine for exploratory use, avoided in tests).
        *key: Arbitrary hashable objects identifying the purpose of the
            stream, e.g. ``substream(7, "arrivals", server_id)``.

    Returns:
        A NumPy ``Generator`` seeded deterministically from ``seed`` and ``key``.
    """
    material: list[int] = []
    if seed is not None:
        material.append(int(seed) & 0xFFFFFFFF)
    for part in key:
        material.append(_stable_key_hash(part))
    if seed is None and not material:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence(material))


class RandomStreams:
    """A named collection of independent random streams sharing one base seed.

    Example:
        >>> streams = RandomStreams(seed=42)
        >>> arrivals = streams.get("arrivals")
        >>> service = streams.get("service")
        >>> arrivals is streams.get("arrivals")
        True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        """Create a stream factory rooted at ``seed``."""
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = substream(self.seed, name)
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Return a child :class:`RandomStreams` rooted at a derived seed.

        Useful when an experiment spawns per-server or per-client components
        that each need their own families of streams.
        """
        derived = substream(self.seed, "fork", name).integers(0, 2**31 - 1)
        return RandomStreams(int(derived))

    def names(self) -> Iterable[str]:
        """Names of the streams created so far (mainly for debugging)."""
        return tuple(self._streams)
