"""The straggler mitigator: one policy instance per stage, fed per stage.

The mitigator owns the run's :class:`~repro.core.policy.ReplicationPolicy`
instances — one per stage, parsed from a single spec — so adaptive hedges
(``hedge:p95``) track each stage's *own* chunk-latency distribution: a map
stage's hedge delay should not chase reduce-stage latencies.  After every
stage execution :meth:`StragglerMitigator.observe` feeds the chunk latencies
back in completion order (ties broken by chunk index), the same
completion-ordered contract the request-level engines honour; the feedback
therefore shapes the *next* job's plans for that stage, never the stage that
produced it (all of a stage's plans are made at its barrier, before any of
its completions).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.policy import (
    PolicyLike,
    ReplicationPolicy,
    canonical_policy_spec,
    eager_copies,
    parse_policy,
)
from repro.pipeline.workers import WorkerPool

__all__ = ["StragglerMitigator"]


class StragglerMitigator:
    """Applies one policy spec per chunk, stage by stage, across a run."""

    def __init__(self, policy: PolicyLike, num_stages: int) -> None:
        """Create per-stage policy instances from one spec.

        Args:
            policy: A policy spec (``"none"``, ``"k2"``, ``"hedge:10ms"``,
                ``"hedge:p95"``), policy object or copy count.  Specs are
                parsed once per stage so adaptive state is per-stage; a
                ready-made policy *object* is shared across stages verbatim.
            num_stages: Number of stages in the job chain.
        """
        self.spec = canonical_policy_spec(policy)
        if isinstance(policy, ReplicationPolicy):
            self.policies: List[ReplicationPolicy] = [policy] * num_stages
        else:
            self.policies = [parse_policy(policy) for _ in range(num_stages)]

    def policy_for(self, stage: int) -> ReplicationPolicy:
        """The (stateful) policy instance driving ``stage``."""
        return self.policies[stage]

    def max_copies(self, stage: int) -> int:
        """Copies to place for ``stage`` (the policy's plan-size bound)."""
        return self.policies[stage].max_copies

    def fastpath_eligible(self, pool: WorkerPool) -> bool:
        """Whether the closed-form fast path can express this run.

        True only when every stage's policy is static, launches all copies
        immediately and never cancels (``eager_copies`` is not None) *and*
        workers cannot fail — the exact regime where a stage's outcome is a
        max of FIFO finish times.
        """
        if pool.fail_probability > 0.0:
            return False
        return all(eager_copies(policy) is not None for policy in self.policies)

    def observe(self, stage: int, finish_at: np.ndarray, start_at: float) -> None:
        """Feed one stage execution's chunk latencies back to its policy.

        Latencies are recorded in completion order (stable on ties), the
        order a live scheduler would observe them.  Static policies ignore
        the feedback, so both execution paths may call this unconditionally.
        """
        order = np.argsort(finish_at, kind="stable")
        policy = self.policies[stage]
        for index in order:
            policy.record_latency(float(finish_at[index] - start_at))
