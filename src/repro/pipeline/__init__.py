"""Redundant job pipelines: straggler-hedged fan-out/fan-in (sixth substrate).

The paper hedges individual RPCs; this package applies the identical
cost/benefit math to duplicate *task* dispatch in a worker fleet, where job
completion time is a max over chunk completions (the fan-in), so one
straggling chunk holds the whole job hostage and tails compound far worse
than for independent requests.

The pieces, bottom up:

* :mod:`repro.pipeline.job` — jobs split into chunks with seeded
  heavy-tailed sizes; multi-stage chains whose shuffle edges scale the work
  entering the next stage.
* :mod:`repro.pipeline.workers` — the FIFO worker pool: straggler
  multipliers, seeded crash/restart cycles, distinct-worker placement.
* :mod:`repro.pipeline.mitigator` — per-stage
  :class:`~repro.core.policy.ReplicationPolicy` instances applying any
  policy spec per chunk, with completion-ordered latency feedback.
* :mod:`repro.pipeline.executor` / :mod:`repro.pipeline.fastpath` — the
  event-driven engine (any policy, failures, cancel-on-win) and the
  closed-form vectorised path (eager, failure-free), byte-identical and
  selected by the ``REPRO_PIPELINE_PATH`` flag.
* :mod:`repro.pipeline.result` / :mod:`repro.pipeline.experiment` — shared
  accounting (job completion percentiles, per-stage makespans, wasted-work
  fraction) and the run loop tying it together.
"""

from repro.pipeline.experiment import (
    PipelineConfig,
    PipelineExperiment,
    resolve_pipeline_path,
)
from repro.pipeline.job import JobSpec, StageSpec, partition_chunks, stage_workloads
from repro.pipeline.mitigator import StragglerMitigator
from repro.pipeline.result import PipelineRunResult, StageOutcome, stage_accounting
from repro.pipeline.workers import WorkerPool, draw_placements

__all__ = [
    "JobSpec",
    "StageSpec",
    "partition_chunks",
    "stage_workloads",
    "WorkerPool",
    "draw_placements",
    "StragglerMitigator",
    "PipelineConfig",
    "PipelineExperiment",
    "PipelineRunResult",
    "StageOutcome",
    "stage_accounting",
    "resolve_pipeline_path",
]
