"""The event-driven stage executor: any policy, failures, cancel-on-win.

One stage execution is one call into the PR 8 cancellable event engine
(:func:`repro.core.cancellation.simulate_cancelling_arrivals`): every chunk
"arrives" at the stage's barrier time, its copies queue at their placed
workers (FIFO stations), hedged backups fire only for chunks still pending,
and — when the policy says so — a win withdraws the chunk's still-queued
duplicate copies from their workers.  The engine's ``on_copy_resolved`` hook
fills the per-copy completion/busy-seconds arrays that
:func:`repro.pipeline.result.stage_accounting` turns into wasted-work
figures.

Service times are drawn inside the dispatch callback, in event order — for
eager plans that is chunk-major copy-minor, exactly the order the fast
path's batched draw replays.
"""

from __future__ import annotations

import numpy as np

from repro.core.cancellation import simulate_cancelling_arrivals
from repro.core.policy import ReplicationPolicy
from repro.pipeline.result import StageOutcome
from repro.pipeline.workers import WorkerPool, attempt_service

__all__ = ["run_stage_event"]


def run_stage_event(
    sizes: np.ndarray,
    placements: np.ndarray,
    policy: ReplicationPolicy,
    pool: WorkerPool,
    rng: np.random.Generator,
    start_at: float,
) -> StageOutcome:
    """Execute one stage through the cancellable event engine.

    Args:
        sizes: ``(num_chunks,)`` chunk sizes in work units.
        placements: ``(num_chunks, copies)`` worker index per copy.
        policy: The stage's straggler-mitigation policy (shared across the
            run's jobs, so adaptive hedges keep their observed window).
        pool: The worker pool (service scale, stragglers, failures).
        rng: The stage's service substream, consumed in dispatch order.
        start_at: The stage's barrier time; every chunk arrives then.
    """
    num_chunks, max_copies = placements.shape
    copy_finish = np.full((num_chunks, max_copies), np.inf)
    work = np.zeros((num_chunks, max_copies))

    def server_of(request: int, copy: int) -> int:
        return int(placements[request, copy])

    def begin(request: int, copy: int, at: float):
        return ("service", attempt_service(float(sizes[request]), pool, rng), 0.0)

    def on_copy_resolved(
        request: int, copy: int, outcome: str, work_s: float, finish_s: float
    ) -> None:
        if outcome == "finished":
            copy_finish[request, copy] = finish_s
            work[request, copy] = work_s

    arrivals = np.full(num_chunks, float(start_at))
    finish_at, launched, cancelled = simulate_cancelling_arrivals(
        policy,
        arrivals,
        max_copies=max_copies,
        server_of=server_of,
        begin=begin,
        on_copy_resolved=on_copy_resolved,
    )
    return StageOutcome(
        finish_at=finish_at,
        copy_finish=copy_finish,
        work=work,
        launched=int(np.sum(launched)),
        cancelled=int(np.sum(cancelled)),
    )
