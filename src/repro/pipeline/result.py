"""Result containers and the shared accounting the two execution paths feed.

Both executors return a :class:`StageOutcome` — per-chunk completion times
plus a per-copy ``(chunks, copies)`` view of completions and busy seconds —
and every scalar derived from it (wasted work, winners, the barrier) is
computed *here*, once, by :func:`stage_accounting` and the
:class:`PipelineRunResult` assembly.  Because the event-driven and fast
paths produce bit-identical arrays, routing all reductions through shared
code makes every downstream float (sums included, whose value depends on
reduction order) bit-identical too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as np

from repro.analysis.stats import LatencySummary
from repro.metrics import LatencyRecorder

__all__ = ["StageOutcome", "PipelineRunResult", "stage_accounting"]


@dataclass(frozen=True)
class StageOutcome:
    """What one stage execution produced, path-independently.

    Attributes:
        finish_at: ``(num_chunks,)`` absolute completion time of each chunk
            (its earliest-finishing copy).
        copy_finish: ``(num_chunks, copies)`` absolute completion per copy;
            ``inf`` for copies that were cancelled or never launched.
        work: ``(num_chunks, copies)`` busy seconds each copy held its
            worker; ``0.0`` for cancelled / unlaunched copies.
        launched: Total copies dispatched.
        cancelled: Total copies withdrawn from worker queues on a win.
    """

    finish_at: np.ndarray
    copy_finish: np.ndarray
    work: np.ndarray
    launched: int
    cancelled: int


def stage_accounting(outcome: StageOutcome) -> Tuple[float, float]:
    """``(useful_s, wasted_s)`` of one stage.

    The useful work of a chunk is the busy time of its *winning* copy (the
    earliest finisher, first copy on ties — matching the engines'
    strict-less win rule); everything else any copy burned — losing eager
    copies, hedges that fired but lost, crash/restart cycles of the winner
    are part of *its* busy time and hence useful — is wasted.
    """
    num_chunks = outcome.finish_at.shape[0]
    winners = np.argmin(outcome.copy_finish, axis=1)
    useful = float(np.sum(outcome.work[np.arange(num_chunks), winners]))
    wasted = float(np.sum(outcome.work)) - useful
    return useful, wasted


@dataclass(frozen=True)
class PipelineRunResult:
    """Aggregate result of a pipeline run (many jobs through one config).

    Attributes:
        policy: Canonical spec of the straggler-mitigation policy.
        path: Which execution path ran (``"event"`` or ``"fast"``) — for
            introspection only; excluded from artifacts, which must not
            depend on it.
        job_completion_s: ``(num_jobs,)`` completion time of each job.
        stage_makespan_s: ``(num_jobs, num_stages)`` per-stage makespans.
        useful_work_s: Winning-copy busy seconds across the run.
        wasted_work_s: Duplicate busy seconds across the run.
        copies_launched: Chunk copies dispatched across the run.
        copies_cancelled: Copies withdrawn from queues on wins.
        chunks: Total chunks executed.
        metrics: The run's metrics snapshot (counters + recorders).
    """

    policy: str
    path: str
    job_completion_s: np.ndarray
    stage_makespan_s: np.ndarray
    useful_work_s: float
    wasted_work_s: float
    copies_launched: int
    copies_cancelled: int
    chunks: int
    metrics: Dict[str, Any]

    @property
    def num_jobs(self) -> int:
        """Number of jobs the run executed."""
        return int(self.job_completion_s.shape[0])

    @property
    def num_stages(self) -> int:
        """Stages per job."""
        return int(self.stage_makespan_s.shape[1])

    @property
    def wasted_work_fraction(self) -> float:
        """Duplicate chunk-seconds per useful chunk-second (the cost axis)."""
        if self.useful_work_s <= 0.0:
            return 0.0
        return self.wasted_work_s / self.useful_work_s

    @property
    def copies_per_chunk(self) -> float:
        """Mean copies dispatched per chunk (1.0 means no redundancy)."""
        if self.chunks == 0:
            return 0.0
        return self.copies_launched / self.chunks

    def summary(self) -> LatencySummary:
        """Percentile summary of the job completion times."""
        return LatencyRecorder.from_samples(
            self.job_completion_s, name="job_completion"
        ).summary()
