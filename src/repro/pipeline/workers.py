"""The worker-pool model: bounded slots, stragglers, failures, placement.

A :class:`WorkerPool` is a set of FIFO worker slots.  A chunk copy placed on
a worker queues behind whatever the worker is already running — the pipeline
executors model each worker as one FIFO station, exactly like the cluster
substrates' servers.  Per-copy service time is the chunk size scaled by
``seconds_per_unit`` and inflated by a truncated-Pareto straggler multiplier
(:func:`service_times` — the ubiquitous heavy-tailed-machine model), and
seeded worker failures fold crash/restart cycles into the copy's busy time
at dispatch (:func:`attempt_service`), preserving the FIFO property that a
copy's completion is known the moment it enters service.

Determinism note: the straggler multiplier is computed with ``np.power`` on
the drawn uniforms in *both* the scalar (event-driven) and batched (fast
path) consumers.  NumPy's ufunc produces bit-identical results for scalar
and array operands, which Python's ``**`` does not guarantee — this is what
keeps the two execution paths byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["WorkerPool", "service_times", "attempt_service", "draw_placements"]

#: Upper bound on the straggler multiplier, mirroring the chunk-size cap:
#: far beyond any quantile a run can reach, but it keeps a single 2^-53-edge
#: uniform from producing a physically meaningless service time.
STRAGGLER_TAIL_CAP = 1e6


@dataclass(frozen=True)
class WorkerPool:
    """A homogeneous pool of FIFO worker slots.

    Attributes:
        num_workers: Number of worker slots (>= 1).
        seconds_per_unit: Base seconds of service per unit of chunk size.
        straggler_alpha: Pareto tail index of the per-copy straggler
            multiplier (> 0); smaller means heavier machine-skew tails.
        fail_probability: Per-attempt probability that the worker crashes
            partway through a copy (in [0, 1)); each crash loses a uniform
            fraction of the copy's service and adds ``restart_s`` before the
            retry, all folded into the copy's busy time.
        restart_s: Worker restart delay after a crash (>= 0).
    """

    num_workers: int
    seconds_per_unit: float = 1.0
    straggler_alpha: float = 2.0
    fail_probability: float = 0.0
    restart_s: float = 1.0

    def __post_init__(self) -> None:
        if self.num_workers < 1 or int(self.num_workers) != self.num_workers:
            raise ConfigurationError(
                f"num_workers must be a positive integer, got {self.num_workers!r}"
            )
        if self.seconds_per_unit <= 0:
            raise ConfigurationError(
                f"seconds_per_unit must be positive, got {self.seconds_per_unit!r}"
            )
        if self.straggler_alpha <= 0:
            raise ConfigurationError(
                f"straggler_alpha must be positive, got {self.straggler_alpha!r}"
            )
        if not 0.0 <= self.fail_probability < 1.0:
            raise ConfigurationError(
                f"fail_probability must be in [0, 1), got {self.fail_probability!r}"
            )
        if self.restart_s < 0:
            raise ConfigurationError(
                f"restart_s must be >= 0, got {self.restart_s!r}"
            )


def service_times(sizes, uniforms, pool: WorkerPool):
    """Failure-free service seconds for chunk sizes and their uniforms.

    Works elementwise on scalars or arrays; the batched fast path and the
    scalar event path share this exact expression (see the module docstring
    for why that matters).

    Args:
        sizes: Chunk size(s) in work units.
        uniforms: Uniform draw(s) in [0, 1), one per copy.
        pool: The worker pool supplying the scale and tail index.
    """
    multiplier = np.minimum(
        np.power(1.0 - uniforms, -1.0 / pool.straggler_alpha), STRAGGLER_TAIL_CAP
    )
    return (sizes * pool.seconds_per_unit) * multiplier


def attempt_service(size: float, pool: WorkerPool, rng: np.random.Generator) -> float:
    """Busy seconds one copy occupies its worker, crash/restart cycles included.

    Draws the copy's straggler uniform, then — only when the pool can fail —
    repeatedly flips the crash coin: each crash loses a uniform fraction of
    the copy's service and costs ``restart_s`` of restart before the retry.
    When ``fail_probability`` is zero no failure draws are consumed at all,
    which keeps the substream aligned with the fast path's batched draws.

    Args:
        size: Chunk size in work units.
        pool: The worker pool (scale, tail index, failure model).
        rng: The stage's service substream, consumed in dispatch order.
    """
    service = float(service_times(size, float(rng.random()), pool))
    busy = service
    if pool.fail_probability > 0.0:
        while float(rng.random()) < pool.fail_probability:
            lost = float(rng.random()) * service
            busy = busy + (lost + pool.restart_s)
    return busy


def draw_placements(
    num_chunks: int, copies: int, num_workers: int, rng: np.random.Generator
) -> np.ndarray:
    """Assign each chunk's copies to ``copies`` distinct workers.

    Drawn up front (before any simulation event) so placement is identical
    under the event-driven and fast paths, which consume it in different
    orders.

    Args:
        num_chunks: Number of chunks in the stage.
        copies: Copies per chunk (each on a distinct worker).
        num_workers: Pool size; must be >= ``copies``.
        rng: The stage's placement substream.

    Returns:
        ``(num_chunks, copies)`` array of worker indices.
    """
    if copies > num_workers:
        raise ConfigurationError(
            f"cannot place {copies} distinct copies on {num_workers} worker(s); "
            "the policy's copy count exceeds the pool size"
        )
    placements = np.empty((num_chunks, copies), dtype=np.int64)
    for chunk in range(num_chunks):
        placements[chunk] = rng.choice(num_workers, size=copies, replace=False)
    return placements
