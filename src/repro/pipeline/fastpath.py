"""The vectorised fast path: closed-form stage execution for eager plans.

When every copy launches immediately, never cancels, and workers cannot
fail, a stage's outcome is a closed form: all ``num_chunks * copies``
dispatches happen at the barrier, in chunk-major copy-minor order, so each
worker's queue content — and hence, by the FIFO busy-period recursion, every
copy's completion — is known without an event loop.  This path batches the
whole stage's straggler uniforms in one draw (bit-identical to the event
path's per-dispatch scalar draws from the same substream) and runs the
pinned :func:`repro.cluster.draws.sequential_finish_times` recursion per
worker, so its :class:`~repro.pipeline.result.StageOutcome` matches the
event executor's bit for bit.  CI holds the two paths to byte-identical
artifacts under the ``REPRO_PIPELINE_PATH`` flag.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.draws import sequential_finish_times
from repro.pipeline.result import StageOutcome
from repro.pipeline.workers import WorkerPool, service_times

__all__ = ["run_stage_fast"]


def run_stage_fast(
    sizes: np.ndarray,
    placements: np.ndarray,
    pool: WorkerPool,
    rng: np.random.Generator,
    start_at: float,
) -> StageOutcome:
    """Execute one eager, failure-free stage in closed form.

    Args:
        sizes: ``(num_chunks,)`` chunk sizes in work units.
        placements: ``(num_chunks, copies)`` worker index per copy.
        pool: The worker pool; ``fail_probability`` must be 0 (the caller
            guarantees eligibility — see ``resolve_pipeline_path``).
        rng: The stage's service substream; one batched draw replaces the
            event path's per-dispatch scalars.
        start_at: The stage's barrier time; every copy dispatches then.
    """
    num_chunks, copies = placements.shape
    uniforms = rng.random(num_chunks * copies)
    services = np.asarray(
        service_times(np.repeat(sizes, copies), uniforms, pool), dtype=float
    )
    stations = placements.reshape(-1)
    finish_flat = np.empty(num_chunks * copies)
    arrival = float(start_at)
    for worker in np.unique(stations):
        queued = np.flatnonzero(stations == worker)
        finish_flat[queued] = sequential_finish_times(
            np.full(queued.size, arrival), services[queued]
        )
    copy_finish = finish_flat.reshape(num_chunks, copies)
    return StageOutcome(
        finish_at=np.min(copy_finish, axis=1),
        copy_finish=copy_finish,
        work=services.reshape(num_chunks, copies),
        launched=num_chunks * copies,
        cancelled=0,
    )
