"""The pipeline experiment: jobs through stages, policies, and both paths.

:class:`PipelineExperiment` runs ``num_jobs`` independent jobs of one
:class:`~repro.pipeline.job.JobSpec` through a
:class:`~repro.pipeline.workers.WorkerPool`, applying one policy spec per
chunk via the :class:`~repro.pipeline.mitigator.StragglerMitigator`, and
aggregates a :class:`~repro.pipeline.result.PipelineRunResult`.

Execution-path selection lives here: :func:`resolve_pipeline_path` applies
the ``REPRO_PIPELINE_PATH`` flag (``auto`` / ``event`` / ``fast``) to the
mitigator's eligibility verdict.  Whatever path runs, every random draw
comes from ``substream(seed, "pipeline", purpose, job, stage)`` — sizes,
placement and service streams per (job, stage) — and all reductions go
through the shared accounting in :mod:`repro.pipeline.result`, so the two
paths produce bit-identical results and artifacts are pure functions of the
configuration.

Modelling notes (deliberate simplifications, shared by both paths):

* Stages are barrier-synchronised: every chunk of stage ``s+1`` arrives at
  stage ``s``'s last chunk completion.  Worker queues are empty at each
  barrier — losing eager copies still running then have their busy time
  charged to wasted work but do not delay the next stage.
* A job runs on an otherwise idle pool; jobs are independent replications
  (the sweep's sample set), not concurrent tenants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.policy import PolicyLike
from repro.exceptions import ConfigurationError
from repro.flags import PIPELINE_PATH
from repro.metrics import MetricsRegistry
from repro.pipeline.executor import run_stage_event
from repro.pipeline.fastpath import run_stage_fast
from repro.pipeline.job import JobSpec, partition_chunks
from repro.pipeline.mitigator import StragglerMitigator
from repro.pipeline.result import PipelineRunResult, stage_accounting
from repro.pipeline.workers import WorkerPool, draw_placements
from repro.sim.rng import substream

__all__ = ["PipelineConfig", "PipelineExperiment", "resolve_pipeline_path"]


def resolve_pipeline_path(eligible: bool, explicit: Optional[str] = None) -> str:
    """The execution path to run, from the flag and the config's eligibility.

    Args:
        eligible: Whether the closed-form fast path can express the run
            (:meth:`StragglerMitigator.fastpath_eligible`).
        explicit: An explicit mode overriding the ``REPRO_PIPELINE_PATH``
            environment flag (same choices).

    Raises:
        ConfigurationError: If ``fast`` is demanded for an ineligible
            configuration, or the mode is not a declared choice.
    """
    mode = PIPELINE_PATH.read(explicit)
    if mode == "fast" and not eligible:
        raise ConfigurationError(
            "REPRO_PIPELINE_PATH=fast demands the closed-form path, but this "
            "configuration needs the event engine (hedged or cancelling "
            "policies, or a failing worker pool); use 'auto' or 'event'"
        )
    if mode == "auto":
        return "fast" if eligible else "event"
    return mode


@dataclass(frozen=True)
class PipelineConfig:
    """One pipeline run: the job shape, the pool, the policy and the seed.

    Attributes:
        job: The stage chain every job instance flows through.
        pool: The worker pool executing chunk copies.
        policy: Straggler-mitigation policy spec applied per chunk.
        num_jobs: Independent job instances to run (the sample count).
        seed: Base seed; all randomness derives from it via substreams.
    """

    job: JobSpec
    pool: WorkerPool
    policy: PolicyLike = "none"
    num_jobs: int = 100
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ConfigurationError(
                f"num_jobs must be >= 1, got {self.num_jobs!r}"
            )


class PipelineExperiment:
    """Runs redundant job pipelines and measures completion time vs waste."""

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config
        self.mitigator = StragglerMitigator(config.policy, config.job.num_stages)
        for stage_index in range(config.job.num_stages):
            if self.mitigator.max_copies(stage_index) > config.pool.num_workers:
                raise ConfigurationError(
                    f"policy {self.mitigator.spec!r} places "
                    f"{self.mitigator.max_copies(stage_index)} copies per chunk "
                    f"but the pool has only {config.pool.num_workers} worker(s)"
                )

    def run(self, path: Optional[str] = None) -> PipelineRunResult:
        """Run every job and aggregate the result.

        Args:
            path: Explicit execution path (``auto`` / ``event`` / ``fast``)
                overriding the ``REPRO_PIPELINE_PATH`` environment flag.
        """
        config = self.config
        job, pool = config.job, config.pool
        chosen = resolve_pipeline_path(self.mitigator.fastpath_eligible(pool), path)
        registry = MetricsRegistry("pipeline")
        num_jobs, num_stages = config.num_jobs, job.num_stages
        job_completion = np.empty(num_jobs)
        stage_makespans = np.empty((num_jobs, num_stages))
        useful_s = 0.0
        wasted_s = 0.0
        launched = 0
        cancelled = 0
        chunks = 0
        for job_index in range(num_jobs):
            barrier = 0.0
            work_units = float(job.total_work)
            for stage_index, stage in enumerate(job.stages):
                sizes = partition_chunks(
                    work_units,
                    stage.num_chunks,
                    stage.size_alpha,
                    substream(config.seed, "pipeline", "sizes", job_index, stage_index),
                )
                placements = draw_placements(
                    stage.num_chunks,
                    self.mitigator.max_copies(stage_index),
                    pool.num_workers,
                    substream(
                        config.seed, "pipeline", "placement", job_index, stage_index
                    ),
                )
                service_rng = substream(
                    config.seed, "pipeline", "service", job_index, stage_index
                )
                if chosen == "fast":
                    outcome = run_stage_fast(
                        sizes, placements, pool, service_rng, barrier
                    )
                else:
                    outcome = run_stage_event(
                        sizes,
                        placements,
                        self.mitigator.policy_for(stage_index),
                        pool,
                        service_rng,
                        barrier,
                    )
                registry.recorder(f"stage{stage_index}_chunk_latency").record_many(
                    outcome.finish_at - barrier
                )
                self.mitigator.observe(stage_index, outcome.finish_at, barrier)
                stage_useful, stage_wasted = stage_accounting(outcome)
                useful_s += stage_useful
                wasted_s += stage_wasted
                launched += outcome.launched
                cancelled += outcome.cancelled
                chunks += stage.num_chunks
                next_barrier = float(np.max(outcome.finish_at))
                stage_makespans[job_index, stage_index] = next_barrier - barrier
                barrier = next_barrier
                work_units = work_units * stage.output_ratio
            job_completion[job_index] = barrier
        registry.counter("jobs").increment(num_jobs)
        registry.counter("chunks").increment(chunks)
        registry.counter("copies_launched").increment(launched)
        registry.counter("copies_cancelled").increment(cancelled)
        registry.recorder("job_completion").record_many(job_completion)
        return PipelineRunResult(
            policy=self.mitigator.spec,
            path=chosen,
            job_completion_s=job_completion,
            stage_makespan_s=stage_makespans,
            useful_work_s=useful_s,
            wasted_work_s=wasted_s,
            copies_launched=launched,
            copies_cancelled=cancelled,
            chunks=chunks,
            metrics=registry.snapshot(),
        )
