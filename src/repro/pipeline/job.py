"""Job and stage models for the pipeline substrate.

A :class:`JobSpec` describes one data-parallel job as a chain of stages
(map -> shuffle barrier -> reduce): each :class:`StageSpec` splits the work
entering it into ``num_chunks`` chunks with seeded heavy-tailed sizes, and
its ``output_ratio`` scales the work handed to the next stage (a reduce
stage typically sees a fraction of the map output).  Chunk sizes come from
:func:`partition_chunks`, which draws a truncated Pareto split and then
normalises it so the chunks cover the stage's work *exactly* — the fan-in
barrier is a max over chunk completions, so a dropped remainder would
silently shrink the job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["StageSpec", "JobSpec", "partition_chunks", "stage_workloads"]

#: Upper bound on the raw Pareto draw of one chunk's relative size.  The cap
#: keeps the post-normalisation fix-up of the final chunk safely positive
#: (an uncapped draw near the 2^-53 edge of the uniform could dwarf the rest
#: of the split by more than float rounding can absorb) while leaving the
#: tail far heavier than any realistic skew.
SIZE_TAIL_CAP = 1e9


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: a chunked fan-out ending at a shuffle barrier.

    Attributes:
        num_chunks: Number of chunks the stage's work is split into (>= 1).
        size_alpha: Pareto tail index of the chunk-size split (> 0); smaller
            means more skewed chunks.
        output_ratio: Work leaving the stage as a fraction of the work that
            entered it (> 0); feeds the next stage's chunk sizes.
    """

    num_chunks: int
    size_alpha: float = 1.6
    output_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.num_chunks < 1 or int(self.num_chunks) != self.num_chunks:
            raise ConfigurationError(
                f"num_chunks must be a positive integer, got {self.num_chunks!r}"
            )
        if self.size_alpha <= 0:
            raise ConfigurationError(
                f"size_alpha must be positive, got {self.size_alpha!r}"
            )
        if self.output_ratio <= 0:
            raise ConfigurationError(
                f"output_ratio must be positive, got {self.output_ratio!r}"
            )


@dataclass(frozen=True)
class JobSpec:
    """One job: total work plus the stage chain it flows through.

    Attributes:
        total_work: Work units entering the first stage (> 0).
        stages: The stage chain, in execution order (at least one stage).
    """

    total_work: float
    stages: Tuple[StageSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.total_work <= 0:
            raise ConfigurationError(
                f"total_work must be positive, got {self.total_work!r}"
            )
        if not self.stages:
            raise ConfigurationError("a job needs at least one stage")
        object.__setattr__(self, "stages", tuple(self.stages))

    @property
    def num_stages(self) -> int:
        """Number of stages in the chain."""
        return len(self.stages)


def stage_workloads(job: JobSpec) -> Tuple[float, ...]:
    """Work units entering each stage of ``job``, in stage order.

    Stage 0 receives ``job.total_work``; stage ``s+1`` receives stage ``s``'s
    input scaled by its ``output_ratio`` — the DAG's shuffle edges.
    """
    loads = []
    work = float(job.total_work)
    for stage in job.stages:
        loads.append(work)
        work = work * stage.output_ratio
    return tuple(loads)


def partition_chunks(
    total_work: float, num_chunks: int, alpha: float, rng: np.random.Generator
) -> np.ndarray:
    """Split ``total_work`` into ``num_chunks`` heavy-tailed chunk sizes.

    Draws one truncated-Pareto(``alpha``) relative size per chunk (inverse
    CDF of a single uniform each, so batched and scalar consumers of the
    same substream see identical draws), scales them to sum to
    ``total_work``, and then pins the final chunk to the exact remainder so
    coverage is exact: ``float(np.sum(sizes[:-1])) + sizes[-1] ==
    total_work`` holds bitwise.

    Args:
        total_work: Work units to split (> 0).
        num_chunks: Number of chunks (>= 1).
        alpha: Pareto tail index of the split (> 0).
        rng: Substream the relative sizes are drawn from.

    Returns:
        Array of ``num_chunks`` positive chunk sizes.
    """
    if total_work <= 0:
        raise ConfigurationError(f"total_work must be positive, got {total_work!r}")
    if num_chunks < 1:
        raise ConfigurationError(f"num_chunks must be >= 1, got {num_chunks!r}")
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha!r}")
    uniforms = rng.random(num_chunks)
    raw = np.minimum(np.power(1.0 - uniforms, -1.0 / alpha), SIZE_TAIL_CAP)
    sizes = raw * (float(total_work) / float(np.sum(raw)))
    sizes[-1] = float(total_work) - float(np.sum(sizes[:-1]))
    return sizes
