"""File-set construction for the storage-cluster experiments.

Section 2.2 populates the servers "with a collection of files whose total size
is chosen to achieve a preset target cache-to-disk ratio".  A
:class:`FileSet` captures that collection (file ids and sizes), and
:func:`build_fileset_for_cache_ratio` derives the number of files required to
hit a target cache:data ratio given the per-server cache capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.standard import Deterministic
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class FileSet:
    """A static collection of files identified by index.

    Attributes:
        sizes_bytes: Array of file sizes in bytes; ``sizes_bytes[i]`` is the
            size of file ``i``.
    """

    sizes_bytes: np.ndarray

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes_bytes, dtype=float)
        if sizes.size == 0:
            raise ConfigurationError("a FileSet must contain at least one file")
        if np.any(sizes <= 0):
            raise ConfigurationError("all file sizes must be positive")
        object.__setattr__(self, "sizes_bytes", sizes)

    @property
    def num_files(self) -> int:
        """Number of files in the collection."""
        return int(self.sizes_bytes.size)

    @property
    def total_bytes(self) -> float:
        """Total size of the collection in bytes."""
        return float(self.sizes_bytes.sum())

    @property
    def mean_file_bytes(self) -> float:
        """Mean file size in bytes."""
        return float(self.sizes_bytes.mean())

    def size_of(self, file_id: int) -> float:
        """Size in bytes of file ``file_id``."""
        if not 0 <= file_id < self.num_files:
            raise ConfigurationError(f"file_id {file_id!r} outside [0, {self.num_files})")
        return float(self.sizes_bytes[file_id])


def build_fileset_for_cache_ratio(
    cache_bytes_per_server: float,
    num_servers: int,
    cache_to_data_ratio: float,
    mean_file_bytes: float,
    size_distribution: Optional[Distribution] = None,
    rng: Optional[np.random.Generator] = None,
) -> FileSet:
    """Build a file set so that total cache / total data = ``cache_to_data_ratio``.

    Args:
        cache_bytes_per_server: Page-cache capacity of each server in bytes.
        num_servers: Number of storage servers.
        cache_to_data_ratio: Target ratio of aggregate cache to aggregate data
            (0.1 in the paper's base configuration; 2 in Figure 11 where the
            whole data set fits in memory).
        mean_file_bytes: Target mean file size in bytes (4 KB base config).
        size_distribution: Distribution of file sizes; ``None`` means all files
            have exactly ``mean_file_bytes`` (the paper's deterministic base
            case).  When provided, it is rescaled to ``mean_file_bytes``.
        rng: Random generator (required when ``size_distribution`` is given).

    Returns:
        A :class:`FileSet` whose total size is ``num_servers *
        cache_bytes_per_server / cache_to_data_ratio`` (to within one file).

    Raises:
        ConfigurationError: On non-positive parameters or a missing ``rng``.
    """
    if cache_bytes_per_server <= 0 or num_servers <= 0:
        raise ConfigurationError("cache size and server count must be positive")
    if cache_to_data_ratio <= 0:
        raise ConfigurationError(
            f"cache_to_data_ratio must be positive, got {cache_to_data_ratio!r}"
        )
    if mean_file_bytes <= 0:
        raise ConfigurationError(f"mean_file_bytes must be positive, got {mean_file_bytes!r}")

    total_data_bytes = num_servers * cache_bytes_per_server / cache_to_data_ratio
    num_files = max(1, int(round(total_data_bytes / mean_file_bytes)))

    if size_distribution is None:
        sizes = np.full(num_files, float(mean_file_bytes))
    else:
        if rng is None:
            raise ConfigurationError("rng is required when size_distribution is given")
        scaled = size_distribution.scaled_to_mean(mean_file_bytes)
        sizes = np.asarray(scaled.sample(rng, num_files), dtype=float)
        sizes = np.maximum(sizes, 1.0)
    return FileSet(sizes_bytes=sizes)
