"""Workload generation: arrival processes, key popularity and file sets.

This layer sits beside :mod:`repro.distributions` in the architecture stack
(see the README's Architecture section): the substrates draw *when* requests
arrive from :mod:`repro.workloads.arrivals` (Poisson and renewal processes,
merged across clients), *which* keys they touch from
:mod:`repro.workloads.keys` (uniform and Zipf popularity), and *what* is
stored from :mod:`repro.workloads.filesets` (file collections built to hit a
target cache:data ratio, the knob Figures 5-11 turn).  Everything is seeded
through :mod:`repro.sim.rng`, so a scenario sweep regenerates identical
workloads at every grid point regardless of worker count.
"""

from repro.workloads.arrivals import (
    PoissonArrivals,
    RenewalArrivals,
    merge_arrival_times,
    thin_arrivals,
)
from repro.workloads.keys import UniformKeys, ZipfKeys
from repro.workloads.filesets import FileSet, build_fileset_for_cache_ratio

__all__ = [
    "PoissonArrivals",
    "RenewalArrivals",
    "merge_arrival_times",
    "thin_arrivals",
    "UniformKeys",
    "ZipfKeys",
    "FileSet",
    "build_fileset_for_cache_ratio",
]
