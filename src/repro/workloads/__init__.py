"""Workload generation: arrival processes, key popularity and file sets."""

from repro.workloads.arrivals import PoissonArrivals, RenewalArrivals, merge_arrival_times
from repro.workloads.keys import UniformKeys, ZipfKeys
from repro.workloads.filesets import FileSet, build_fileset_for_cache_ratio

__all__ = [
    "PoissonArrivals",
    "RenewalArrivals",
    "merge_arrival_times",
    "UniformKeys",
    "ZipfKeys",
    "FileSet",
    "build_fileset_for_cache_ratio",
]
