"""Arrival processes.

All of the paper's experiments use open-loop Poisson arrivals ("requests
arrive in the system according to a Poisson process", Section 2.1; "a set of
client nodes generate requests according to identical Poisson processes",
Section 2.2; "flow arrivals are Poisson", Section 2.4).  This module provides
Poisson arrivals plus a general renewal process (for sensitivity studies where
the inter-arrival distribution is varied).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.distributions.base import Distribution
from repro.exceptions import ConfigurationError


class PoissonArrivals:
    """A homogeneous Poisson arrival process with the given rate.

    Instances are iterable generators of absolute arrival times and can also
    produce fixed-count or fixed-horizon arrays for the vectorised simulators.
    """

    def __init__(self, rate: float, rng: np.random.Generator, start: float = 0.0) -> None:
        """Create a Poisson process.

        Args:
            rate: Arrival rate in events per second (> 0).
            rng: Random generator supplying the exponential gaps.
            start: Time of the process origin (first arrival occurs after it).
        """
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate!r}")
        self.rate = float(rate)
        self._rng = rng
        self.start = float(start)

    def __iter__(self) -> Iterator[float]:
        t = self.start
        while True:
            t += self._rng.exponential(1.0 / self.rate)
            yield t

    def next_after(self, t: float) -> float:
        """Return one arrival time strictly after ``t`` (memoryless property)."""
        return t + float(self._rng.exponential(1.0 / self.rate))

    def times_count(self, count: int) -> np.ndarray:
        """Return the first ``count`` arrival times as an array."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count!r}")
        gaps = self._rng.exponential(1.0 / self.rate, count)
        return self.start + np.cumsum(gaps)

    def times_until(self, horizon: float) -> np.ndarray:
        """Return all arrival times in ``(start, horizon]``.

        Generates in blocks sized from the expected count to avoid quadratic
        behaviour for long horizons.
        """
        if horizon < self.start:
            raise ConfigurationError("horizon must be at or after the start time")
        expected = max(16, int((horizon - self.start) * self.rate * 1.1) + 16)
        times: List[np.ndarray] = []
        t = self.start
        while t <= horizon:
            gaps = self._rng.exponential(1.0 / self.rate, expected)
            block = t + np.cumsum(gaps)
            times.append(block)
            t = float(block[-1])
        all_times = np.concatenate(times)
        return all_times[all_times <= horizon]


class RenewalArrivals:
    """A renewal arrival process with i.i.d. inter-arrival times.

    Used by sensitivity studies that replace Poisson arrivals with lower- or
    higher-variability inter-arrival distributions.
    """

    def __init__(
        self,
        interarrival: Distribution,
        rng: np.random.Generator,
        start: float = 0.0,
    ) -> None:
        """Create a renewal process with the given inter-arrival distribution."""
        self.interarrival = interarrival
        self._rng = rng
        self.start = float(start)

    def __iter__(self) -> Iterator[float]:
        t = self.start
        while True:
            t += float(self.interarrival.sample(self._rng))
            yield t

    def times_count(self, count: int) -> np.ndarray:
        """Return the first ``count`` arrival times as an array."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count!r}")
        gaps = np.asarray(self.interarrival.sample(self._rng, count), dtype=float)
        return self.start + np.cumsum(gaps)

    def rate(self) -> float:
        """Long-run arrival rate (1 / mean inter-arrival time)."""
        return 1.0 / self.interarrival.mean()


def thin_arrivals(
    times: np.ndarray, keep_probability: float, rng: np.random.Generator
) -> np.ndarray:
    """Independently keep each arrival with probability ``keep_probability``.

    Thinning a Poisson process of rate ``λ`` with keep probability ``p``
    yields a Poisson process of rate ``p·λ`` — the standard construction for
    splitting one aggregate stream into per-server substreams, and the dual
    of :func:`merge_arrival_times`.  One uniform is drawn per arrival (in
    order), so the result is a pure function of ``(times, rng state)``.

    Args:
        times: Sorted arrival times.
        keep_probability: Probability in ``[0, 1]`` of keeping each arrival.
        rng: Random generator supplying one uniform per arrival.

    Returns:
        The kept arrival times, in their original order.
    """
    if not 0.0 <= keep_probability <= 1.0:
        raise ConfigurationError(
            f"keep_probability must be in [0, 1], got {keep_probability!r}"
        )
    values = np.asarray(times, dtype=float)
    return values[rng.random(values.size) < keep_probability]


def merge_arrival_times(streams: Iterable[np.ndarray]) -> np.ndarray:
    """Merge several sorted arrival-time arrays into one sorted array.

    Used to combine the per-client Poisson processes of the cluster
    experiments into the aggregate arrival stream seen by the servers (the
    superposition of Poisson processes is Poisson, but the merge is also
    correct for arbitrary streams).
    """
    arrays = [np.asarray(s, dtype=float) for s in streams if len(s)]
    if not arrays:
        return np.empty(0, dtype=float)
    merged = np.concatenate(arrays)
    merged.sort(kind="mergesort")
    return merged
