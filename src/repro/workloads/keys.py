"""Key/object popularity models.

The paper's storage experiments request "a file chosen uniformly at random
from the entire collection" (Section 2.2); :class:`UniformKeys` models that.
:class:`ZipfKeys` is provided for the skewed-popularity sensitivity study
(skew increases the cache hit rate and therefore lowers service-time
variability, which by Section 2.1 should shrink the benefit of replication).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError


class UniformKeys:
    """Uniformly random key selection over ``num_keys`` objects."""

    def __init__(self, num_keys: int, rng: np.random.Generator) -> None:
        """Create a uniform selector over keys ``0..num_keys-1``."""
        if num_keys <= 0:
            raise ConfigurationError(f"num_keys must be positive, got {num_keys!r}")
        self.num_keys = int(num_keys)
        self._rng = rng

    def sample(self, size: Optional[int] = None):
        """Draw one key (``size=None``) or an array of keys."""
        out = self._rng.integers(0, self.num_keys, size=size)
        if size is None:
            return int(out)
        return out

    def probability_of(self, key: int) -> float:
        """The probability of selecting ``key`` on any request."""
        if not 0 <= key < self.num_keys:
            raise ConfigurationError(f"key {key!r} outside [0, {self.num_keys})")
        return 1.0 / self.num_keys


class ZipfKeys:
    """Zipf-distributed key selection: P(key = i) ∝ 1 / (i + 1)^s."""

    def __init__(self, num_keys: int, skew: float, rng: np.random.Generator) -> None:
        """Create a Zipf selector.

        Args:
            num_keys: Number of distinct keys.
            skew: Zipf exponent ``s`` (0 = uniform; ~1 is typical web skew).
            rng: Random generator.
        """
        if num_keys <= 0:
            raise ConfigurationError(f"num_keys must be positive, got {num_keys!r}")
        if skew < 0:
            raise ConfigurationError(f"skew must be >= 0, got {skew!r}")
        self.num_keys = int(num_keys)
        self.skew = float(skew)
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, num_keys + 1, dtype=float), skew)
        self._probs = weights / weights.sum()
        self._cdf = np.cumsum(self._probs)

    def sample(self, size: Optional[int] = None):
        """Draw one key (``size=None``) or an array of keys, by inverse CDF."""
        u = self._rng.uniform(0.0, 1.0, size=size)
        out = np.searchsorted(self._cdf, u, side="left")
        if size is None:
            return int(out)
        return out.astype(np.int64)

    def probability_of(self, key: int) -> float:
        """The probability of selecting ``key`` on any request."""
        if not 0 <= key < self.num_keys:
            raise ConfigurationError(f"key {key!r} outside [0, {self.num_keys})")
        return float(self._probs[key])
