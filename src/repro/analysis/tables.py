"""Plain-text result tables, including paper-vs-measured diff tables.

Every benchmark prints its results through :class:`ResultTable`, which mirrors
the rows/series of the corresponding paper figure; ``EXPERIMENTS.md`` maps
each figure to the benchmark/scenario that regenerates it, so the paper's
number and the measured number sit side by side.  :func:`comparison_table`
builds the common "x-axis vs several curves" shape, and :func:`diff_table`
renders two runs of the same grid (e.g. a golden artifact against a fresh
sweep — ``python -m repro.experiments diff a.json b.json``) as paired
``[paper]`` / ``[measured]`` / ``Δ%`` columns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.exceptions import ConfigurationError

Cell = Union[str, float, int, None]


def _format_cell(value: Cell, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


class ResultTable:
    """A simple column-aligned text table.

    Example:
        >>> table = ResultTable(["load", "mean_1copy", "mean_2copies"])
        >>> table.add_row(load=0.1, mean_1copy=10.2, mean_2copies=6.9)
        >>> print(table.to_text())  # doctest: +ELLIPSIS
        load ...
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None) -> None:
        """Create a table with the given column names (non-empty, unique)."""
        if not columns:
            raise ConfigurationError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ConfigurationError(f"duplicate column names in {columns!r}")
        self.columns = list(columns)
        self.title = title
        self.rows: List[Dict[str, Cell]] = []

    def add_row(self, **cells: Cell) -> None:
        """Append a row given as ``column=value`` keyword arguments.

        Unknown columns are rejected; missing columns render as ``-``.
        """
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise ConfigurationError(f"unknown columns {sorted(unknown)}; table has {self.columns}")
        self.rows.append(dict(cells))

    def add_rows(self, rows: Iterable[Mapping[str, Cell]]) -> None:
        """Append many rows (each a mapping from column name to value)."""
        for row in rows:
            self.add_row(**dict(row))

    def column(self, name: str) -> List[Cell]:
        """All values of one column, in row order (``None`` where missing)."""
        if name not in self.columns:
            raise ConfigurationError(f"unknown column {name!r}; table has {self.columns}")
        return [row.get(name) for row in self.rows]

    def to_text(self, float_format: str = ".4g") -> str:
        """Render the table as aligned plain text."""
        header = list(self.columns)
        body = [
            [_format_cell(row.get(col), float_format) for col in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


def comparison_table(
    title: str,
    x_name: str,
    x_values: Sequence[Cell],
    series: Mapping[str, Sequence[Cell]],
) -> ResultTable:
    """Build a table with one x-column and one column per series.

    This is the shape of most paper figures: x-axis (load, number of copies,
    threshold) against several curves (1 copy, 2 copies, ...).

    Raises:
        ConfigurationError: If any series has a different length from
            ``x_values``.
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} values but there are {len(x_values)} x values"
            )
    table = ResultTable([x_name, *series.keys()], title=title)
    for i, x in enumerate(x_values):
        row: Dict[str, Cell] = {x_name: x}
        for name, values in series.items():
            row[name] = values[i]
        table.add_row(**row)
    return table


def _delta_percent(a: Cell, b: Cell) -> Optional[float]:
    """Relative change b vs a in percent, or ``None`` when undefined."""
    if isinstance(a, bool) or isinstance(b, bool):
        return None
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        return None
    if a == 0:
        return None
    return 100.0 * (b - a) / a


def diff_table(
    title: str,
    key_columns: Sequence[str],
    rows: Sequence[tuple],
    value_columns: Sequence[str],
    labels: Sequence[str] = ("paper", "measured"),
) -> ResultTable:
    """Build a side-by-side comparison table of two runs of the same grid.

    This is the rendering half of the artifact-diff path
    (:meth:`repro.experiments.SweepResult.diff` pairs the points, this lays
    them out): each value column ``c`` becomes three columns —
    ``c [labels[0]]``, ``c [labels[1]]`` and ``c Δ%`` (relative change of the
    second side versus the first, blank where either side is missing or
    non-numeric).

    Args:
        title: Table title.
        key_columns: Names of the identifying columns (grid axes).
        rows: One ``(key_values, a_values, b_values)`` mapping triple per
            paired point.
        value_columns: The compared value columns.
        labels: Labels of the two sides, e.g. ``("paper", "measured")``.

    Raises:
        ConfigurationError: If there are no value columns or the two labels
            are not distinct.
    """
    if not value_columns:
        raise ConfigurationError("diff_table needs at least one value column")
    if len(labels) != 2 or labels[0] == labels[1]:
        raise ConfigurationError(f"diff_table needs two distinct labels, got {labels!r}")
    columns: List[str] = list(key_columns)
    for name in value_columns:
        columns += [f"{name} [{labels[0]}]", f"{name} [{labels[1]}]", f"{name} Δ%"]
    table = ResultTable(columns, title=title)
    for key_values, a_values, b_values in rows:
        row: Dict[str, Cell] = {name: key_values.get(name) for name in key_columns}
        for name in value_columns:
            a, b = a_values.get(name), b_values.get(name)
            row[f"{name} [{labels[0]}]"] = a
            row[f"{name} [{labels[1]}]"] = b
            row[f"{name} Δ%"] = _delta_percent(a, b)
        table.add_row(**row)
    return table
