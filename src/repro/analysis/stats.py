"""Latency statistics used to report every experiment.

The paper reports means, medians, high percentiles (95th/99th/99.9th), the
fraction of responses later than a threshold, and improvement factors between
the unreplicated and replicated configurations.  This module computes all of
those from raw response-time samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

#: Percentiles included in every :class:`LatencySummary`.
STANDARD_PERCENTILES: Tuple[float, ...] = (50.0, 90.0, 95.0, 99.0, 99.9)


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a set of response-time samples.

    Attributes:
        count: Number of samples.
        mean: Sample mean.
        std: Sample standard deviation.
        minimum: Smallest sample.
        maximum: Largest sample.
        p50: Median.
        p90: 90th percentile.
        p95: 95th percentile.
        p99: 99th percentile.
        p999: 99.9th percentile.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p95: float
    p99: float
    p999: float

    @classmethod
    def from_histogram(cls, histogram) -> "LatencySummary":
        """Build a summary from a :class:`repro.metrics.Histogram`.

        Count, mean, std, min and max are exact (the histogram tracks them as
        running moments); the percentiles are exact while the histogram is in
        exact mode and bin-resolution estimates once it has spilled to bins.
        This is what makes streaming and exact summaries interchangeable in
        :class:`~repro.analysis.tables.ResultTable` and the benchmarks.

        Raises:
            ConfigurationError: If the histogram is empty.
        """
        if histogram.count == 0:
            raise ConfigurationError("cannot summarise an empty histogram")
        p50, p90, p95, p99, p999 = histogram.percentiles(STANDARD_PERCENTILES)
        return cls(
            count=int(histogram.count),
            mean=float(histogram.mean()),
            std=float(histogram.std()),
            minimum=float(histogram.min()),
            maximum=float(histogram.max()),
            p50=float(p50),
            p90=float(p90),
            p95=float(p95),
            p99=float(p99),
            p999=float(p999),
        )

    def percentile(self, q: float) -> float:
        """Return one of the precomputed percentiles by its ``q`` value.

        Raises:
            ConfigurationError: If ``q`` is not one of the standard
                percentiles (use :func:`numpy.percentile` on the raw samples
                for arbitrary quantiles).
        """
        lookup = {50.0: self.p50, 90.0: self.p90, 95.0: self.p95, 99.0: self.p99, 99.9: self.p999}
        if q not in lookup:
            raise ConfigurationError(
                f"percentile {q!r} not precomputed; available: {sorted(lookup)}"
            )
        return lookup[q]

    def as_row(self) -> dict:
        """The summary as a flat dict, convenient for result tables."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "p99.9": self.p999,
            "max": self.maximum,
        }


def summarize(samples: Sequence[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary` from raw samples.

    Raises:
        ConfigurationError: If ``samples`` is empty or contains negative or
            non-finite values (latencies must be non-negative real numbers).
    """
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ConfigurationError("cannot summarise an empty sample set")
    if not np.all(np.isfinite(data)) or np.any(data < 0):
        raise ConfigurationError("latency samples must be finite and non-negative")
    percentiles = np.percentile(data, STANDARD_PERCENTILES)
    return LatencySummary(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std()),
        minimum=float(data.min()),
        maximum=float(data.max()),
        p50=float(percentiles[0]),
        p90=float(percentiles[1]),
        p95=float(percentiles[2]),
        p99=float(percentiles[3]),
        p999=float(percentiles[4]),
    )


def improvement_factor(baseline: float, improved: float) -> float:
    """How many times smaller ``improved`` is than ``baseline`` (e.g. "2.2x").

    Returns ``inf`` when ``improved`` is zero and ``baseline`` is positive.

    Raises:
        ConfigurationError: If either value is negative.
    """
    if baseline < 0 or improved < 0:
        raise ConfigurationError("latencies must be non-negative")
    if improved == 0:
        return math.inf if baseline > 0 else 1.0
    return baseline / improved


def percent_reduction(baseline: float, improved: float) -> float:
    """Percentage reduction from ``baseline`` to ``improved`` (positive = better).

    Raises:
        ConfigurationError: If ``baseline`` is not positive or ``improved`` is
            negative.
    """
    if baseline <= 0:
        raise ConfigurationError(f"baseline must be positive, got {baseline!r}")
    if improved < 0:
        raise ConfigurationError(f"improved must be non-negative, got {improved!r}")
    return 100.0 * (baseline - improved) / baseline


def fraction_later_than(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly greater than ``threshold``.

    This is the paper's tail metric ("the fraction of responses later than
    500 ms is reduced by 6.5x").
    """
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ConfigurationError("cannot compute a tail fraction of an empty sample set")
    return float(np.mean(data > threshold))


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Mean and normal-approximation confidence interval ``(mean, low, high)``.

    Uses the central limit theorem (adequate for the sample counts used in the
    benchmarks); for a single sample the interval collapses to the point.

    Raises:
        ConfigurationError: If ``samples`` is empty or ``confidence`` is not in
            ``(0, 1)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence!r}")
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ConfigurationError("cannot compute a confidence interval of an empty sample set")
    mean = float(data.mean())
    if data.size == 1:
        return mean, mean, mean
    # Two-sided normal quantile via the inverse error function.
    from scipy.special import erfinv

    z = math.sqrt(2.0) * float(erfinv(confidence))
    half_width = z * float(data.std(ddof=1)) / math.sqrt(data.size)
    return mean, mean - half_width, mean + half_width
