"""Latency statistics, empirical CDFs and result-table formatting."""

from repro.analysis.stats import (
    LatencySummary,
    fraction_later_than,
    improvement_factor,
    mean_confidence_interval,
    percent_reduction,
    summarize,
)
from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.tables import ResultTable, comparison_table

__all__ = [
    "LatencySummary",
    "summarize",
    "improvement_factor",
    "percent_reduction",
    "fraction_later_than",
    "mean_confidence_interval",
    "EmpiricalCDF",
    "ResultTable",
    "comparison_table",
]
