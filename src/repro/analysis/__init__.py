"""Latency statistics, empirical CDFs and result-table formatting.

The bottom of the architecture stack (see the README's Architecture section):
everything the layers above produce — substrate runs, metrics snapshots,
sweep artifacts — is ultimately rendered here.  :class:`LatencySummary` is
the one summary shape every substrate emits (means, percentiles, tail
fractions); :class:`EmpiricalCDF` backs the figure-style CDF tables; and
:mod:`repro.analysis.tables` provides :class:`ResultTable`,
:func:`comparison_table` and :func:`diff_table` — the last being the
"paper vs measured" renderer behind ``python -m repro.experiments diff``
and the comparison tables of ``EXPERIMENTS.md``.
"""

from repro.analysis.stats import (
    LatencySummary,
    fraction_later_than,
    improvement_factor,
    mean_confidence_interval,
    percent_reduction,
    summarize,
)
from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.tables import ResultTable, comparison_table, diff_table

__all__ = [
    "diff_table",
    "LatencySummary",
    "summarize",
    "improvement_factor",
    "percent_reduction",
    "fraction_later_than",
    "mean_confidence_interval",
    "EmpiricalCDF",
    "ResultTable",
    "comparison_table",
]
