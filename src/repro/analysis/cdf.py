"""Empirical CDF / CCDF utilities.

The paper plots most distributions as "fraction later than threshold" curves
(a complementary CDF on a log scale); :class:`EmpiricalCDF` provides both the
CDF and CCDF views plus quantile lookup.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


class EmpiricalCDF:
    """The empirical distribution function of a set of samples."""

    def __init__(self, samples: Sequence[float]) -> None:
        """Build the ECDF of ``samples`` (non-empty, finite, non-negative)."""
        data = np.asarray(samples, dtype=float)
        if data.size == 0:
            raise ConfigurationError("cannot build a CDF from an empty sample set")
        if not np.all(np.isfinite(data)):
            raise ConfigurationError("samples must be finite")
        self._sorted = np.sort(data)
        self._n = data.size

    def __len__(self) -> int:
        return int(self._n)

    def cdf(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        return float(np.searchsorted(self._sorted, x, side="right") / self._n)

    def ccdf(self, x: float) -> float:
        """P(X > x): the "fraction later than threshold" the paper plots."""
        return 1.0 - self.cdf(x)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) of the samples."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"q must be in [0, 1], got {q!r}")
        return float(np.quantile(self._sorted, q))

    def ccdf_points(self, thresholds: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
        """CCDF evaluated at each threshold, as ``(thresholds, fractions)`` arrays."""
        xs = np.asarray(thresholds, dtype=float)
        counts = np.searchsorted(self._sorted, xs, side="right")
        fractions = 1.0 - counts / self._n
        return xs, fractions

    def curve(self) -> Tuple[np.ndarray, np.ndarray]:
        """The full step-function ECDF as ``(sorted_samples, cumulative_fractions)``."""
        fractions = np.arange(1, self._n + 1, dtype=float) / self._n
        return self._sorted.copy(), fractions
