"""Configuration of the in-network replication mechanism (Section 2.4).

The scheme: replicate the first few packets of every flow along an alternate
route, at strictly lower priority than ordinary traffic, so the copies can
reduce latency when the default path is congested but can never make anything
else worse.  Only the first packets are replicated because the completion time
of short flows is latency-bound while that of elephants is throughput-bound
("replication would be of little use" for them).

The mechanism is also addressable through the shared policy currency
(:mod:`repro.core.policy`) via :meth:`ReplicationConfig.from_policy`:
``NoReplication`` maps to the disabled baseline, eager 2-copy ``KCopies`` to
the paper's immediate duplication, and ``HedgeAfterDelay`` to *deferred*
duplication (``replica_delay_s``), where the copy is injected only after the
hedge delay and suppressed entirely if the segment was acknowledged in the
meantime.  Policies the single-alternate-path mechanism cannot express
(``k > 2``, adaptive percentile hedging) are rejected with a clear error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy import (
    HedgeAfterDelay,
    KCopies,
    NoReplication,
    PolicyLike,
    parse_policy,
)
from repro.exceptions import ConfigurationError
from repro.network.packet import PRIORITY_NORMAL, PRIORITY_REPLICA


@dataclass(frozen=True)
class ReplicationConfig:
    """How (and whether) switches replicate the start of each flow.

    Attributes:
        enabled: Master switch; ``False`` reproduces the no-replication
            baseline.
        first_packets: Number of leading data segments of each flow to
            replicate (the paper replicates the first 8).
        low_priority: Queue the copies at strictly lower priority (the paper's
            design).  Setting this to ``False`` is the ablation where copies
            compete with ordinary traffic on equal terms.
        replicate_retransmissions: Whether retransmitted segments within the
            first-packet window are also replicated.
        replica_delay_s: Deferred ("hedged") duplication: inject the replica
            only this many seconds after the original segment, and skip it if
            the segment was acknowledged before the delay expired.  ``0.0``
            (the paper's design) duplicates immediately.
    """

    enabled: bool = True
    first_packets: int = 8
    low_priority: bool = True
    replicate_retransmissions: bool = True
    replica_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.first_packets < 0:
            raise ConfigurationError(
                f"first_packets must be >= 0, got {self.first_packets!r}"
            )
        if self.replica_delay_s < 0:
            raise ConfigurationError(
                f"replica_delay_s must be >= 0, got {self.replica_delay_s!r}"
            )

    def should_replicate(self, seq: int, is_retransmission: bool = False) -> bool:
        """Whether data segment ``seq`` of a flow should be replicated."""
        if not self.enabled or seq >= self.first_packets:
            return False
        if is_retransmission and not self.replicate_retransmissions:
            return False
        return True

    @property
    def deferred(self) -> bool:
        """Whether replicas are injected after a hedge delay rather than immediately."""
        return self.enabled and self.replica_delay_s > 0

    def replica_priority(self) -> int:
        """The queueing priority for replicated copies."""
        return PRIORITY_REPLICA if self.low_priority else PRIORITY_NORMAL

    @classmethod
    def disabled(cls) -> "ReplicationConfig":
        """The no-replication baseline."""
        return cls(enabled=False)

    @classmethod
    def from_policy(
        cls,
        policy: PolicyLike,
        first_packets: int = 8,
        low_priority: bool = True,
    ) -> "ReplicationConfig":
        """Translate a :class:`~repro.core.policy.ReplicationPolicy` into this mechanism.

        Args:
            policy: A policy object or spec string (``"none"``, ``"k2"``,
                ``"hedge:100us"``).
            first_packets: Leading data segments of each flow the mechanism
                applies to.
            low_priority: Queue copies at strictly lower priority.

        Raises:
            ConfigurationError: For policies the single-alternate-path,
                in-switch mechanism cannot express — more than one extra copy
                (``k > 2``), or adaptive percentile hedging (switches have no
                per-flow latency feedback loop).
        """
        resolved = parse_policy(policy)
        if isinstance(resolved, NoReplication):
            return cls(enabled=False, first_packets=first_packets, low_priority=low_priority)
        if isinstance(resolved, KCopies):
            if resolved.copies == 1:
                return cls(
                    enabled=False, first_packets=first_packets, low_priority=low_priority
                )
            if resolved.copies == 2:
                return cls(first_packets=first_packets, low_priority=low_priority)
            raise ConfigurationError(
                f"in-network replication sends one copy along one alternate path; "
                f"k={resolved.copies} copies cannot be expressed"
            )
        if isinstance(resolved, HedgeAfterDelay):
            if resolved.extra_copies != 1:
                raise ConfigurationError(
                    "in-network replication supports a single deferred copy; "
                    f"extra_copies={resolved.extra_copies} cannot be expressed"
                )
            return cls(
                first_packets=first_packets,
                low_priority=low_priority,
                replica_delay_s=resolved.delay,
            )
        raise ConfigurationError(
            f"policy {type(resolved).__name__} cannot be expressed by the "
            "in-network mechanism: switches have no per-flow latency feedback, "
            "so only 'none', 'k2' and fixed-delay 'hedge:<delay>' apply"
        )
