"""Configuration of the in-network replication mechanism (Section 2.4).

The scheme: replicate the first few packets of every flow along an alternate
route, at strictly lower priority than ordinary traffic, so the copies can
reduce latency when the default path is congested but can never make anything
else worse.  Only the first packets are replicated because the completion time
of short flows is latency-bound while that of elephants is throughput-bound
("replication would be of little use" for them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.network.packet import PRIORITY_NORMAL, PRIORITY_REPLICA


@dataclass(frozen=True)
class ReplicationConfig:
    """How (and whether) switches replicate the start of each flow.

    Attributes:
        enabled: Master switch; ``False`` reproduces the no-replication
            baseline.
        first_packets: Number of leading data segments of each flow to
            replicate (the paper replicates the first 8).
        low_priority: Queue the copies at strictly lower priority (the paper's
            design).  Setting this to ``False`` is the ablation where copies
            compete with ordinary traffic on equal terms.
        replicate_retransmissions: Whether retransmitted segments within the
            first-packet window are also replicated.
    """

    enabled: bool = True
    first_packets: int = 8
    low_priority: bool = True
    replicate_retransmissions: bool = True

    def __post_init__(self) -> None:
        if self.first_packets < 0:
            raise ConfigurationError(
                f"first_packets must be >= 0, got {self.first_packets!r}"
            )

    def should_replicate(self, seq: int, is_retransmission: bool = False) -> bool:
        """Whether data segment ``seq`` of a flow should be replicated."""
        if not self.enabled or seq >= self.first_packets:
            return False
        if is_retransmission and not self.replicate_retransmissions:
            return False
        return True

    def replica_priority(self) -> int:
        """The queueing priority for replicated copies."""
        return PRIORITY_REPLICA if self.low_priority else PRIORITY_NORMAL

    @classmethod
    def disabled(cls) -> "ReplicationConfig":
        """The no-replication baseline."""
        return cls(enabled=False)
