"""ECMP path selection and alternate-path selection.

Datacenter fabrics "assign flows to paths based on a hash of the flow header";
the well-known weakness the paper exploits is that a static hash can land two
elephant flows on the same link.  :class:`EcmpRouter` implements that static
hash placement over the fat-tree's equal-cost paths, plus the *alternate*
path used for replicated packets: a deterministic second choice that differs
from the default path whenever more than one path exists.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.exceptions import RoutingError
from repro.network.topology import FatTreeTopology


def _flow_hash(flow_id: int, src: str, dst: str, salt: int) -> int:
    """Stable hash of a flow header plus a salt."""
    material = f"{flow_id}|{src}|{dst}|{salt}".encode("utf-8")
    return int.from_bytes(hashlib.blake2b(material, digest_size=8).digest(), "big")


class EcmpRouter:
    """Hash-based selection among a topology's equal-cost paths."""

    def __init__(self, topology: FatTreeTopology, salt: int = 0) -> None:
        """Create a router over ``topology`` with a hash ``salt``.

        Different salts model different switch hash functions; the experiment
        driver keeps the salt fixed so a flow's default path is stable, as in
        static ECMP.
        """
        self.topology = topology
        self.salt = int(salt)

    def default_path(self, flow_id: int, src: str, dst: str) -> List[str]:
        """The ECMP-chosen path (node names) for a flow."""
        paths = self.topology.equal_cost_paths(src, dst)
        index = _flow_hash(flow_id, src, dst, self.salt) % len(paths)
        return paths[index]

    def alternate_path(self, flow_id: int, src: str, dst: str) -> List[str]:
        """A path for replicated packets, different from the default when possible.

        The alternate is chosen with a different hash salt; if it collides
        with the default choice it is bumped to the next path, so for any pair
        with more than one equal-cost path the replica travels a genuinely
        different route ("reducing the probability of collision with an
        elephant flow").
        """
        paths = self.topology.equal_cost_paths(src, dst)
        if len(paths) == 1:
            return paths[0]
        default_index = _flow_hash(flow_id, src, dst, self.salt) % len(paths)
        alternate_index = _flow_hash(flow_id, src, dst, self.salt + 1) % len(paths)
        if alternate_index == default_index:
            alternate_index = (alternate_index + 1) % len(paths)
        return paths[alternate_index]

    def path_links(self, path: List[str]) -> List[tuple]:
        """The ordered directed edges ``(u, v)`` of a node-name path."""
        if len(path) < 2:
            raise RoutingError(f"path too short: {path!r}")
        return [(path[i], path[i + 1]) for i in range(len(path) - 1)]
