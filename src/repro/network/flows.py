"""Flow workload generation for the fat-tree experiment.

Flow arrivals are Poisson and sizes follow the datacenter mix of
:class:`repro.distributions.datacenter.DataCenterFlowSizes` (1 KB - 3 MB, more
than 80% of flows under 10 KB).  The offered *load* is defined, as in the
paper, as the fraction of aggregate host access-link capacity consumed by the
offered traffic: ``arrival_rate = load * num_hosts * link_capacity /
mean_flow_size``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.datacenter import DataCenterFlowSizes
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class FlowSpec:
    """One flow to be offered to the network.

    Attributes:
        flow_id: Unique id.
        src: Source host name.
        dst: Destination host name (differs from ``src``).
        size_bytes: Application bytes to transfer.
        start_time: Arrival time in seconds.
    """

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    start_time: float


def generate_flows(
    hosts: Sequence[str],
    load: float,
    link_rate_bps: float,
    num_flows: int,
    rng: np.random.Generator,
    size_distribution: Optional[Distribution] = None,
) -> List[FlowSpec]:
    """Generate a Poisson flow workload at the given offered load.

    Args:
        hosts: Host names flows can originate from / terminate at (>= 2).
        load: Offered load as a fraction of aggregate access capacity (> 0;
            the paper sweeps 0.1-0.8).
        link_rate_bps: Access-link rate in bits per second.
        num_flows: Number of flows to generate.
        rng: Random generator.
        size_distribution: Flow-size distribution; defaults to the datacenter
            mix of the paper.

    Returns:
        Flows sorted by start time.

    Raises:
        ConfigurationError: On invalid load, too few hosts or no flows.
    """
    if len(hosts) < 2:
        raise ConfigurationError("need at least two hosts to generate flows")
    if load <= 0:
        raise ConfigurationError(f"load must be positive, got {load!r}")
    if num_flows < 1:
        raise ConfigurationError(f"num_flows must be >= 1, got {num_flows!r}")

    sizes_dist = size_distribution or DataCenterFlowSizes()
    mean_size = sizes_dist.mean()
    capacity_bytes_per_s = link_rate_bps / 8.0
    arrival_rate = load * len(hosts) * capacity_bytes_per_s / mean_size

    gaps = rng.exponential(1.0 / arrival_rate, num_flows)
    start_times = np.cumsum(gaps)
    sizes = np.maximum(np.asarray(sizes_dist.sample(rng, num_flows), dtype=float), 1.0)

    host_array = list(hosts)
    src_idx = rng.integers(0, len(host_array), size=num_flows)
    dst_idx = rng.integers(0, len(host_array) - 1, size=num_flows)
    # Shift destination indices at or above the source index so dst != src
    # while keeping the choice uniform over the other hosts.
    dst_idx = np.where(dst_idx >= src_idx, dst_idx + 1, dst_idx)

    flows = [
        FlowSpec(
            flow_id=i,
            src=host_array[int(src_idx[i])],
            dst=host_array[int(dst_idx[i])],
            size_bytes=float(sizes[i]),
            start_time=float(start_times[i]),
        )
        for i in range(num_flows)
    ]
    return flows


def short_flows(flows: Sequence[FlowSpec], threshold_bytes: float = 10_000.0) -> List[FlowSpec]:
    """The flows smaller than ``threshold_bytes`` (the paper's "short flows")."""
    return [f for f in flows if f.size_bytes < threshold_bytes]


def elephant_flows(flows: Sequence[FlowSpec], threshold_bytes: float = 1_000_000.0) -> List[FlowSpec]:
    """The flows of at least ``threshold_bytes`` (the paper's elephants)."""
    return [f for f in flows if f.size_bytes >= threshold_bytes]
