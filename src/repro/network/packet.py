"""Packet objects carried by the network simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

#: Wire priority of ordinary traffic (strictly served first).
PRIORITY_NORMAL = 0

#: Wire priority of replicated copies ("they can never delay the original,
#: unreplicated traffic in the network").
PRIORITY_REPLICA = 1

_packet_counter = itertools.count()


@dataclass(slots=True)
class Packet:
    """A data or acknowledgement packet.

    Packet-mode runs allocate one of these per segment and per replica, so
    the class is slotted: no per-instance ``__dict__`` to allocate or fill.

    Attributes:
        flow_id: Flow the packet belongs to.
        seq: Data sequence number (index of the MSS-sized segment), or the
            cumulative ACK number for ACK packets.
        size_bytes: Size on the wire, headers included.
        src: Source host name.
        dst: Destination host name.
        is_ack: Whether this is an acknowledgement.
        is_replica: Whether this is a replicated (low-priority) copy.
        priority: Queueing priority (0 = normal, 1 = replica).
        created_at: Simulated time the packet was created.
        path: The remaining path as a list of :class:`~repro.network.link.Link`
            objects (set by the router when the packet is injected).
        hop_index: Index of the next link in ``path`` to traverse.
        uid: Unique id (for debugging and deduplication bookkeeping).
    """

    flow_id: int
    seq: int
    size_bytes: float
    src: str
    dst: str
    is_ack: bool = False
    is_replica: bool = False
    priority: int = PRIORITY_NORMAL
    created_at: float = 0.0
    path: List = field(default_factory=list, repr=False)
    hop_index: int = 0
    uid: int = field(default_factory=lambda: next(_packet_counter))

    def clone_as_replica(self) -> "Packet":
        """A low-priority copy of this data packet (fresh uid, same seq)."""
        return Packet(
            flow_id=self.flow_id,
            seq=self.seq,
            size_bytes=self.size_bytes,
            src=self.src,
            dst=self.dst,
            is_ack=self.is_ack,
            is_replica=True,
            priority=PRIORITY_REPLICA,
            created_at=self.created_at,
        )
