"""Links with serialisation delay, propagation delay and priority queues.

Each *directed* link models the output port of the upstream device: a
strict-priority, drop-tail queue bounded in bytes (225 KB in the paper),
followed by a transmitter that serialises one packet at a time at the link
rate, followed by the propagation delay.  Replicated packets are enqueued at
the lower priority, so they "can never delay the original, unreplicated
traffic".
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exceptions import ConfigurationError
from repro.network.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.resources import PriorityQueueResource


class Link:
    """A directed link between two nodes.

    Attributes:
        name: Human-readable ``"src->dst"`` identifier.
        rate_bytes_per_s: Transmission rate in bytes per second.
        propagation_delay_s: One-way propagation delay in seconds.
        queue: The strict-priority drop-tail output queue.
        packets_sent: Number of packets fully transmitted.
        bytes_sent: Total bytes transmitted.
    """

    # One Link per directed edge, but every queued packet passes through the
    # slotted (item, size) tuples of PriorityQueueResource and the hot
    # per-packet callbacks below; slotting the Link keeps its attribute
    # reads off the instance-dict path.
    __slots__ = (
        "_sim",
        "name",
        "rate_bytes_per_s",
        "propagation_delay_s",
        "queue",
        "deliver",
        "_busy",
        "packets_sent",
        "bytes_sent",
        "packets_dropped",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        propagation_delay_s: float,
        buffer_bytes: Optional[float] = 225_000.0,
        deliver: Optional[Callable[[Packet, float], None]] = None,
    ) -> None:
        """Create a link.

        Args:
            sim: The simulator driving the link.
            name: Identifier, conventionally ``"src->dst"``.
            rate_bps: Link rate in bits per second (> 0).
            propagation_delay_s: Propagation delay in seconds (>= 0).
            buffer_bytes: Output-queue capacity in bytes (``None`` = unbounded);
                the paper uses 225 KB.
            deliver: Callback invoked as ``deliver(packet, arrival_time)`` when
                a packet reaches the far end; usually set once by the network
                after all links exist.
        """
        if rate_bps <= 0:
            raise ConfigurationError(f"rate_bps must be positive, got {rate_bps!r}")
        if propagation_delay_s < 0:
            raise ConfigurationError(
                f"propagation_delay_s must be >= 0, got {propagation_delay_s!r}"
            )
        self._sim = sim
        self.name = name
        self.rate_bytes_per_s = rate_bps / 8.0
        self.propagation_delay_s = float(propagation_delay_s)
        self.queue = PriorityQueueResource(capacity_bytes=buffer_bytes, levels=2)
        self.deliver = deliver
        self._busy = False
        self.packets_sent = 0
        self.bytes_sent = 0.0
        self.packets_dropped = 0

    def serialization_delay(self, size_bytes: float) -> float:
        """Time to put ``size_bytes`` on the wire at this link's rate."""
        return size_bytes / self.rate_bytes_per_s

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.

        The packet is transmitted immediately if the transmitter is idle,
        queued if there is buffer space, and dropped otherwise.

        Returns:
            ``False`` if the packet was dropped, ``True`` otherwise.
        """
        if self._busy:
            accepted = self.queue.push(packet, packet.size_bytes, packet.priority)
            if not accepted:
                self.packets_dropped += 1
            return accepted
        self._transmit(packet)
        return True

    def _transmit(self, packet: Packet) -> None:
        self._busy = True
        delay = self.serialization_delay(packet.size_bytes)
        self._sim.schedule(delay, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self._sim.schedule(self.propagation_delay_s, self._arrive, packet)
        if self.queue.empty:
            self._busy = False
        else:
            next_packet, _size, _priority = self.queue.pop()
            self._transmit(next_packet)

    def _arrive(self, packet: Packet) -> None:
        if self.deliver is None:
            raise ConfigurationError(f"link {self.name} has no deliver callback")
        self.deliver(packet, self._sim.now)

    @property
    def queue_occupancy_bytes(self) -> float:
        """Bytes currently waiting in the output queue."""
        return self.queue.occupancy_bytes
