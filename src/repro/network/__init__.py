"""Packet-level datacenter network substrate for Section 2.4.

The paper evaluates in-network replication with an ns-3 simulation of a
54-server, three-layer fat-tree (45 six-port switches in 6 pods, full
bisection bandwidth), ECMP flow placement, drop-tail queues of 225 KB, Poisson
flow arrivals with a standard datacenter size mix, and TCP with a 10 ms
minimum RTO.  Every switch replicates the first 8 packets of each flow along
an alternate route at strictly lower priority.

This package rebuilds that experiment as a Python discrete-event simulation:

* :mod:`repro.network.topology` — the k-ary fat-tree and its equal-cost paths.
* :mod:`repro.network.link` — links with serialisation, propagation and
  strict-priority drop-tail output queues.
* :mod:`repro.network.routing` — ECMP path choice and alternate-path choice.
* :mod:`repro.network.tcp` — a simplified TCP (slow start, cumulative ACKs,
  fast retransmit, 10 ms min RTO with exponential backoff).
* :mod:`repro.network.replication` — the replicate-first-k-packets-at-low-
  priority mechanism, with de-duplication at the receiver.
* :mod:`repro.network.fattree_sim` — the experiment driver producing the
  Figure 14 quantities.
"""

from repro.network.topology import FatTreeTopology
from repro.network.link import Link
from repro.network.packet import Packet
from repro.network.routing import EcmpRouter
from repro.network.replication import ReplicationConfig
from repro.network.fattree_sim import FatTreeExperiment, FatTreeExperimentConfig, FlowRecord

__all__ = [
    "FatTreeTopology",
    "Link",
    "Packet",
    "EcmpRouter",
    "ReplicationConfig",
    "FatTreeExperiment",
    "FatTreeExperimentConfig",
    "FlowRecord",
]
