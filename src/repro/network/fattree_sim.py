"""The Section 2.4 experiment driver: fat-tree + TCP + in-network replication.

:class:`FatTreeExperiment` wires the substrate together — topology, links with
strict-priority queues, ECMP routing, TCP flows, the replicate-first-packets
mechanism — runs a flow workload with and without replication, and reports the
quantities of Figure 14: completion times of flows smaller than 10 KB (median
and 99th percentile as a function of load, and the full CDF at one load) plus
the sanity check that elephant flows are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import LatencySummary
from repro.distributions.datacenter import DataCenterFlowSizes
from repro.exceptions import ConfigurationError, RoutingError, SimulationError
from repro.metrics import LatencyRecorder, MetricsRegistry
from repro.network.flow_fidelity import flow_level_fcts
from repro.network.flows import FlowSpec, generate_flows
from repro.network.link import Link
from repro.network.packet import PRIORITY_NORMAL, Packet
from repro.network.replication import ReplicationConfig
from repro.network.routing import EcmpRouter
from repro.network.tcp import TcpConfig, TcpFlow
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Simulator
from repro.sim.rng import substream


@dataclass(frozen=True)
class FatTreeExperimentConfig:
    """Configuration of one fat-tree run.

    Attributes:
        k: Fat-tree radix (6 in the paper: 54 hosts, 45 switches).
        link_rate_gbps: Link rate of every link, in Gbit/s (the paper sweeps
            5 and 10).
        per_hop_delay_us: Per-hop propagation delay in microseconds (2 or 6).
        buffer_bytes: Per-output-port buffer, shared across priorities (225 KB).
        load: Offered load as a fraction of access capacity.
        num_flows: Number of flows per run.
        replication: The in-network replication configuration.
        tcp: Transport parameters.
        seed: Base random seed (shared between the replicated and baseline
            runs so they see the same workload).
        max_sim_seconds: Hard cap on simulated time (protects against
            pathological high-load runs that cannot drain).
        fidelity: ``"packet"`` (default) simulates every segment/ACK/queue
            event — the reference fidelity; ``"flow"`` computes FCTs from the
            link-share model in :mod:`repro.network.flow_fidelity` on the
            *identical* workload (same seed substream, flows, and routed
            paths) at a fraction of the cost.  Flow mode is approximate at
            high load — see the delta table in EXPERIMENTS.md.
    """

    k: int = 6
    link_rate_gbps: float = 5.0
    per_hop_delay_us: float = 2.0
    buffer_bytes: float = 225_000.0
    load: float = 0.4
    num_flows: int = 2_000
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    tcp: TcpConfig = field(default_factory=TcpConfig)
    seed: int = 0
    max_sim_seconds: float = 60.0
    fidelity: str = "packet"

    def __post_init__(self) -> None:
        if self.link_rate_gbps <= 0 or self.per_hop_delay_us < 0:
            raise ConfigurationError("link rate must be positive and delay non-negative")
        if not 0.0 < self.load < 1.0:
            raise ConfigurationError(f"load must be in (0, 1), got {self.load!r}")
        if self.num_flows < 1:
            raise ConfigurationError("num_flows must be >= 1")
        if self.fidelity not in ("packet", "flow"):
            raise ConfigurationError(
                f"fidelity must be 'packet' or 'flow', got {self.fidelity!r}"
            )

    @property
    def link_rate_bps(self) -> float:
        """Link rate in bits per second."""
        return self.link_rate_gbps * 1e9

    @property
    def per_hop_delay_s(self) -> float:
        """Per-hop propagation delay in seconds."""
        return self.per_hop_delay_us * 1e-6


@dataclass(frozen=True)
class FlowRecord:
    """Outcome of one flow.

    Attributes:
        flow_id: Flow id.
        size_bytes: Flow size.
        fct: Flow completion time in seconds (``None`` if it did not finish
            before the simulation horizon).
        timeouts: Number of RTO events the flow suffered.
        retransmissions: Number of retransmitted segments.
        duplicate_deliveries: Data packets whose replica also arrived.
    """

    flow_id: int
    size_bytes: float
    fct: Optional[float]
    timeouts: int
    retransmissions: int
    duplicate_deliveries: int


@dataclass(frozen=True)
class FatTreeRunResult:
    """All flow records of one run plus aggregate drop statistics."""

    config: FatTreeExperimentConfig
    records: List[FlowRecord]
    dropped_packets: int
    dropped_replicas: int

    def completed(self) -> List[FlowRecord]:
        """Records of flows that finished within the horizon."""
        return [r for r in self.records if r.fct is not None]

    def fcts(self, max_size: Optional[float] = None, min_size: Optional[float] = None) -> np.ndarray:
        """Completion times of completed flows within a size band."""
        values = [
            r.fct
            for r in self.records
            if r.fct is not None
            and (max_size is None or r.size_bytes < max_size)
            and (min_size is None or r.size_bytes >= min_size)
        ]
        return np.asarray(values, dtype=float)

    def short_flow_fcts(self) -> np.ndarray:
        """Completion times of flows smaller than 10 KB (the paper's metric)."""
        return self.fcts(max_size=10_000.0)

    def elephant_fcts(self) -> np.ndarray:
        """Completion times of flows of 1 MB or more."""
        return self.fcts(min_size=1_000_000.0)

    def short_flow_recorder(self) -> LatencyRecorder:
        """A recorder over short-flow completion times.

        Raises:
            SimulationError: If no short flows completed.
        """
        fcts = self.short_flow_fcts()
        if fcts.size == 0:
            raise SimulationError("run produced no completed short flows")
        return LatencyRecorder.from_samples(fcts, name="short_flow_fct")

    def short_flow_summary(self) -> LatencySummary:
        """Latency summary of short-flow completion times.

        Raises:
            SimulationError: If no short flows completed.
        """
        return self.short_flow_recorder().summary()


class _PacketNetwork:
    """Owns the links and moves packets along their paths."""

    def __init__(
        self,
        sim: Simulator,
        topology: FatTreeTopology,
        config: FatTreeExperimentConfig,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config
        self.links: Dict[tuple, Link] = {}
        for u, v in topology.graph.edges:
            for a, b in ((u, v), (v, u)):
                self.links[(a, b)] = Link(
                    sim,
                    name=f"{a}->{b}",
                    rate_bps=config.link_rate_bps,
                    propagation_delay_s=config.per_hop_delay_s,
                    buffer_bytes=config.buffer_bytes,
                    deliver=self._on_link_arrival,
                )
        self.flows: Dict[int, TcpFlow] = {}
        self.metrics = MetricsRegistry("fattree")
        # Cached: _count_drop runs per dropped packet, so the per-event cost
        # must stay a bare attribute increment.
        self._dropped_packets = self.metrics.counter("dropped_packets")
        self._dropped_replicas = self.metrics.counter("dropped_replicas")

    @property
    def dropped_packets(self) -> int:
        """Primary data packets dropped at a full buffer."""
        return self._dropped_packets.value

    @property
    def dropped_replicas(self) -> int:
        """Replica packets dropped at a full buffer."""
        return self._dropped_replicas.value

    def links_for_path(self, path: List[str]) -> List[Link]:
        """The directed :class:`Link` objects along a node-name path."""
        try:
            return [self.links[(path[i], path[i + 1])] for i in range(len(path) - 1)]
        except KeyError as exc:
            raise RoutingError(f"path {path!r} uses a link that does not exist") from exc

    def inject(self, packet: Packet, path_links: List[Link]) -> None:
        """Send ``packet`` along ``path_links`` (drop accounting included)."""
        packet.path = path_links
        packet.hop_index = 0
        accepted = path_links[0].send(packet)
        if not accepted:
            self._count_drop(packet)

    def _on_link_arrival(self, packet: Packet, _now: float) -> None:
        packet.hop_index += 1
        if packet.hop_index < len(packet.path):
            accepted = packet.path[packet.hop_index].send(packet)
            if not accepted:
                self._count_drop(packet)
            return
        flow = self.flows.get(packet.flow_id)
        if flow is None:
            return
        flow.on_data_arrival(packet)

    def _count_drop(self, packet: Packet) -> None:
        counter = self._dropped_replicas if packet.is_replica else self._dropped_packets
        counter.increment()


class FatTreeExperiment:
    """Runs the fat-tree workload with and without in-network replication."""

    def __init__(self, config: Optional[FatTreeExperimentConfig] = None) -> None:
        """Create the experiment (default config = the paper's 5 Gbps / 2 us case)."""
        self.config = config or FatTreeExperimentConfig()
        self.topology = FatTreeTopology(self.config.k)

    # ------------------------------------------------------------------ #

    def run(
        self,
        replication: Optional[ReplicationConfig] = None,
        load: Optional[float] = None,
        num_flows: Optional[int] = None,
        fidelity: Optional[str] = None,
    ) -> FatTreeRunResult:
        """Run one simulation.

        Args:
            replication: Override the replication configuration (``None`` uses
                the experiment config's; pass ``ReplicationConfig.disabled()``
                for the baseline).
            load: Override the offered load.
            num_flows: Override the number of flows.
            fidelity: Override the fidelity (``"packet"`` or ``"flow"``).

        Returns:
            A :class:`FatTreeRunResult`.
        """
        config = self.config
        if (
            replication is not None
            or load is not None
            or num_flows is not None
            or fidelity is not None
        ):
            config = replace(
                config,
                replication=replication if replication is not None else config.replication,
                load=load if load is not None else config.load,
                num_flows=num_flows if num_flows is not None else config.num_flows,
                fidelity=fidelity if fidelity is not None else config.fidelity,
            )

        router = EcmpRouter(self.topology, salt=config.seed)
        rng = substream(config.seed, "flows", config.load, config.num_flows)
        flow_specs = generate_flows(
            hosts=self.topology.hosts(),
            load=config.load,
            link_rate_bps=config.link_rate_bps,
            num_flows=config.num_flows,
            rng=rng,
            size_distribution=DataCenterFlowSizes(),
        )

        if config.fidelity == "flow":
            fcts = flow_level_fcts(config, router, flow_specs)
            records = [
                FlowRecord(
                    flow_id=spec.flow_id,
                    size_bytes=spec.size_bytes,
                    fct=fcts[index],
                    timeouts=0,
                    retransmissions=0,
                    duplicate_deliveries=0,
                )
                for index, spec in enumerate(flow_specs)
            ]
            return FatTreeRunResult(
                config=config, records=records, dropped_packets=0, dropped_replicas=0
            )

        sim = Simulator()
        network = _PacketNetwork(sim, self.topology, config)

        completed: List[TcpFlow] = []
        default_links: Dict[int, List[Link]] = {}
        alternate_links: Dict[int, List[Link]] = {}
        ack_delay: Dict[int, float] = {}

        def inject_replica(flow: TcpFlow, packet: Packet) -> None:
            replica = packet.clone_as_replica()
            replica.priority = config.replication.replica_priority()
            network.inject(replica, alternate_links[flow.flow_id])

        def inject_deferred_replica(flow: TcpFlow, packet: Packet) -> None:
            # Hedged duplication: by the time the delay expires the segment
            # may already be acknowledged — then the copy is suppressed and
            # the network never pays for it.
            if flow.completed or flow.snd_una > packet.seq:
                return
            inject_replica(flow, packet)

        def send_segment(flow: TcpFlow, seq: int, wire_bytes: float, retransmission: bool) -> None:
            packet = Packet(
                flow_id=flow.flow_id,
                seq=seq,
                size_bytes=wire_bytes,
                src=flow.src,
                dst=flow.dst,
                priority=PRIORITY_NORMAL,
                created_at=sim.now,
            )
            network.inject(packet, default_links[flow.flow_id])
            if config.replication.should_replicate(seq, retransmission):
                if config.replication.deferred:
                    sim.schedule(
                        config.replication.replica_delay_s,
                        inject_deferred_replica,
                        flow,
                        packet,
                    )
                else:
                    inject_replica(flow, packet)

        def send_ack(flow: TcpFlow, ack_num: int) -> None:
            # ACKs return over an uncongested reverse path: fixed delay.
            sim.schedule(ack_delay[flow.flow_id], flow.on_ack_arrival, ack_num)

        def on_complete(flow: TcpFlow) -> None:
            completed.append(flow)

        for spec in flow_specs:
            flow = TcpFlow(
                sim=sim,
                flow_id=spec.flow_id,
                src=spec.src,
                dst=spec.dst,
                size_bytes=spec.size_bytes,
                start_time=spec.start_time,
                config=config.tcp,
                send_segment=send_segment,
                send_ack=send_ack,
                on_complete=on_complete,
            )
            network.flows[spec.flow_id] = flow
            default_path = router.default_path(spec.flow_id, spec.src, spec.dst)
            alternate_path = router.alternate_path(spec.flow_id, spec.src, spec.dst)
            default_links[spec.flow_id] = network.links_for_path(default_path)
            alternate_links[spec.flow_id] = network.links_for_path(alternate_path)
            hops = len(default_path) - 1
            ack_delay[spec.flow_id] = hops * (
                config.per_hop_delay_s
                + config.tcp.ack_bytes / (config.link_rate_bps / 8.0)
            )
            sim.schedule_at(spec.start_time, flow.start)

        sim.run_until(config.max_sim_seconds)
        # Any flow still incomplete at the horizon keeps fct=None.
        sim.clear()

        records = [
            FlowRecord(
                flow_id=spec.flow_id,
                size_bytes=spec.size_bytes,
                fct=network.flows[spec.flow_id].flow_completion_time,
                timeouts=network.flows[spec.flow_id].timeouts,
                retransmissions=network.flows[spec.flow_id].retransmissions,
                duplicate_deliveries=network.flows[spec.flow_id].duplicate_deliveries,
            )
            for spec in flow_specs
        ]
        return FatTreeRunResult(
            config=config,
            records=records,
            dropped_packets=network.dropped_packets,
            dropped_replicas=network.dropped_replicas,
        )

    # ------------------------------------------------------------------ #

    def compare(
        self,
        load: Optional[float] = None,
        num_flows: Optional[int] = None,
    ) -> Dict[str, FatTreeRunResult]:
        """Run the baseline and the replicated configuration on the same workload.

        Returns:
            ``{"baseline": ..., "replicated": ...}``.
        """
        baseline = self.run(
            replication=ReplicationConfig.disabled(), load=load, num_flows=num_flows
        )
        replicated = self.run(
            replication=self.config.replication
            if self.config.replication.enabled
            else ReplicationConfig(),
            load=load,
            num_flows=num_flows,
        )
        return {"baseline": baseline, "replicated": replicated}

    @staticmethod
    def median_improvement(results: Dict[str, FatTreeRunResult]) -> float:
        """Percent improvement in median short-flow FCT from replication."""
        baseline = np.median(results["baseline"].short_flow_fcts())
        replicated = np.median(results["replicated"].short_flow_fcts())
        if baseline <= 0:
            raise SimulationError("baseline median FCT is zero; run produced no short flows")
        return 100.0 * (baseline - replicated) / baseline

    @staticmethod
    def percentile_fct(result: FatTreeRunResult, percentile: float) -> float:
        """A percentile of the short-flow FCT distribution, in seconds.

        Raises:
            SimulationError: If no short flows completed.
        """
        return result.short_flow_recorder().percentile(percentile)
