"""A simplified TCP for the fat-tree simulation.

The Section 2.4 result only depends on a few TCP behaviours, all implemented
here: window-limited transmission with slow start, cumulative ACKs, fast
retransmit on triple duplicate ACKs, and — critically for Figure 14(b) — a
retransmission timeout with the datacenter-typical 10 ms minimum RTO and
exponential backoff.  The 99th-percentile improvement at 70-80% load in the
paper comes almost entirely from replicated copies slipping through an
uncongested path and thereby avoiding that 10 ms timeout.

Simplifications (documented, and irrelevant to the measured quantities):
ACKs return over an uncongested reverse path modelled as a fixed delay
(reverse-path data queueing is negligible because ACKs are 40 bytes), there is
no delayed-ACK timer, and receive windows are unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set

from repro.exceptions import ConfigurationError
from repro.network.packet import PRIORITY_NORMAL, Packet
from repro.sim.engine import Simulator
from repro.sim.events import Event


@dataclass(frozen=True)
class TcpConfig:
    """Transport parameters.

    Attributes:
        mss_bytes: Maximum segment payload size.
        header_bytes: Per-packet header overhead on the wire.
        initial_cwnd_segments: Initial congestion window, in segments.
        initial_ssthresh_segments: Initial slow-start threshold.
        min_rto_s: Minimum retransmission timeout (10 ms, as in the paper).
        max_rto_s: Cap on the backed-off RTO.
        ack_bytes: Size of an acknowledgement on the wire.
    """

    mss_bytes: int = 1460
    header_bytes: int = 40
    initial_cwnd_segments: int = 4
    initial_ssthresh_segments: int = 64
    min_rto_s: float = 0.010
    max_rto_s: float = 1.0
    ack_bytes: int = 40

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0 or self.header_bytes < 0:
            raise ConfigurationError("mss_bytes must be positive and header_bytes >= 0")
        if self.initial_cwnd_segments < 1 or self.initial_ssthresh_segments < 1:
            raise ConfigurationError("initial window parameters must be >= 1")
        if self.min_rto_s <= 0 or self.max_rto_s < self.min_rto_s:
            raise ConfigurationError("need 0 < min_rto_s <= max_rto_s")


class TcpFlow:
    """Sender and receiver state for one flow.

    The surrounding network calls :meth:`start` when the flow begins,
    :meth:`on_data_arrival` when a data packet (original or replica) reaches
    the destination, and :meth:`on_ack_arrival` when an ACK reaches the
    sender.  The flow calls ``send_segment(flow, seq, size_bytes,
    is_retransmission)`` on the network to put packets on the wire and
    ``on_complete(flow)`` once every byte is acknowledged.
    """

    __slots__ = (
        "sim",
        "flow_id",
        "src",
        "dst",
        "size_bytes",
        "start_time",
        "config",
        "_send_segment",
        "_send_ack",
        "_on_complete",
        "total_segments",
        "cwnd",
        "ssthresh",
        "snd_una",
        "snd_next",
        "dup_acks",
        "rto_interval",
        "rto_event",
        "timeouts",
        "retransmissions",
        "completed",
        "completion_time",
        "rcv_next",
        "_received",
        "duplicate_deliveries",
    )

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        src: str,
        dst: str,
        size_bytes: float,
        start_time: float,
        config: TcpConfig,
        send_segment: Callable[["TcpFlow", int, float, bool], None],
        send_ack: Callable[["TcpFlow", int], None],
        on_complete: Callable[["TcpFlow"], None],
    ) -> None:
        """Create a flow (does not start transmitting until :meth:`start`)."""
        if size_bytes <= 0:
            raise ConfigurationError(f"flow size must be positive, got {size_bytes!r}")
        self.sim = sim
        self.flow_id = int(flow_id)
        self.src = src
        self.dst = dst
        self.size_bytes = float(size_bytes)
        self.start_time = float(start_time)
        self.config = config
        self._send_segment = send_segment
        self._send_ack = send_ack
        self._on_complete = on_complete

        self.total_segments = max(1, -(-int(size_bytes) // config.mss_bytes))
        self.cwnd = float(config.initial_cwnd_segments)
        self.ssthresh = float(config.initial_ssthresh_segments)
        self.snd_una = 0           # lowest unacknowledged segment
        self.snd_next = 0          # next new segment to transmit
        self.dup_acks = 0
        self.rto_interval = config.min_rto_s
        self.rto_event: Optional[Event] = None
        self.timeouts = 0
        self.retransmissions = 0
        self.completed = False
        self.completion_time: Optional[float] = None

        # Receiver state.
        self.rcv_next = 0
        self._received: Set[int] = set()
        self.duplicate_deliveries = 0

    # ------------------------------ sender ------------------------------- #

    def start(self) -> None:
        """Begin transmitting (called at the flow's arrival time)."""
        self._try_send()
        self._restart_rto()

    def segment_payload(self, seq: int) -> float:
        """Payload bytes of segment ``seq`` (the last segment may be short)."""
        if seq < self.total_segments - 1:
            return float(self.config.mss_bytes)
        return self.size_bytes - self.config.mss_bytes * (self.total_segments - 1)

    def segment_wire_bytes(self, seq: int) -> float:
        """On-the-wire size of segment ``seq`` including headers."""
        return self.segment_payload(seq) + self.config.header_bytes

    def _try_send(self) -> None:
        while (
            self.snd_next < self.total_segments
            and self.snd_next - self.snd_una < int(self.cwnd)
        ):
            self._send_segment(self, self.snd_next, self.segment_wire_bytes(self.snd_next), False)
            self.snd_next += 1

    def _restart_rto(self) -> None:
        if self.rto_event is not None:
            self.rto_event.cancel()
            self.rto_event = None
        if self.completed or self.snd_una >= self.total_segments:
            return
        self.rto_event = self.sim.schedule(self.rto_interval, self._on_timeout)

    def _on_timeout(self) -> None:
        """Retransmission timeout: go back to the first unacked segment."""
        self.rto_event = None
        if self.completed:
            return
        self.timeouts += 1
        self.retransmissions += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.rto_interval = min(self.rto_interval * 2.0, self.config.max_rto_s)
        self._send_segment(self, self.snd_una, self.segment_wire_bytes(self.snd_una), True)
        # After a timeout, transmission resumes from the first unacked segment.
        self.snd_next = max(self.snd_next, self.snd_una + 1)
        self._restart_rto()

    def on_ack_arrival(self, ack_num: int) -> None:
        """Process a cumulative ACK covering segments ``< ack_num``."""
        if self.completed:
            return
        if ack_num > self.snd_una:
            newly_acked = ack_num - self.snd_una
            self.snd_una = ack_num
            self.dup_acks = 0
            self.rto_interval = self.config.min_rto_s
            for _ in range(newly_acked):
                if self.cwnd < self.ssthresh:
                    self.cwnd += 1.0
                else:
                    self.cwnd += 1.0 / self.cwnd
            if self.snd_una >= self.total_segments:
                self._complete()
                return
            self._try_send()
            self._restart_rto()
        elif ack_num == self.snd_una:
            self.dup_acks += 1
            if self.dup_acks == 3:
                # Fast retransmit / simplified fast recovery.
                self.retransmissions += 1
                self.ssthresh = max(self.cwnd / 2.0, 2.0)
                self.cwnd = self.ssthresh
                self._send_segment(
                    self, self.snd_una, self.segment_wire_bytes(self.snd_una), True
                )
                self._restart_rto()

    def _complete(self) -> None:
        self.completed = True
        self.completion_time = self.sim.now
        if self.rto_event is not None:
            self.rto_event.cancel()
            self.rto_event = None
        self._on_complete(self)

    # ----------------------------- receiver ------------------------------ #

    def on_data_arrival(self, packet: Packet) -> None:
        """Process a data packet (original or replica) at the destination.

        Duplicate deliveries (the original and its replica both arriving) are
        counted but acknowledged only once — the receiver "uses the first
        result which completes" and discards the second copy.
        """
        seq = packet.seq
        if seq in self._received:
            self.duplicate_deliveries += 1
        else:
            self._received.add(seq)
            while self.rcv_next in self._received:
                self.rcv_next += 1
        self._send_ack(self, self.rcv_next)

    # ------------------------------ metrics ------------------------------ #

    @property
    def flow_completion_time(self) -> Optional[float]:
        """Flow completion time in seconds (``None`` until completed)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time
