"""The k-ary fat-tree topology and its equal-cost paths.

The paper's setup: "a common 54-server three-layered fat-tree topology, with a
full bisection-bandwidth fabric consisting of 45 6-port switches organized in
6 pods".  That is the standard k = 6 fat-tree: (k/2)^2 = 9 core switches,
k pods each with k/2 = 3 aggregation and 3 edge switches, and k/2 = 3 hosts
per edge switch, for k^3/4 = 54 hosts and 45 switches.

:class:`FatTreeTopology` builds the topology (as a :mod:`networkx` graph for
introspection and tests) and enumerates, for every host pair, the complete set
of equal-cost shortest paths that ECMP hashes over.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.exceptions import ConfigurationError, RoutingError


class FatTreeTopology:
    """A k-ary fat-tree.

    Node naming convention:

    * hosts: ``h_<pod>_<edge>_<i>`` with ``i`` in ``[0, k/2)``
    * edge switches: ``e_<pod>_<edge>``
    * aggregation switches: ``a_<pod>_<agg>``
    * core switches: ``c_<group>_<i>`` where aggregation switch ``agg`` of any
      pod connects to the ``k/2`` core switches of group ``agg``.

    Attributes:
        k: Switch radix (must be even, >= 2).
        graph: Undirected :class:`networkx.Graph` of the topology.
    """

    def __init__(self, k: int = 6) -> None:
        """Build a k-ary fat-tree (k even)."""
        if k < 2 or k % 2 != 0:
            raise ConfigurationError(f"fat-tree k must be an even integer >= 2, got {k!r}")
        self.k = int(k)
        self.graph = nx.Graph()
        self._build()
        self._path_cache: Dict[Tuple[str, str], List[List[str]]] = {}

    # ------------------------------------------------------------------ #

    @property
    def half(self) -> int:
        """k/2: hosts per edge switch, edge/agg switches per pod, cores per group."""
        return self.k // 2

    @property
    def num_hosts(self) -> int:
        """Number of hosts, ``k^3 / 4``."""
        return self.k**3 // 4

    @property
    def num_switches(self) -> int:
        """Number of switches, ``k^2 + (k/2)^2`` ... i.e. 45 for k = 6."""
        return self.k * self.k + self.half * self.half

    def hosts(self) -> List[str]:
        """All host names, sorted."""
        return sorted(n for n in self.graph.nodes if n.startswith("h_"))

    def switches(self) -> List[str]:
        """All switch names, sorted."""
        return sorted(n for n in self.graph.nodes if not n.startswith("h_"))

    # ------------------------------------------------------------------ #

    def _build(self) -> None:
        k, half = self.k, self.half
        for pod in range(k):
            for edge in range(half):
                edge_name = f"e_{pod}_{edge}"
                self.graph.add_node(edge_name, kind="edge", pod=pod)
                for i in range(half):
                    host = f"h_{pod}_{edge}_{i}"
                    self.graph.add_node(host, kind="host", pod=pod)
                    self.graph.add_edge(host, edge_name)
            for agg in range(half):
                agg_name = f"a_{pod}_{agg}"
                self.graph.add_node(agg_name, kind="agg", pod=pod)
                for edge in range(half):
                    self.graph.add_edge(agg_name, f"e_{pod}_{edge}")
        for group in range(half):
            for i in range(half):
                core_name = f"c_{group}_{i}"
                self.graph.add_node(core_name, kind="core", pod=-1)
                for pod in range(k):
                    self.graph.add_edge(core_name, f"a_{pod}_{group}")

    # ------------------------------------------------------------------ #

    @staticmethod
    def host_location(host: str) -> Tuple[int, int, int]:
        """Decode a host name into ``(pod, edge, index)``."""
        try:
            _, pod, edge, index = host.split("_")
            return int(pod), int(edge), int(index)
        except ValueError as exc:
            raise RoutingError(f"not a host name: {host!r}") from exc

    def equal_cost_paths(self, src: str, dst: str) -> List[List[str]]:
        """All equal-cost shortest paths between two hosts, as node-name lists.

        The result is cached; for a k=6 fat-tree there are 1, k/2 = 3 or
        (k/2)^2 = 9 paths depending on whether the hosts share an edge switch,
        share only a pod, or sit in different pods.

        Raises:
            RoutingError: If ``src == dst`` or either is not a host.
        """
        if src == dst:
            raise RoutingError("source and destination hosts are the same")
        key = (src, dst)
        if key in self._path_cache:
            return self._path_cache[key]

        s_pod, s_edge, _ = self.host_location(src)
        d_pod, d_edge, _ = self.host_location(dst)
        half = self.half
        paths: List[List[str]] = []

        if s_pod == d_pod and s_edge == d_edge:
            paths.append([src, f"e_{s_pod}_{s_edge}", dst])
        elif s_pod == d_pod:
            for agg in range(half):
                paths.append(
                    [src, f"e_{s_pod}_{s_edge}", f"a_{s_pod}_{agg}", f"e_{d_pod}_{d_edge}", dst]
                )
        else:
            for agg in range(half):
                for core_index in range(half):
                    paths.append(
                        [
                            src,
                            f"e_{s_pod}_{s_edge}",
                            f"a_{s_pod}_{agg}",
                            f"c_{agg}_{core_index}",
                            f"a_{d_pod}_{agg}",
                            f"e_{d_pod}_{d_edge}",
                            dst,
                        ]
                    )
        self._path_cache[key] = paths
        return paths

    def verify(self) -> None:
        """Sanity-check the construction (used by tests and on demand).

        Raises:
            ConfigurationError: If node or degree counts are wrong.
        """
        hosts = self.hosts()
        if len(hosts) != self.num_hosts:
            raise ConfigurationError(
                f"expected {self.num_hosts} hosts, built {len(hosts)}"
            )
        switches = self.switches()
        if len(switches) != self.num_switches:
            raise ConfigurationError(
                f"expected {self.num_switches} switches, built {len(switches)}"
            )
        for switch in switches:
            degree = self.graph.degree(switch)
            if degree != self.k:
                raise ConfigurationError(
                    f"switch {switch} has degree {degree}, expected {self.k}"
                )
