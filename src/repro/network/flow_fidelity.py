"""Flow-level fast path for the fat-tree experiment (``fidelity="flow"``).

The packet-mode fat-tree run (Section 2.4) simulates every segment, ACK and
queue event; at paper scale (k=6, 2000 flows) that is millions of events per
grid point.  This module computes per-flow completion times from link-share
math instead:

* **Uncontended recursion** (:func:`uncontended_fct`): an exact ack-clocked
  replay of the TCP substrate over an idle path — slow-start/congestion
  avoidance window growth, store-and-forward serialisation on every hop, and
  the fixed reverse-path ACK delay.  For a flow that never shares a queue
  this reproduces the packet simulator's FCT to floating-point accuracy
  (pinned by tests to < 1e-9 relative error).
* **Fluid sharing for big flows**: flows of at least :data:`BIG_FLOW_BYTES`
  are run through a max-min fair fluid model over their routed paths; their
  FCT is the later of the fluid completion and the uncontended recursion
  (the recursion bounds the TCP ramp-up that the fluid model ignores).
* **Share-bound for short flows**: each short flow's FCT is lower-bounded by
  its wire volume over the max-min share it would get at its bottleneck
  link, counting the big flows in flight on its path when it starts.
* **Replication benefit**: a replication-eligible short flow (enabled and
  ``total_segments <= first_packets``) whose alternate ECMP path is idle
  completes in ``replica_delay_s`` plus the uncontended time of that path —
  the flow-level analogue of the paper's replicated-first-packets win.

The model deliberately omits drops, retransmission timeouts and short-vs-
short queueing transients, so it is an *approximation* at high load — the
measured-vs-packet delta table lives in EXPERIMENTS.md, and the packet path
remains the reference fidelity.  Timeout/retransmission/duplicate counters
are reported as zero in flow mode.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.flows import FlowSpec
from repro.network.routing import EcmpRouter

#: Flows at least this large take the fluid (max-min sharing) model; smaller
#: flows use the uncontended recursion plus the bottleneck share bound.
BIG_FLOW_BYTES = 100_000.0


def uncontended_fct(
    size_bytes: float,
    hops: int,
    link_rate_bps: float,
    per_hop_delay_s: float,
    tcp,
) -> float:
    """Exact FCT of one TCP flow over an idle path.

    Replays the transport substrate's dynamics without a simulator: segments
    are ack-clocked through ``hops`` store-and-forward links whose per-link
    free times are tracked explicitly, the window grows by one segment per
    ACK below ``ssthresh`` and by ``1/cwnd`` above it, and every ACK returns
    over the fixed-delay reverse path exactly as in
    :class:`~repro.network.fattree_sim.FatTreeExperiment`.

    Args:
        size_bytes: Application bytes to transfer.
        hops: Number of links on the forward path.
        link_rate_bps: Link rate in bits per second.
        per_hop_delay_s: Per-hop propagation delay in seconds.
        tcp: A :class:`~repro.network.tcp.TcpConfig`.

    Returns:
        Seconds from flow start to the last ACK arriving at the sender.
    """
    rate = link_rate_bps / 8.0
    total = max(1, -(-int(size_bytes) // tcp.mss_bytes))
    ack_delay = hops * (per_hop_delay_s + tcp.ack_bytes / rate)
    full_wire = (tcp.mss_bytes + tcp.header_bytes) / rate
    last_payload = size_bytes - tcp.mss_bytes * (total - 1)
    last_wire = (last_payload + tcp.header_bytes) / rate
    cwnd = float(tcp.initial_cwnd_segments)
    ssthresh = float(tcp.initial_ssthresh_segments)
    free = [0.0] * hops
    # ready[j] = earliest send time of segment j (0 for the initial window,
    # extended as ACKs open the window).
    ready = [0.0] * min(int(cwnd), total)
    finish = 0.0
    for j in range(total):
        wire = full_wire if j < total - 1 else last_wire
        arrival = ready[j]
        for hop in range(hops):
            departure = (free[hop] if free[hop] > arrival else arrival) + wire
            free[hop] = departure
            arrival = departure + per_hop_delay_s
        finish = arrival + ack_delay
        if cwnd < ssthresh:
            cwnd += 1.0
        else:
            cwnd += 1.0 / cwnd
        limit = min(total, j + 1 + int(cwnd))
        while len(ready) < limit:
            ready.append(finish)
    return finish


def _max_min_rates(
    active: Set[int],
    paths: Sequence[Tuple[int, ...]],
    link_capacity: float,
) -> Dict[int, float]:
    """Max-min fair rates (bytes/s) of ``active`` flows over shared links."""
    link_flows: Dict[int, Set[int]] = {}
    for index in active:
        for link in paths[index]:
            link_flows.setdefault(link, set()).add(index)
    capacity_left = {link: link_capacity for link in link_flows}
    rates: Dict[int, float] = {}
    unfrozen = set(active)
    while unfrozen:
        best_link = None
        best_share = None
        for link, flows in link_flows.items():
            live = len(flows & unfrozen)
            if not live:
                continue
            share = capacity_left[link] / live
            if best_share is None or share < best_share:
                best_share = share
                best_link = link
        if best_link is None:
            break
        best_share = max(0.0, best_share)
        for index in link_flows[best_link] & unfrozen:
            rates[index] = best_share
            unfrozen.discard(index)
            for link in paths[index]:
                capacity_left[link] -= best_share
    return rates


def _fluid_completions(
    indices: Sequence[int],
    starts: Sequence[float],
    volumes: Sequence[float],
    paths: Sequence[Tuple[int, ...]],
    link_capacity: float,
) -> Dict[int, float]:
    """Completion time of each flow in ``indices`` under max-min fluid sharing.

    Standard fluid flow-level model: between arrival/completion events every
    active flow drains at its max-min fair rate; rates are recomputed at each
    event.  Only the (few) big flows enter this model, so the quadratic
    recompute cost stays negligible.
    """
    arrivals = sorted(indices, key=lambda index: (starts[index], index))
    remaining: Dict[int, float] = {}
    completion: Dict[int, float] = {}
    active: Set[int] = set()
    position = 0
    now = 0.0
    while position < len(arrivals) or active:
        if not active:
            now = starts[arrivals[position]]
        while position < len(arrivals) and starts[arrivals[position]] <= now:
            index = arrivals[position]
            remaining[index] = volumes[index]
            active.add(index)
            position += 1
        rates = _max_min_rates(active, paths, link_capacity)
        time_to_finish = min(
            remaining[index] / rates[index] if rates.get(index, 0.0) > 0 else float("inf")
            for index in active
        )
        next_arrival = starts[arrivals[position]] if position < len(arrivals) else None
        if next_arrival is not None and next_arrival - now < time_to_finish:
            step = next_arrival - now
        else:
            step = time_to_finish
        for index in active:
            remaining[index] -= rates.get(index, 0.0) * step
        now += step
        finished = [
            index for index in active if remaining[index] <= 1e-9 * max(1.0, volumes[index])
        ]
        for index in finished:
            completion[index] = now
            active.discard(index)
    return completion


def flow_level_fcts(
    config,
    router: EcmpRouter,
    flow_specs: Sequence[FlowSpec],
) -> List[Optional[float]]:
    """Per-flow completion times under the flow-level model.

    Args:
        config: A :class:`~repro.network.fattree_sim.FatTreeExperimentConfig`
            with ``fidelity="flow"``.
        router: The ECMP router over the experiment's topology (same salt as
            packet mode, so default/alternate paths are identical).
        flow_specs: The workload, sorted by start time (as
            :func:`~repro.network.flows.generate_flows` returns it).

    Returns:
        One entry per spec, in spec order: the FCT in seconds, or ``None``
        for flows that would not finish before ``config.max_sim_seconds``.
    """
    tcp = config.tcp
    replication = config.replication
    rate = config.link_rate_bps / 8.0
    per_hop = config.per_hop_delay_s

    link_ids: Dict[Tuple[str, str], int] = {}

    def path_link_ids(path: Sequence[str]) -> Tuple[int, ...]:
        return tuple(
            link_ids.setdefault((path[i], path[i + 1]), len(link_ids))
            for i in range(len(path) - 1)
        )

    n = len(flow_specs)
    default_ids: List[Tuple[int, ...]] = []
    alternate_ids: List[Tuple[int, ...]] = []
    segments: List[int] = []
    volumes: List[float] = []
    analytic: List[float] = []
    alt_hops: List[int] = []
    for spec in flow_specs:
        default_path = router.default_path(spec.flow_id, spec.src, spec.dst)
        alternate_path = router.alternate_path(spec.flow_id, spec.src, spec.dst)
        default_ids.append(path_link_ids(default_path))
        alternate_ids.append(path_link_ids(alternate_path))
        hops = len(default_path) - 1
        alt_hops.append(len(alternate_path) - 1)
        total = max(1, -(-int(spec.size_bytes) // tcp.mss_bytes))
        segments.append(total)
        volumes.append(spec.size_bytes + total * tcp.header_bytes)
        analytic.append(
            uncontended_fct(spec.size_bytes, hops, config.link_rate_bps, per_hop, tcp)
        )

    starts = [spec.start_time for spec in flow_specs]
    big = [i for i in range(n) if flow_specs[i].size_bytes >= BIG_FLOW_BYTES]
    fluid = _fluid_completions(big, starts, volumes, default_ids, rate)

    # Interval timeline: walk flows in start order, tracking how many big
    # flows are in flight on every link so short flows can read their
    # bottleneck share (and replication its alternate-path idleness) at
    # arrival time.
    counts: Dict[int, int] = {}
    in_flight: List[Tuple[float, int]] = []  # heap of (end_time, index)
    fcts: List[Optional[float]] = [None] * n
    for i in sorted(range(n), key=lambda index: (starts[index], index)):
        now = starts[i]
        while in_flight and in_flight[0][0] <= now:
            _, ended = heapq.heappop(in_flight)
            for link in default_ids[ended]:
                counts[link] -= 1
        base = analytic[i]
        if i in fluid:
            fct = max(base, fluid[i] - now)
        else:
            users = max((counts.get(link, 0) for link in default_ids[i]), default=0)
            fct = max(base, volumes[i] * (users + 1) / rate) if users else base
            if (
                replication.enabled
                and segments[i] <= replication.first_packets
                and all(counts.get(link, 0) == 0 for link in alternate_ids[i])
            ):
                alt_base = (
                    base
                    if alt_hops[i] == len(default_ids[i])
                    else uncontended_fct(
                        flow_specs[i].size_bytes,
                        alt_hops[i],
                        config.link_rate_bps,
                        per_hop,
                        tcp,
                    )
                )
                fct = min(fct, replication.replica_delay_s + alt_base)
        if now + fct <= config.max_sim_seconds:
            fcts[i] = fct
        if i in fluid:
            heapq.heappush(in_flight, (now + fct, i))
            for link in default_ids[i]:
                counts[link] = counts.get(link, 0) + 1
    return fcts
