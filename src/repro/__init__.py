"""repro — reproduction of "Low Latency via Redundancy" (Vulimiri et al., CoNEXT 2013).

The package is organised as a core library plus the substrates the paper's
evaluation depends on:

``repro.core``
    The paper's primary contribution: replication/hedging policies, an
    asyncio hedged-request client, backend selection strategies, threshold-load
    computation and cost-benefit analysis.

``repro.sim``
    A discrete-event simulation engine (event heap, processes, resources).

``repro.distributions``
    Service-time and size distributions used throughout the evaluation.

``repro.workloads``
    Arrival processes, key popularity models and file-set construction.

``repro.queueing``
    The Section 2.1 queueing model: N servers, Poisson arrivals, k-copy
    replication, analytic results and threshold-load search.

``repro.cluster``
    The Section 2.2/2.3 storage substrates: disk-backed database cluster and
    memcached-style in-memory store.

``repro.network``
    The Section 2.4 substrate: packet-level fat-tree datacenter simulator with
    in-network replication of the first packets of each flow.

``repro.wan``
    The Section 3 substrates: TCP handshake completion model and wide-area DNS
    replication experiments.

``repro.metrics``
    The unified streaming metrics layer every substrate records through:
    counters, bounded-memory percentile histograms, sliding windows,
    reservoirs and the :class:`~repro.metrics.LatencyRecorder` facade.

``repro.analysis``
    Latency statistics, CDFs and result tables.

``repro.experiments``
    Declarative scenario sweeps: parameter grids, a tiered scenario registry
    over every substrate (up to the paper-scale runs), a chunked parallel
    sweep runner with derived per-point seeds and resumable streaming
    artifacts, and artifact diffing (``python -m repro.experiments``).

The packages form a strict layer stack — sim → distributions/workloads →
substrates → metrics → experiments → analysis; the README's Architecture
section draws the diagram, and ``EXPERIMENTS.md`` maps every paper figure to
the scenario and command that reproduce it.
"""

from repro._version import __version__
from repro.metrics import (
    Counter,
    Histogram,
    LatencyRecorder,
    MetricsRegistry,
    Reservoir,
    SlidingWindow,
)
from repro.core.policy import (
    HedgeAfterDelay,
    HedgeOnPercentile,
    KCopies,
    NoReplication,
    ReplicationPolicy,
    RequestPlan,
    parse_policy,
    policy_to_spec,
)
from repro.core.hedging import RedundantClient, first_completed, hedged_call
from repro.core.thresholds import exponential_threshold_load, threshold_load_simulated
from repro.core.costbenefit import CostBenefitAnalysis, DEFAULT_BREAK_EVEN_MS_PER_KB

__all__ = [
    "__version__",
    "Counter",
    "Histogram",
    "SlidingWindow",
    "Reservoir",
    "LatencyRecorder",
    "MetricsRegistry",
    "ReplicationPolicy",
    "NoReplication",
    "KCopies",
    "HedgeAfterDelay",
    "HedgeOnPercentile",
    "RequestPlan",
    "parse_policy",
    "policy_to_spec",
    "first_completed",
    "hedged_call",
    "RedundantClient",
    "exponential_threshold_load",
    "threshold_load_simulated",
    "CostBenefitAnalysis",
    "DEFAULT_BREAK_EVEN_MS_PER_KB",
]
