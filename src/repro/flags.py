"""Central registry of the ``REPRO_*`` environment flags.

Every environment flag the library honours is declared here, once, with a
default, a closed set of accepted values and a docstring — and every read
goes through the declaring :class:`Flag`'s :meth:`Flag.read`.  Two failure
modes this kills:

* **Typo'd flag names.**  ``REPRO_DRAW=legacy`` used to be silently ignored
  (the read site only knew its own spelling); :func:`reject_unknown_flags`
  — called by the CLIs on startup — now fails fast on any ``REPRO_*``
  variable that no flag declares.
* **Typo'd flag values.**  Reads validate against the declared choices, so
  ``REPRO_CKERNELS=yes`` is a loud :class:`~repro.exceptions.ConfigurationError`
  instead of an accidental default.

The declarations below are deliberately *static* — ``declare("REPRO_X",
...)`` calls with a literal name and a ``help=`` string — because the
determinism linter (:mod:`repro.lint`, rule DET007) parses this module's AST
to learn the set of declared flags and then rejects any ``REPRO_*``
environment read anywhere else in ``src/``.  Adding a flag means adding a
declaration here; there is no second place.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError

#: Prefix shared by every environment flag the library honours.
FLAG_PREFIX = "REPRO_"

#: All declared flags, keyed by environment-variable name, in declaration
#: order (dicts preserve insertion order, so listings are stable).
REGISTRY: Dict[str, "Flag"] = {}


@dataclass(frozen=True)
class Flag:
    """One declared ``REPRO_*`` environment flag.

    Attributes:
        name: The environment-variable name (``REPRO_...``).
        default: Value used when the variable is unset.
        choices: The closed set of accepted values.
        help: What the flag selects and who consumes it.
    """

    name: str
    default: str
    choices: Tuple[str, ...]
    help: str = field(repr=False)

    def read(self, explicit: Optional[str] = None) -> str:
        """The flag's effective value, validated against ``choices``.

        Args:
            explicit: A caller-supplied override (e.g. a ``draws=`` function
                argument); ``None`` consults the environment, falling back to
                ``default`` when the variable is unset.

        Raises:
            ConfigurationError: If the resolved value is not one of the
                declared ``choices``.
        """
        value = explicit if explicit is not None else os.environ.get(self.name, self.default)
        if value not in self.choices:
            source = "explicit value" if explicit is not None else self.name
            raise ConfigurationError(
                f"{source} must be one of {self.choices}, got {value!r}"
            )
        return value

    def is_set(self) -> bool:
        """Whether the environment currently sets this flag at all."""
        return self.name in os.environ


def declare(name: str, *, default: str, choices: Tuple[str, ...], help: str) -> Flag:
    """Declare one ``REPRO_*`` flag and register it.

    Args:
        name: Environment-variable name; must start with ``REPRO_`` and be
            unique across the registry.
        default: Value assumed when the variable is unset (must be a choice).
        choices: Closed set of accepted values.
        help: Non-empty human documentation (DET007 enforces its presence).

    Raises:
        ConfigurationError: On a malformed or duplicate declaration.
    """
    if not name.startswith(FLAG_PREFIX):
        raise ConfigurationError(f"flag names must start with {FLAG_PREFIX!r}, got {name!r}")
    if name in REGISTRY:
        raise ConfigurationError(f"flag {name!r} is already declared")
    if default not in choices:
        raise ConfigurationError(f"default {default!r} of {name} is not among {choices}")
    if not help.strip():
        raise ConfigurationError(f"flag {name!r} needs a non-empty help string")
    flag = Flag(name=name, default=default, choices=tuple(choices), help=help)
    REGISTRY[name] = flag
    return flag


def read_flag(name: str, explicit: Optional[str] = None) -> str:
    """Read a declared flag by name (the typed accessor for dynamic callers).

    Raises:
        ConfigurationError: If ``name`` was never declared, or the value is
            not among the flag's choices.
    """
    flag = REGISTRY.get(name)
    if flag is None:
        raise ConfigurationError(
            f"unknown flag {name!r}; declared flags: {sorted(REGISTRY)}"
        )
    return flag.read(explicit)


def unknown_flags(environ: Optional[Mapping[str, str]] = None) -> List[str]:
    """``REPRO_*`` variables present in ``environ`` but declared nowhere.

    Args:
        environ: Environment mapping to inspect (default ``os.environ``).
    """
    environ = os.environ if environ is None else environ
    return sorted(
        name for name in environ if name.startswith(FLAG_PREFIX) and name not in REGISTRY
    )


def reject_unknown_flags(environ: Optional[Mapping[str, str]] = None) -> None:
    """Fail fast on typo'd ``REPRO_*`` variables.

    The experiments and lint CLIs call this on startup so a misspelled flag
    (``REPRO_DRAW=legacy``) aborts the run instead of silently running the
    default code path.

    Raises:
        ConfigurationError: Naming every unknown ``REPRO_*`` variable.
    """
    unknown = unknown_flags(environ)
    if unknown:
        raise ConfigurationError(
            f"unknown REPRO_* environment variable(s): {unknown}; "
            f"declared flags: {sorted(REGISTRY)} (see repro/flags.py)"
        )


# --------------------------------------------------------------------------- #
# Declarations — the single source of truth for every REPRO_* flag.
# --------------------------------------------------------------------------- #

DRAWS = declare(
    "REPRO_DRAWS",
    default="batched",
    choices=("batched", "legacy"),
    help=(
        "Random-draw path of the cluster substrates (database, memcached): "
        "'batched' pre-draws the per-request streams as numpy blocks consumed "
        "in the identical substream order; 'legacy' reproduces the original "
        "per-request scalar draws end-to-end.  Artifacts are byte-identical "
        "across both (CI cmps them); consumed by repro.cluster.draws."
    ),
)

CKERNELS = declare(
    "REPRO_CKERNELS",
    default="1",
    choices=("0", "1"),
    help=(
        "Whether the optional compiled C kernels (FIFO busy-period recursion, "
        "LRU ambiguous-access count) may be used: '0' forces the pinned "
        "pure-Python reference loops.  The two paths are bitwise identical; "
        "consumed by repro.cluster._ckernels.load()."
    ),
)

PIPELINE_PATH = declare(
    "REPRO_PIPELINE_PATH",
    default="auto",
    choices=("auto", "event", "fast"),
    help=(
        "Execution path of the pipeline substrate (repro.pipeline): 'event' "
        "always runs the cancellable event-driven executor; 'fast' demands "
        "the closed-form vectorised path (an error for configurations it "
        "cannot express — hedged policies, cancel-on-win or worker "
        "failures); 'auto' picks 'fast' when eligible.  The two paths are "
        "byte-identical (CI cmps them); consumed by "
        "repro.pipeline.experiment.resolve_pipeline_path."
    ),
)

CHURN_PLACEMENT = declare(
    "REPRO_CHURN_PLACEMENT",
    default="epoch",
    choices=("epoch", "scalar"),
    help=(
        "Replica-placement path of churn (membership-timeline) runs in the "
        "cluster substrates: 'epoch' computes each inter-event epoch's "
        "placements with one vectorised ring.replica_table call; 'scalar' "
        "reproduces the per-request ring.replicas_for loop.  The two paths "
        "are byte-identical (CI cmps them); consumed by "
        "repro.cluster.churn.resolve_churn_placement."
    ),
)

SIM_QUEUE = declare(
    "REPRO_SIM_QUEUE",
    default="auto",
    choices=("auto", "heap", "calendar"),
    help=(
        "Event-queue backend of simulators created without an explicit "
        "queue= argument: binary heap, calendar queue, or 'auto' (heap that "
        "migrates to calendar past a backlog threshold).  Backends are "
        "observably equivalent; consumed by repro.sim.engine.Simulator."
    ),
)
