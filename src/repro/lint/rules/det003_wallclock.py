"""DET003 — wall-clock reads must not reach canonical code paths.

Canonical artifacts are clock-free by contract: per-point wall-clock goes to
the ``.timing.jsonl`` sidecar, progress/ETA display to the terminal, and the
asyncio hedging client's measured latencies to its own (non-artifact)
result object.  Those three families of sites are the *entire* sanctioned
surface, enumerated in :data:`ALLOWLIST` with a justification each.  Any
other ``time.time()`` / ``perf_counter()`` / ``datetime.now()`` call in
``src/`` is one refactor away from leaking a timestamp into canonical bytes
— a nondeterminism bug the equivalence tests would only catch after the
fact — so it fails the lint at the call site, before it ships.

New legitimate sites either justify themselves with a per-line pragma
(``# repro: allow[DET003] <reason>``) or, for whole subsystems (a future
live serving loop), get an ALLOWLIST entry in this module, reviewed like
any other code change.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule

#: Wall-clock callables (canonical dotted names, post alias-resolution).
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Sanctioned wall-clock sites: ``(module, scope-prefix, justification)``.
#: A finding is allowlisted when its module matches and its enclosing
#: class/function qualname starts with the scope prefix (an empty prefix
#: sanctions the whole module).
ALLOWLIST: Tuple[Tuple[str, str, str], ...] = (
    (
        "repro/experiments/runner.py",
        "_execute_point",
        "per-point elapsed_s capture: popped into the timing sidecar before "
        "the record reaches the artifact or a PointResult",
    ),
    (
        "repro/experiments/cli.py",
        "_make_progress",
        "progress/ETA display on the terminal; never serialized",
    ),
    (
        "repro/experiments/cli.py",
        "cmd_profile",
        "cProfile wall-clock report printed to stdout; never serialized",
    ),
    (
        "repro/core/hedging.py",
        "hedged_call",
        "the asyncio client measures real request latency by design; "
        "HedgedResult.elapsed never enters a canonical artifact",
    ),
    (
        "repro/serve/clock.py",
        "RealClock",
        "the Clock seam's real implementation: the ONLY wall-clock surface "
        "of the live serving loop.  Everything in repro.serve reads time "
        "through an injected Clock, so canonical (virtual-clock) runs never "
        "reach this site; RealClock reports are marked clock=real and are "
        "not canonical artifacts",
    ),
)


class WallClockRule(Rule):
    """Flag wall-clock reads outside the sanctioned timing/progress/hedging sites."""

    rule_id = "DET003"
    title = "wall-clock reads are confined to sidecar/progress/hedging sites"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call, name in ctx.calls():
            if name not in WALLCLOCK_CALLS:
                continue
            qualname = ctx.qualname(call)
            allowed = any(
                ctx.module == module and (not prefix or qualname.startswith(prefix))
                for module, prefix, _why in ALLOWLIST
            )
            if allowed:
                continue
            yield self.finding(
                ctx,
                call,
                f"{name}() reads the wall clock outside the sanctioned "
                f"timing-sidecar/progress/hedging sites — route timing to the "
                f".timing.jsonl sidecar, or add a justified "
                f"'# repro: allow[DET003] ...' pragma / ALLOWLIST entry",
            )
