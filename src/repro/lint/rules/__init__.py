"""The determinism-rule registry.

Each rule is one statically-checkable clause of the repo's determinism
contract; :data:`ALL_RULES` is the single authoritative list the engine,
the CLI's ``--rules`` listing and the pragma validator all consume.  Adding
a rule means adding a module here and appending one instance — nothing else
needs to change.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.lint.pragmas import META_RULE
from repro.lint.rules.base import Rule
from repro.lint.rules.det001_seedless_rng import SeedlessRngRule
from repro.lint.rules.det002_global_rng import GlobalRngRule
from repro.lint.rules.det003_wallclock import WallClockRule
from repro.lint.rules.det004_unordered_iteration import UnorderedIterationRule
from repro.lint.rules.det005_hidden_default import HiddenDefaultRule
from repro.lint.rules.det006_json_sort_keys import JsonSortKeysRule
from repro.lint.rules.det007_flag_registry import FlagRegistryRule

#: Every active rule, in report order.
ALL_RULES: Tuple[Rule, ...] = (
    SeedlessRngRule(),
    GlobalRngRule(),
    WallClockRule(),
    UnorderedIterationRule(),
    HiddenDefaultRule(),
    JsonSortKeysRule(),
    FlagRegistryRule(),
)

#: Valid rule identifiers (for pragma validation); DET000 marks lint-usage
#: errors (malformed pragmas, unparsable files) and is intentionally NOT
#: suppressible, but baselines may carry it.
RULE_IDS: FrozenSet[str] = frozenset(rule.rule_id for rule in ALL_RULES) | {META_RULE}
