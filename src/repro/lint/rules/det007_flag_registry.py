"""DET007 — every ``REPRO_*`` flag lives in the central registry.

:mod:`repro.flags` is the single source of truth for environment flags: a
declaration there gives the flag a default, a closed value set, a docstring
and typo rejection.  This rule enforces the boundary statically:

* outside ``repro/flags.py``, no code reads ``os.environ``/``os.getenv``
  with a ``REPRO_*`` name (read the declared :class:`repro.flags.Flag`
  instead);
* inside ``repro/flags.py``, every ``declare(...)`` call uses a literal
  ``REPRO_*`` name and a non-empty literal ``help=`` string, so the
  registry stays statically enumerable (this rule, docs and future tooling
  all read it without importing anything).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule

#: The one module allowed to touch the environment for REPRO_* flags.
FLAGS_MODULE = "repro/flags.py"

#: Environment accessors taking the variable name as first argument.
_ENV_GETTERS = frozenset(
    {
        "os.getenv",
        "os.environ.get",
        "os.environ.pop",
        "os.environ.setdefault",
        "os.environ.__getitem__",
    }
)


def _env_name_argument(ctx: ModuleContext, node: ast.AST) -> Optional[ast.AST]:
    """The env-var-name node of an environment access, if ``node`` is one."""
    if isinstance(node, ast.Call):
        if ctx.dotted(node.func) in _ENV_GETTERS and node.args:
            return node.args[0]
        return None
    if isinstance(node, ast.Subscript) and ctx.dotted(node.value) == "os.environ":
        return node.slice
    return None


class FlagRegistryRule(Rule):
    """Flag REPRO_* environment reads outside the registry, and bad declarations."""

    rule_id = "DET007"
    title = "REPRO_* flags are declared once, in repro/flags.py"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module == FLAGS_MODULE:
            yield from self._check_declarations(ctx)
            return
        for node in ast.walk(ctx.tree):
            name_node = _env_name_argument(ctx, node)
            if name_node is None:
                continue
            value = ctx.string_value(name_node)
            if value is None or not value.startswith("REPRO_"):
                continue
            yield self.finding(
                ctx,
                node,
                f"environment read of {value!r} bypasses the central flag "
                f"registry — declare the flag in repro/flags.py and read it "
                f"via its Flag.read() accessor",
            )

    def _check_declarations(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call, name in ctx.calls():
            if name is None or name.rsplit(".", 1)[-1] != "declare":
                continue
            first = call.args[0] if call.args else None
            literal = isinstance(first, ast.Constant) and isinstance(first.value, str)
            if not literal or not first.value.startswith("REPRO_"):
                yield self.finding(
                    ctx,
                    call,
                    "declare(...) needs a literal 'REPRO_*' name as its first "
                    "argument so the registry stays statically enumerable",
                )
                continue
            help_kw = next(
                (kw for kw in call.keywords if kw.arg == "help"), None
            )
            help_text = None
            if help_kw is not None and isinstance(help_kw.value, ast.Constant):
                help_text = help_kw.value.value
            elif help_kw is not None and isinstance(help_kw.value, ast.JoinedStr):
                help_text = "<f-string>"
            elif help_kw is not None:
                # Implicitly concatenated string literals parse as Constant;
                # anything else (names, calls) is not statically readable.
                help_text = None
            if not (isinstance(help_text, str) and help_text.strip()):
                yield self.finding(
                    ctx,
                    call,
                    f"declaration of {first.value!r} needs a non-empty literal "
                    f"help= docstring",
                )
