"""DET001 — no seedless generator construction outside the sanctioned site.

Every guarantee the artifact pipeline makes (byte-identical sweeps at any
worker count, across shards, resume histories and fast-path flags) assumes
all randomness flows through explicitly-seeded
:class:`numpy.random.Generator` substreams.  A bare
``np.random.default_rng()`` — or an explicit ``default_rng(None)`` /
``SeedSequence()`` / ``substream(None, ...)`` — draws fresh OS entropy and
silently breaks that chain.  The only module allowed to construct from fresh
entropy is ``repro/sim/rng.py`` itself (its ``substream(None, ...)``
escape hatch for exploratory use).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule

#: The one module allowed to construct generators from fresh entropy.
SANCTIONED_MODULES = frozenset({"repro/sim/rng.py"})

#: Callables that construct randomness from their first (seed) argument.
_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "repro.sim.rng.substream",
    }
)


def _seed_argument(call: ast.Call):
    """The call's seed argument node, or ``None`` when omitted."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg in ("seed", "entropy"):
            return keyword.value
    return None


class SeedlessRngRule(Rule):
    """Flag seedless ``default_rng()`` / ``SeedSequence()`` / ``substream(None)``."""

    rule_id = "DET001"
    title = "generators must be constructed from an explicit seed"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module in SANCTIONED_MODULES:
            return
        for call, name in ctx.calls():
            if name not in _CONSTRUCTORS:
                continue
            seed = _seed_argument(call)
            seedless = seed is None or (
                isinstance(seed, ast.Constant) and seed.value is None
            )
            if seedless:
                short = name.rsplit(".", 1)[-1]
                yield self.finding(
                    ctx,
                    call,
                    f"seedless {short}() constructs a generator from fresh OS "
                    f"entropy — pass an explicit seed, accept an rng/seed "
                    f"parameter, or derive a stream via "
                    f"repro.sim.rng.substream(seed, ...)",
                )
