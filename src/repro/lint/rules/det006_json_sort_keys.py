"""DET006 — every ``json.dumps`` passes ``sort_keys=True``.

Canonical artifact bytes must not depend on dict construction order.
Python dicts preserve insertion order, so two code paths that assemble the
same mapping in different orders serialize to different bytes — the exact
failure mode the shard-merge and resume byte-identity guarantees forbid.
``sort_keys=True`` makes serialization a pure function of the mapping's
*contents*; the rule demands it on every ``json.dumps``/``json.dump`` call
in ``src/`` (a JSON writer that is genuinely display-only can carry a
``# repro: allow[DET006] ...`` pragma).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule

_DUMPERS = frozenset({"json.dumps", "json.dump"})


class JsonSortKeysRule(Rule):
    """Flag ``json.dumps``/``json.dump`` calls without ``sort_keys=True``."""

    rule_id = "DET006"
    title = "JSON serialization is order-stable (sort_keys=True)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call, name in ctx.calls():
            if name not in _DUMPERS:
                continue
            sorted_keys = any(
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in call.keywords
            )
            if sorted_keys:
                continue
            short = name.rsplit(".", 1)[-1]
            yield self.finding(
                ctx,
                call,
                f"json.{short}(...) without sort_keys=True serializes in dict "
                f"construction order — canonical bytes must be a pure function "
                f"of content; pass sort_keys=True",
            )
