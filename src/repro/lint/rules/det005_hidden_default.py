"""DET005 — public entry points that draw randomness expose ``rng``/``seed``.

A public function that constructs its own generator from nothing but
literals (``default_rng()``, ``substream(0, "x")``) hides the randomness
from its caller: the caller can neither thread the experiment's substream
through it nor pair runs via common random numbers.  Public functions and
methods doing so must accept an explicit ``rng``/``seed``-style parameter.

Two shapes pass without a parameter: private ``_helpers`` (their public
callers own the plumbing), and calls whose seed material includes any
non-literal expression — ``substream(config.seed, "arrivals")`` or
``substream(self.seed, "service")`` is caller-controlled seeding through a
config object or instance state, which is exactly the contract this rule
exists to protect.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule
from repro.lint.rules.det001_seedless_rng import SANCTIONED_MODULES

#: Parameter names that count as explicit randomness plumbing.
RNG_PARAMETER_NAMES = frozenset(
    {"rng", "rngs", "seed", "seeds", "base_seed", "streams", "generator", "random_state"}
)

#: Calls that construct generator/seed material.
_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
        "repro.sim.rng.substream",
        "repro.sim.rng.RandomStreams",
    }
)


def _parameter_names(func: ast.AST) -> List[str]:
    args = func.args
    named = args.posonlyargs + args.args + args.kwonlyargs
    return [arg.arg for arg in named]


def _statically_fixed(call: ast.Call) -> bool:
    """True when every argument is a literal constant.

    A non-literal argument (``config.seed``, ``self.seed``, a local name)
    means the seed material flows in from outside the call site, so the
    caller controls it.
    """
    values = list(call.args) + [kw.value for kw in call.keywords]
    return all(isinstance(value, ast.Constant) for value in values)


class HiddenDefaultRule(Rule):
    """Flag public functions constructing generators without rng/seed params."""

    rule_id = "DET005"
    title = "public functions that draw randomness take an rng/seed parameter"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module in SANCTIONED_MODULES:
            return
        for call, name in ctx.calls():
            if name not in _CONSTRUCTORS:
                continue
            chain = ctx.enclosing_functions(call)
            if not chain:
                continue  # module-level globals are DET001/DET002 territory
            nearest = chain[0]
            if nearest.name.startswith("_"):
                continue  # private helper: its public callers own the plumbing
            if not _statically_fixed(call):
                continue  # seed flows in from outside the call site
            plumbed = any(
                set(_parameter_names(func)) & RNG_PARAMETER_NAMES for func in chain
            )
            if plumbed:
                continue
            short = name.rsplit(".", 1)[-1]
            yield self.finding(
                ctx,
                call,
                f"public function {nearest.name!r} constructs randomness via "
                f"{short}(...) but exposes no rng/seed parameter — callers "
                f"cannot thread the experiment's substream through it; add an "
                f"explicit rng= or seed= parameter",
            )
