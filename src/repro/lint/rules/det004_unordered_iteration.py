"""DET004 — no order-sensitive iteration over sets in the artifact pipeline.

CPython salts string hashing per process, so iterating a ``set`` of strings
yields a different order in every worker — and the experiments layer is
exactly where iteration order becomes *bytes* (JSONL lines, accumulated
records, CSV rows).  Inside ``repro/experiments/``, any set expression used
where order is captured — the iterable of a ``for`` loop or comprehension,
or an order-preserving conversion such as ``list(...)``/``tuple(...)``/
``enumerate(...)``/``str.join`` — must go through ``sorted(...)`` first.
Order-insensitive consumers (``sum``, ``min``, ``max``, ``len``, ``any``,
``all``, membership tests, set algebra) are fine as they are.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule

#: Modules the rule applies to: where iteration order becomes artifact bytes.
SCOPE_PREFIX = "repro/experiments/"

#: Builtins that consume an iterable without capturing its order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset", "bool"}
)

#: Callables that capture iteration order into a sequence.
_ORDER_CAPTURING = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


def _is_set_expression(node: ast.AST, ctx: ModuleContext) -> bool:
    """Whether ``node`` statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = ctx.dotted(node.func)
        if name in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra on set expressions (union/intersection/difference).
        return _is_set_expression(node.left, ctx) or _is_set_expression(node.right, ctx)
    return False


class UnorderedIterationRule(Rule):
    """Flag order-capturing iteration over set expressions in experiments modules."""

    rule_id = "DET004"
    title = "set iteration feeding serialization must be wrapped in sorted()"

    def _offending_use(self, node: ast.AST, ctx: ModuleContext) -> Optional[str]:
        """How the set's order is captured, or ``None`` when it is not."""
        parent = ctx.parent(node)
        if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
            return "a for loop"
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            return "a comprehension"
        if isinstance(parent, ast.Call) and node in parent.args:
            name = ctx.dotted(parent.func)
            if name in _ORDER_INSENSITIVE:
                return None
            if name in _ORDER_CAPTURING:
                return f"{name}(...)"
            if name is not None and name.endswith(".join"):
                return "str.join"
            return None
        if isinstance(parent, ast.Starred):
            return "argument unpacking"
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(SCOPE_PREFIX):
            return
        for node in ast.walk(ctx.tree):
            if not _is_set_expression(node, ctx):
                continue
            # Nested set expressions (the operands of set algebra) are
            # reported via their outermost expression only.
            parent = ctx.parent(node)
            if parent is not None and _is_set_expression(parent, ctx):
                continue
            use = self._offending_use(node, ctx)
            if use is None:
                continue
            yield self.finding(
                ctx,
                node,
                f"iteration order of a set is captured by {use} in an "
                f"artifact-producing module — wrap the set in sorted(...) "
                f"(string hashes are salted per process, so set order "
                f"differs across workers)",
            )
