"""DET002 — no module-level global RNG use.

The stdlib ``random`` module and numpy's legacy ``np.random.<dist>``
functions draw from *process-global* generator state: any draw anywhere
(another library, an earlier test, a different chunk ordering in the pool)
shifts every later draw, which is exactly the cross-run coupling the
per-point substream design exists to prevent.  All randomness must come
from an explicitly-constructed :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule

#: ``numpy.random`` attributes that are NOT global-state draws: explicit
#: constructors of generators / bit generators / seed material.
_NUMPY_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


class GlobalRngRule(Rule):
    """Flag ``random.*`` calls and legacy ``np.random.<dist>`` global draws."""

    rule_id = "DET002"
    title = "randomness must come from explicit generators, not global state"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call, name in ctx.calls():
            if name is None:
                continue
            if name.startswith("random."):
                yield self.finding(
                    ctx,
                    call,
                    f"{name}() draws from the process-global stdlib RNG — "
                    f"use a seeded numpy Generator (repro.sim.rng.substream) "
                    f"instead",
                )
                continue
            parts = name.split(".")
            if (
                len(parts) == 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] not in _NUMPY_CONSTRUCTORS
            ):
                yield self.finding(
                    ctx,
                    call,
                    f"np.random.{parts[2]}() draws from numpy's process-global "
                    f"legacy RNG — draw from an explicit Generator instance "
                    f"instead",
                )
