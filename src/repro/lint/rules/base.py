"""Base class of the determinism-lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding


class Rule:
    """One statically-checkable clause of the determinism contract.

    Subclasses set :attr:`rule_id` and :attr:`title` and implement
    :meth:`check`, yielding a :class:`Finding` per violation.  Rules are
    stateless — one instance is shared across every linted module.
    """

    #: ``DET0XX`` identifier used in reports, pragmas and baselines.
    rule_id: str = ""

    #: One-line statement of the invariant the rule enforces.
    title: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``'s module."""
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        return Finding(
            module=ctx.module,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
            code=ctx.line(lineno),
        )
