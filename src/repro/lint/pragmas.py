"""Per-line suppression pragmas: ``# repro: allow[DET001] <reason>``.

A pragma suppresses findings of the named rule(s) **on its own line only**,
and must carry a non-empty reason — the reason is the audit trail that turns
"someone silenced the linter" into "someone documented why this wall-clock
read cannot leak into canonical bytes".  Multiple rules share one pragma:
``# repro: allow[DET001,DET005] exploratory sampler, results never serialized``.

Malformed pragmas (unknown rule id, missing reason, bad syntax) are
themselves reported as rule ``DET000`` findings and cannot be suppressed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.lint.findings import Finding

#: Rule id of lint-usage errors (malformed pragmas, unparsable files).
META_RULE = "DET000"

_PRAGMA_MARKER = re.compile(r"#\s*repro\s*:")
_PRAGMA = re.compile(
    r"#\s*repro\s*:\s*allow\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*)$"
)
_RULE_ID = re.compile(r"^DET\d{3}$")


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression pragma."""

    line: int
    rules: FrozenSet[str]
    reason: str


def _comment_tokens(source: str) -> Dict[int, str]:
    """Comment text by 1-based line, via the tokenizer.

    Tokenizing (rather than regex-scanning raw lines) means pragma-shaped
    text inside string literals is never mistaken for a pragma.  The source
    has already survived ``ast.parse`` by the time we are called, so
    tokenizer errors cannot normally occur; if one does we degrade to "no
    pragmas" rather than crashing the lint run.
    """
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError):
        pass
    return comments


def parse_pragmas(
    source: str, module: str, known_rules: FrozenSet[str]
) -> Tuple[Dict[int, Pragma], List[Finding]]:
    """Extract the pragmas of a module.

    Args:
        source: Source text of the module (must already parse).
        module: Normalized module path (for error findings).
        known_rules: Valid rule ids; a pragma naming anything else is an
            error (it would silently suppress nothing).

    Returns:
        ``(pragmas, errors)`` — pragmas keyed by 1-based line number, and
        :data:`META_RULE` findings for every malformed pragma.
    """
    lines: List[str] = source.splitlines()
    pragmas: Dict[int, Pragma] = {}
    errors: List[Finding] = []

    def error(lineno: int, message: str) -> None:
        errors.append(
            Finding(
                module=module,
                line=lineno,
                col=0,
                rule=META_RULE,
                message=message,
                code=lines[lineno - 1].strip(),
            )
        )

    for lineno, text in sorted(_comment_tokens(source).items()):
        if not _PRAGMA_MARKER.search(text):
            continue
        match = _PRAGMA.search(text)
        if not match:
            error(
                lineno,
                "malformed pragma: expected '# repro: allow[DET00X] <reason>'",
            )
            continue
        ids = [part.strip() for part in match.group("ids").split(",") if part.strip()]
        reason = match.group("reason").strip()
        if not ids:
            error(lineno, "pragma allows no rules: name at least one DET rule id")
            continue
        unknown = [rule for rule in ids if not _RULE_ID.match(rule) or rule not in known_rules]
        if unknown:
            error(
                lineno,
                f"pragma names unknown rule(s) {unknown}; known rules: "
                f"{sorted(known_rules)}",
            )
            continue
        if not reason:
            error(
                lineno,
                "pragma is missing its reason: every suppression must say "
                "why the finding is safe (e.g. '# repro: allow[DET003] "
                "progress display only, never serialized')",
            )
            continue
        pragmas[lineno] = Pragma(line=lineno, rules=frozenset(ids), reason=reason)
    return pragmas, errors
