"""Determinism & seed-discipline static analyzer (``python -m repro.lint``).

The repo's headline guarantee is byte-identical artifacts: same config +
same seed → the same canonical records regardless of worker count, shard
layout, resume boundaries or fast-path flags.  That guarantee only holds
under a handful of code-level disciplines — all randomness flows through
explicitly seeded generators, canonical outputs never read the wall clock,
serialization never depends on hash order, and every ``REPRO_*`` switch is
declared in the central registry.  This package checks those disciplines
statically (stdlib :mod:`ast`, no third-party dependencies) so CI catches a
regression before a sweep ever runs.

Rules are registered in :data:`repro.lint.rules.ALL_RULES`; individual
lines are silenced with a justified pragma::

    t0 = time.perf_counter()  # repro: allow[DET003] timing sidecar only

and historical findings are grandfathered via a checked-in baseline file
(see :mod:`repro.lint.baseline`).
"""

from repro.lint.api import LintResult, lint_file, lint_paths, lint_source
from repro.lint.baseline import load_baseline, save_baseline, split_by_baseline
from repro.lint.findings import Finding
from repro.lint.pragmas import META_RULE, parse_pragmas
from repro.lint.rules import ALL_RULES, RULE_IDS

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "META_RULE",
    "RULE_IDS",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_pragmas",
    "save_baseline",
    "split_by_baseline",
]
