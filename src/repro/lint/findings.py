"""The :class:`Finding` record every lint rule emits.

A finding is identified for baseline purposes by ``(module, rule, code)`` —
the *content* of the offending line rather than its line number — so a
grandfathered finding survives unrelated edits above it but is re-reported
the moment the offending line itself changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One determinism-contract violation.

    Attributes:
        module: Normalized module path (``repro/wan/loss.py``) — stable
            across checkouts and copies of the tree.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule: Rule identifier (``DET001`` ... ``DET007``, ``DET000`` for
            lint-usage errors such as malformed pragmas).
        message: Human explanation, including the remediation hint.
        code: The offending source line, stripped — the baseline fingerprint.
    """

    module: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    code: str = ""

    def key(self) -> Tuple[str, str, str]:
        """The baseline-matching key: line content, not line number."""
        return (self.module, self.rule, self.code)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "code": self.code,
        }

    def render(self) -> str:
        """The two-line text rendering used by ``--format text``."""
        location = f"{self.module}:{self.line}:{self.col}"
        text = f"{location}: {self.rule} {self.message}"
        if self.code:
            text += f"\n    {self.code}"
        return text
