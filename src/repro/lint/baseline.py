"""Baseline I/O: grandfathered findings, checked in and reviewed like code.

A baseline lets the linter gate CI from day one without requiring every
historical finding to be fixed in the same change: findings recorded in the
baseline are reported as "baselined" and do not fail the build; anything
*new* does.  Entries match on ``(module, rule, stripped-source-line)``
rather than line numbers, so unrelated edits do not invalidate them, while
touching the offending line itself resurfaces the finding.

The file is deliberately human-reviewable JSON (sorted, indented — written
with ``sort_keys=True``, of course): an entry added in a PR is visible in
the diff and must justify itself in review, which is what keeps the
baseline shrinking instead of growing.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Tuple

from repro.exceptions import ConfigurationError
from repro.lint.findings import Finding

#: Format version of the baseline file.
BASELINE_VERSION = 1

_Key = Tuple[str, str, str]  # (module, rule, code)


def save_baseline(path: str, findings: List[Finding]) -> None:
    """Write ``findings`` as a baseline file (sorted, stable bytes)."""
    entries = [
        {"module": module, "rule": rule, "code": code}
        for module, rule, code in sorted(finding.key() for finding in findings)
    ]
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro.lint",
        "entries": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_baseline(path: str) -> Counter:
    """Load a baseline into a multiset of ``(module, rule, code)`` keys.

    A missing file is an empty baseline (so ``--baseline`` can point at a
    file that does not exist yet); a malformed file is a hard error.
    """
    if not os.path.exists(path):
        return Counter()
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"baseline {path!r} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ConfigurationError(
            f"baseline {path!r} has no 'entries' list (expected the "
            f"repro.lint baseline format)"
        )
    if payload.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path!r} has version {payload.get('version')!r}; "
            f"this linter reads version {BASELINE_VERSION}"
        )
    keys: Counter = Counter()
    for entry in payload["entries"]:
        try:
            keys[(entry["module"], entry["rule"], entry["code"])] += 1
        except (TypeError, KeyError):
            raise ConfigurationError(
                f"baseline {path!r} entry {entry!r} is missing "
                f"module/rule/code"
            )
    return keys


def split_by_baseline(
    findings: List[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]]]:
    """Partition findings against a baseline multiset.

    Returns:
        ``(new, baselined, stale)`` — findings not covered by the baseline
        (these fail the build), findings the baseline grandfathers, and
        baseline entries matching nothing (fixed findings whose entries
        should be dropped via ``--update-baseline``).
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in sorted(findings):
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale = [
        {"module": module, "rule": rule, "code": code}
        for (module, rule, code), count in sorted(remaining.items())
        for _ in range(count)
        if count > 0
    ]
    return new, baselined, stale
