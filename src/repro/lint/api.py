"""The lint engine: run every rule over sources, apply pragmas.

This is the programmatic surface (`tests/test_lint.py` drives it directly);
the CLI in :mod:`repro.lint.cli` adds file collection, baseline handling
and output formatting on top.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lint.context import ModuleContext, normalize_module_path
from repro.lint.findings import Finding
from repro.lint.pragmas import META_RULE, Pragma, parse_pragmas
from repro.lint.rules import ALL_RULES, RULE_IDS


@dataclass
class LintResult:
    """Outcome of linting one or more modules.

    Attributes:
        findings: Active findings (not suppressed by a pragma), sorted.
        suppressed: ``(finding, reason)`` pairs silenced by a pragma.
        files: Number of modules linted.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, str]] = field(default_factory=list)
    files: int = 0

    def extend(self, other: "LintResult") -> None:
        """Fold another result into this one."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files += other.files

    def sort(self) -> None:
        """Deterministic report order (module, line, rule)."""
        self.findings.sort()
        self.suppressed.sort(key=lambda pair: pair[0])


def lint_source(source: str, module: str) -> LintResult:
    """Lint one module's source text.

    Args:
        source: Python source.
        module: Normalized module path (drives path-scoped rules: the
            sanctioned RNG site, the experiments/ scope, the flags module).
    """
    result = LintResult(files=1)
    try:
        ctx = ModuleContext(source, module)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                module=module,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule=META_RULE,
                message=f"file does not parse: {exc.msg}",
                code=(exc.text or "").strip(),
            )
        )
        return result

    pragmas, pragma_errors = parse_pragmas(source, module, RULE_IDS - {META_RULE})
    result.findings.extend(pragma_errors)

    for rule in ALL_RULES:
        for finding in rule.check(ctx):
            pragma: Optional[Pragma] = pragmas.get(finding.line)
            if pragma is not None and finding.rule in pragma.rules:
                result.suppressed.append((finding, pragma.reason))
            else:
                result.findings.append(finding)
    result.sort()
    return result


def lint_file(path: str, module: Optional[str] = None) -> LintResult:
    """Lint one file on disk (module identity derived from the path)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, module or normalize_module_path(path))


def collect_files(paths: List[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if not name.startswith(".") and name != "__pycache__"
            )
            files.extend(
                os.path.join(dirpath, name)
                for name in sorted(filenames)
                if name.endswith(".py")
            )
    return sorted(dict.fromkeys(files))


def lint_paths(paths: List[str]) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    result = LintResult()
    for path in collect_files(paths):
        result.extend(lint_file(path))
    result.sort()
    return result
