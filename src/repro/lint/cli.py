"""Command-line interface of the determinism linter.

::

    python -m repro.lint [paths ...]
        [--baseline lint-baseline.json] [--update-baseline]
        [--format text|json] [--rules]

Paths default to ``src/``.  Exit codes: ``0`` — clean (every finding
suppressed by pragma or grandfathered by the baseline), ``1`` — at least
one non-baselined finding, ``2`` — usage error (bad path, malformed
baseline).  ``--update-baseline`` rewrites the baseline to exactly the
current findings (dropping stale entries) and exits 0; the diff of the
baseline file is then reviewed like any other code change.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.exceptions import ReproError
from repro.flags import reject_unknown_flags
from repro.lint.api import LintResult, lint_paths
from repro.lint.baseline import load_baseline, save_baseline, split_by_baseline
from repro.lint.rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static analyzer enforcing the repo's determinism contract: "
            "seed discipline (DET001/DET002/DET005), clock-free canonical "
            "paths (DET003), order-stable serialization (DET004/DET006) and "
            "the central REPRO_* flag registry (DET007).  Lint cleanliness "
            "is part of the byte-identity guarantee CI enforces."
        ),
        epilog=(
            "examples:\n"
            "  python -m repro.lint src/ --baseline lint-baseline.json\n"
            "  python -m repro.lint src/repro/wan/ --format json\n"
            "  python -m repro.lint --rules\n"
            "suppress a single line with a justified pragma:\n"
            "  ...  # repro: allow[DET003] progress display only, never serialized\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline of grandfathered findings; findings in it do not fail "
             "the build (a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline to exactly the current findings and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="list the rules and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in ALL_RULES:
        print(f"{rule.rule_id}  {rule.title}")
        doc = (type(rule).__module__ and sys.modules[type(rule).__module__].__doc__) or ""
        summary = doc.strip().splitlines()[0] if doc.strip() else ""
        if summary:
            print(f"        {summary}")


def _report_text(
    result: LintResult, new, baselined, stale, baseline_path: Optional[str]
) -> None:
    for finding in new:
        print(finding.render())
    for entry in stale:
        print(
            f"warning: stale baseline entry (fixed? run --update-baseline): "
            f"{entry['module']}: {entry['rule']} {entry['code']!r}"
        )
    bits = [f"{len(new)} finding(s)"]
    if baselined:
        bits.append(f"{len(baselined)} baselined")
    if result.suppressed:
        bits.append(f"{len(result.suppressed)} suppressed by pragma")
    if stale:
        bits.append(f"{len(stale)} stale baseline entr(y/ies)")
    print(f"{', '.join(bits)} across {result.files} file(s)")
    if new and baseline_path is None:
        print(
            "(fix the findings, add a justified '# repro: allow[...]' pragma, "
            "or grandfather them with --baseline FILE --update-baseline)"
        )


def _report_json(result: LintResult, new, baselined, stale) -> None:
    payload = {
        "files": result.files,
        "findings": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in baselined],
        "suppressed": [
            {**finding.to_dict(), "reason": reason}
            for finding, reason in result.suppressed
        ],
        "stale_baseline_entries": stale,
    }
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.rules:
        _print_rules()
        return 0
    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline FILE")

    paths = args.paths or ["src"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"error: no such path(s): {missing}", file=sys.stderr)
        return 2

    try:
        reject_unknown_flags()
        result = lint_paths(paths)
        if args.update_baseline:
            save_baseline(args.baseline, result.findings)
            print(
                f"wrote {args.baseline}: {len(result.findings)} grandfathered "
                f"finding(s) across {result.files} file(s)"
            )
            return 0
        baseline = load_baseline(args.baseline) if args.baseline else None
        new, baselined, stale = split_by_baseline(
            result.findings, baseline if baseline is not None else {}
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        _report_json(result, new, baselined, stale)
    else:
        _report_text(result, new, baselined, stale, args.baseline)
    return 1 if new else 0
