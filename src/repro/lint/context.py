"""Per-module AST context shared by every lint rule.

One :class:`ModuleContext` is built per linted file; rules then walk the
parsed tree through it.  The context provides the three things an AST rule
constantly needs and ``ast`` does not give you:

* **Import-alias resolution** — :meth:`ModuleContext.dotted` turns the
  ``func`` of a call into a canonical dotted name (``np.random.default_rng``
  → ``numpy.random.default_rng``; ``from time import perf_counter`` makes a
  bare ``perf_counter()`` resolve to ``time.perf_counter``), so rules match
  on what is *called*, not on how the import happened to be spelled.
* **Parents and enclosing functions** — :meth:`ModuleContext.parent` and
  :meth:`ModuleContext.enclosing_functions` (innermost first), plus
  :meth:`ModuleContext.qualname` for allowlist matching.
* **Normalized module identity** — :func:`normalize_module_path` maps any
  on-disk location of a file to its package-relative path
  (``repro/wan/loss.py``), so baselines and allowlists are stable across
  checkouts, ``src/`` prefixes, and CI's copied trees.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def normalize_module_path(path: str) -> str:
    """Normalize a file path to a stable, package-relative module path.

    The last ``repro`` directory component anchors the path
    (``/tmp/copy/src/repro/wan/loss.py`` → ``repro/wan/loss.py``); failing
    that, a ``src``/``tests``/``scripts`` component does; otherwise the path
    is returned with forward slashes, as given.
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[anchor:])
    for marker in ("src", "tests", "scripts"):
        if marker in parts:
            anchor = len(parts) - 1 - parts[::-1].index(marker)
            trailing = parts[anchor + 1 :] if marker == "src" else parts[anchor:]
            if trailing:
                return "/".join(trailing)
    return "/".join(part for part in parts if part not in (".", ""))


class ModuleContext:
    """Parsed source plus the navigation maps rules need.

    Attributes:
        module: Normalized module path (see :func:`normalize_module_path`).
        source: Raw module source.
        lines: Source split into lines (1-based access via :meth:`line`).
        tree: The parsed :class:`ast.Module`.
    """

    def __init__(self, source: str, module: str) -> None:
        """Parse ``source``; raises :class:`SyntaxError` on unparsable input."""
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self._aliases: Dict[str, str] = {}
        self._parents: Dict[int, ast.AST] = {}
        self._functions: Dict[int, List[ast.AST]] = {}
        self._constants: Dict[str, str] = {}
        self._index()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _index(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import — cannot resolve statically
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self._aliases[bound] = f"{node.module}.{alias.name}"
        # Module-level string constants (NAME = "literal"), for resolving
        # env-var names passed by constant reference.
        for node in self.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self._constants[node.targets[0].id] = node.value.value

        def visit(node: ast.AST, stack: List[ast.AST]) -> None:
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
                child_stack = stack
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    child_stack = stack + [child]
                self._functions[id(child)] = child_stack
                visit(child, child_stack)

        visit(self.tree, [])

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The direct parent of ``node`` (``None`` for the module root)."""
        return self._parents.get(id(node))

    def enclosing_functions(self, node: ast.AST) -> List[ast.AST]:
        """Enclosing function defs of ``node``, innermost first."""
        return [
            scope
            for scope in reversed(self._functions.get(id(node), []))
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def qualname(self, node: ast.AST) -> str:
        """Dotted class/function scope chain containing ``node`` (may be '')."""
        return ".".join(scope.name for scope in self._functions.get(id(node), []))

    def line(self, lineno: int) -> str:
        """The stripped source line at 1-based ``lineno``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # ------------------------------------------------------------------ #
    # Name resolution
    # ------------------------------------------------------------------ #

    def dotted(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, or ``None``.

        Resolves through the module's import aliases: with ``import numpy as
        np``, ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng``; with ``from time import perf_counter``,
        the bare name ``perf_counter`` resolves to ``time.perf_counter``.
        Non-name expressions (calls, subscripts, literals) resolve to None.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self._aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def string_value(self, node: ast.AST) -> Optional[str]:
        """A literal string, or a module-level string constant's value."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self._constants.get(node.id)
        return None

    def calls(self) -> Iterator[Tuple[ast.Call, Optional[str]]]:
        """Every call in the module with its resolved dotted callee name."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node, self.dotted(node.func)
