"""Backend selection strategies: where the redundant copies go.

The paper uses three placements, all represented here:

* Section 2.1 (queueing model): ``k`` distinct servers *uniformly at random*
  (:class:`UniformRandom`).
* Section 2.2 (storage cluster): the primary replica by consistent hashing and
  the secondary on the next server (:class:`PrimarySecondary`).
* Section 3.2 (DNS): the ``k`` *best-ranked* servers by measured mean latency
  (:class:`RankedBest`).

:class:`PowerOfTwoChoices` is included as a commonly-used alternative for
ablation: instead of replicating, sample two servers and send a single copy to
the less-loaded one (requires a load probe).
"""

from __future__ import annotations

import abc
import hashlib
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def _stable_hash(key: object) -> int:
    """A process-stable 64-bit hash (Python's ``hash`` is salted per process)."""
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class SelectionStrategy(abc.ABC):
    """Chooses which of ``num_backends`` backends receive the request copies."""

    @abc.abstractmethod
    def choose(self, num_backends: int, copies: int, key: Optional[object] = None) -> List[int]:
        """Return ``copies`` distinct backend indices for one request.

        Args:
            num_backends: Total number of available backends.
            copies: Number of copies to place (``1 <= copies <= num_backends``).
            key: Optional request key (used by key-aware strategies).
        """

    def _validate(self, num_backends: int, copies: int) -> None:
        if num_backends < 1:
            raise ConfigurationError(f"num_backends must be >= 1, got {num_backends!r}")
        if not 1 <= copies <= num_backends:
            raise ConfigurationError(
                f"copies must be in [1, {num_backends}], got {copies!r}"
            )


class UniformRandom(SelectionStrategy):
    """``copies`` distinct backends chosen uniformly at random (Section 2.1)."""

    def __init__(self, seed: Optional[int] = None) -> None:
        """Create the strategy with an optional seed for reproducibility."""
        self._rng = np.random.default_rng(seed)

    def choose(self, num_backends: int, copies: int, key: Optional[object] = None) -> List[int]:
        self._validate(num_backends, copies)
        return [int(i) for i in self._rng.choice(num_backends, size=copies, replace=False)]


class RankedBest(SelectionStrategy):
    """The ``copies`` best backends according to a fixed ranking (Section 3.2).

    The DNS experiment first ranks servers by mean response time, then sends
    ``k`` copies to the top ``k`` servers of that ranking.
    """

    def __init__(self, ranking: Sequence[int]) -> None:
        """Create the strategy from a ranking (best backend first).

        Raises:
            ConfigurationError: If the ranking has duplicates.
        """
        if len(set(ranking)) != len(ranking):
            raise ConfigurationError(f"ranking contains duplicates: {ranking!r}")
        self.ranking = [int(i) for i in ranking]

    def choose(self, num_backends: int, copies: int, key: Optional[object] = None) -> List[int]:
        self._validate(num_backends, copies)
        eligible = [i for i in self.ranking if i < num_backends]
        if len(eligible) < copies:
            raise ConfigurationError(
                f"ranking only covers {len(eligible)} of {num_backends} backends; "
                f"cannot choose {copies}"
            )
        return eligible[:copies]


class PrimarySecondary(SelectionStrategy):
    """Consistent-hash placement: primary at ``hash(key) % n``, replicas on successors.

    This is the Section 2.2 storage-cluster placement: "if the primary is
    stored on server n, the (replicated) secondary goes to server n + 1".
    """

    def choose(self, num_backends: int, copies: int, key: Optional[object] = None) -> List[int]:
        self._validate(num_backends, copies)
        if key is None:
            raise ConfigurationError("PrimarySecondary needs a request key")
        primary = _stable_hash(key) % num_backends
        return [(primary + offset) % num_backends for offset in range(copies)]


class PowerOfTwoChoices(SelectionStrategy):
    """Send a *single* copy to the less-loaded of two random backends.

    Not a replication scheme but the classic load-balancing alternative; it is
    included so benchmarks can compare "redundancy" against "better placement
    of a single copy".  Requires a ``load_probe`` callable returning the
    current load of a backend index.
    """

    def __init__(self, load_probe: Callable[[int], float], seed: Optional[int] = None) -> None:
        """Create the strategy with a load probe and an optional seed."""
        self.load_probe = load_probe
        self._rng = np.random.default_rng(seed)

    def choose(self, num_backends: int, copies: int, key: Optional[object] = None) -> List[int]:
        self._validate(num_backends, copies)
        if copies != 1:
            raise ConfigurationError(
                "PowerOfTwoChoices sends a single copy; use copies=1 "
                "(it is the non-redundant baseline)"
            )
        if num_backends == 1:
            return [0]
        first, second = (
            int(i) for i in self._rng.choice(num_backends, size=2, replace=False)
        )
        return [first if self.load_probe(first) <= self.load_probe(second) else second]
