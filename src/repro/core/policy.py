"""Replication and hedging policies — the one currency for "how is this request replicated".

A policy answers one question: *for this request, how many copies should be
issued, and after what delays?*  The answer is a :class:`RequestPlan` — a
launch-delay schedule plus cancellation semantics.  ``(0.0,)`` means a single
un-replicated request, ``(0.0, 0.0)`` means the paper's eager 2-copy
replication, ``(0.0, 0.010)`` means a hedge fired after 10 ms (Dean &
Barroso's "hedged request", discussed in the paper's related work as a variant
that trades a little mean improvement for much less added load).

Policies are consumed by every executor in the repository:

* the asyncio executor (:mod:`repro.core.hedging` — ``hedged_call`` and
  :class:`~repro.core.hedging.RedundantClient`);
* all five simulator substrates — the Section 2.1 queueing model
  (:class:`repro.queueing.ReplicatedQueueingModel`), the Section 2.2/2.3
  cluster experiments (:class:`repro.cluster.DatabaseClusterExperiment`,
  :class:`repro.cluster.MemcachedExperiment`), the Section 2.4 fat-tree
  network (via :meth:`repro.network.replication.ReplicationConfig.from_policy`)
  and the Section 3 wide-area models (:class:`repro.wan.DnsExperiment`,
  :class:`repro.wan.HandshakeModel`);
* the threshold search and advisor (:mod:`repro.core.thresholds`,
  :mod:`repro.core.advisor`);
* the scenario-sweep subsystem (:mod:`repro.experiments`), where policies
  appear as **spec strings** on a ``policy`` axis.

That shared currency is what makes ablation experiments (eager vs deferred
hedging) a one-line change anywhere.

Policy specs
------------

A *policy spec* is a short, JSON/pickle-friendly string describing a policy,
so policies can live in :class:`~repro.experiments.grid.ParameterGrid` axes,
sweep artifacts and process-pool workers:

====================  =====================================================
spec                  policy
====================  =====================================================
``"none"``            :class:`NoReplication`
``"k2"``, ``"k3"``    :class:`KCopies` (eager; the paper's scheme)
``"hedge:10ms"``      :class:`HedgeAfterDelay` with a 10 ms hedge delay
``"hedge:p95"``       :class:`HedgeOnPercentile` at the 95th percentile
====================  =====================================================

Hedge specs take optional ``:``-separated suffix segments: ``x<N>`` (number
of backup copies), ``nocancel`` (do not cancel losers on win), and — for the
percentile form — ``i<delay>`` (initial delay) and ``w<N>`` (window size).
Delays are a number plus a unit (``us``, ``ms`` or ``s``; a bare number means
seconds).  :func:`parse_policy` and :func:`policy_to_spec` round-trip every
policy type; :func:`canonical_policy_spec` normalises a spec (e.g.
``"hedge:0.01s"`` → ``"hedge:10ms"``) so equal policies share one spelling.
"""

from __future__ import annotations

import abc
import heapq
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.metrics import SlidingWindow


@dataclass(frozen=True)
class RequestPlan:
    """How one request is replicated: launch schedule + cancellation semantics.

    Attributes:
        launch_delays: Delays (seconds, relative to the request) at which to
            launch copies; the first entry is always ``0.0`` (the original
            request) and the length is the total number of copies.
        cancel_on_win: Whether copies still outstanding when the first copy
            completes should be cancelled (hedged requests) or left to run to
            completion (the paper's eager scheme, where every copy is served
            fully).
    """

    launch_delays: Tuple[float, ...]
    cancel_on_win: bool = False

    @property
    def copies(self) -> int:
        """Total number of copies (including the original)."""
        return len(self.launch_delays)

    @property
    def is_eager(self) -> bool:
        """Whether every copy is launched immediately (all delays zero)."""
        return all(d == 0.0 for d in self.launch_delays)


class ReplicationPolicy(abc.ABC):
    """Decides how many copies of a request to launch and when."""

    #: Whether losing copies are cancelled once a winner completes.  Eager
    #: policies default to ``False`` (the paper's model serves every copy to
    #: completion); hedging policies default to ``True`` (Dean & Barroso's
    #: "cancel outstanding requests").
    cancel_on_win: bool = False

    #: Whether :meth:`launch_delays` is a constant — ``False`` for adaptive
    #: policies whose schedule depends on observed latencies.  Simulators use
    #: this to decide between a vectorised single plan and per-request plans.
    is_static: bool = True

    @abc.abstractmethod
    def launch_delays(self) -> List[float]:
        """Delays (seconds, relative to the request) at which to launch copies.

        The first entry is always 0.0 (the original request).  The length of
        the list is the total number of copies, including the original.
        """

    def plan(self) -> RequestPlan:
        """The per-request plan: launch schedule plus cancellation semantics.

        Adaptive policies return a fresh plan per call (the schedule tracks
        observed latencies); static policies return an equal plan every time.
        """
        return RequestPlan(tuple(self.launch_delays()), cancel_on_win=self.cancel_on_win)

    @property
    def max_copies(self) -> int:
        """Upper bound on the number of copies this policy can launch."""
        return len(self.launch_delays())

    def record_latency(self, latency: float) -> None:
        """Feed an observed request latency back into the policy.

        Adaptive policies (e.g. :class:`HedgeOnPercentile`) use this to set
        their hedge delay; static policies ignore it.
        """


class NoReplication(ReplicationPolicy):
    """The baseline: a single copy, no redundancy."""

    def launch_delays(self) -> List[float]:
        """Always ``[0.0]``."""
        return [0.0]


class KCopies(ReplicationPolicy):
    """Eager replication: launch ``k`` copies immediately (the paper's scheme)."""

    def __init__(self, copies: int = 2) -> None:
        """Create an eager policy with ``copies`` total copies (>= 1)."""
        if copies < 1 or int(copies) != copies:
            raise ConfigurationError(f"copies must be a positive integer, got {copies!r}")
        self.copies = int(copies)

    def launch_delays(self) -> List[float]:
        """``copies`` zeros: every copy is launched immediately."""
        return [0.0] * self.copies


class HedgeAfterDelay(ReplicationPolicy):
    """Deferred hedging: launch a backup copy only if the first is still pending.

    This is the classic "hedged request": the duplicate is issued after a
    fixed delay, so most requests (those that complete quickly) never incur
    the extra load.  Compared with eager :class:`KCopies` it adds far less
    utilisation but recovers less of the mean-latency benefit — the ablation
    scenarios quantify the difference.
    """

    def __init__(self, delay: float, extra_copies: int = 1, cancel_on_win: bool = True) -> None:
        """Create a deferred-hedge policy.

        Args:
            delay: Seconds to wait before launching each backup copy (>= 0).
            extra_copies: Number of backup copies (>= 1).
            cancel_on_win: Cancel outstanding copies once a winner completes
                (honoured by executors that support cancellation — the asyncio
                client and the event-driven simulators).
        """
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay!r}")
        if extra_copies < 1 or int(extra_copies) != extra_copies:
            raise ConfigurationError(
                f"extra_copies must be a positive integer, got {extra_copies!r}"
            )
        self.delay = float(delay)
        self.extra_copies = int(extra_copies)
        self.cancel_on_win = bool(cancel_on_win)

    def launch_delays(self) -> List[float]:
        """``[0, delay, 2*delay, ...]`` — backups are staggered."""
        return [0.0] + [self.delay * (i + 1) for i in range(self.extra_copies)]


class HedgeOnPercentile(ReplicationPolicy):
    """Adaptive hedging: the backup fires at an observed latency percentile.

    The hedge delay tracks the ``percentile``-th percentile of recently
    observed latencies (e.g. fire the backup once the request has been
    outstanding longer than 95% of requests normally take).  Until enough
    latencies have been observed, the policy falls back to
    ``initial_delay``.
    """

    is_static = False

    def __init__(
        self,
        percentile: float = 95.0,
        initial_delay: float = 0.05,
        window: int = 1000,
        extra_copies: int = 1,
        cancel_on_win: bool = True,
    ) -> None:
        """Create an adaptive hedge policy.

        Args:
            percentile: Latency percentile (0-100, exclusive of the ends) at
                which the backup fires.
            initial_delay: Hedge delay used before any latencies are recorded.
            window: Number of most recent latencies to keep.
            extra_copies: Number of backup copies.
            cancel_on_win: Cancel outstanding copies once a winner completes.
        """
        if not 0.0 < percentile < 100.0:
            raise ConfigurationError(f"percentile must be in (0, 100), got {percentile!r}")
        if initial_delay < 0:
            raise ConfigurationError(f"initial_delay must be >= 0, got {initial_delay!r}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window!r}")
        if extra_copies < 1:
            raise ConfigurationError(f"extra_copies must be >= 1, got {extra_copies!r}")
        self.percentile = float(percentile)
        self.initial_delay = float(initial_delay)
        self.window = int(window)
        self.extra_copies = int(extra_copies)
        self.cancel_on_win = bool(cancel_on_win)
        # Incrementally sorted window: percentile queries on the hot path
        # (one per request issued) are O(1) instead of an O(n log n) re-sort.
        self._window = SlidingWindow(self.window)

    @property
    def _latencies(self) -> List[float]:
        """The retained window in arrival order (kept for introspection)."""
        return self._window.values()

    def record_latency(self, latency: float) -> None:
        """Add an observed latency (seconds) to the sliding window."""
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency!r}")
        self._window.record(float(latency))

    def current_delay(self) -> float:
        """The hedge delay that would be used for the next request.

        The percentile uses linear interpolation between order statistics
        (numpy's convention, shared by every summary in this repository); the
        pre-metrics implementation selected the nearest sample at or above
        the rank, so small windows can yield slightly smaller delays than
        before.
        """
        if len(self._window) < 10:
            return self.initial_delay
        return self._window.percentile(self.percentile)

    def launch_delays(self) -> List[float]:
        """``[0, d, 2d, ...]`` where ``d`` is the current percentile delay."""
        delay = self.current_delay()
        return [0.0] + [delay * (i + 1) for i in range(self.extra_copies)]


# --------------------------------------------------------------------------- #
# Policy specs: the serialisable mini-language
# --------------------------------------------------------------------------- #

#: What substrates accept wherever "a policy" is expected: a policy object, a
#: spec string, or an integer copy count (sugar for :class:`KCopies`).
PolicyLike = Union[ReplicationPolicy, str, int]

_DELAY_RE = re.compile(r"^([0-9eE+.\-]+)(us|ms|s)?$")
_DELAY_SCALES = {"us": 1e-6, "ms": 1e-3, "s": 1.0, None: 1.0}


def _parse_delay(text: str, spec: str) -> float:
    """Parse ``"10ms"`` / ``"0.5s"`` / ``"250us"`` / ``"0.01"`` into seconds."""
    match = _DELAY_RE.match(text)
    value: Optional[float] = None
    if match:
        try:
            value = float(match.group(1)) * _DELAY_SCALES[match.group(2)]
        except ValueError:
            value = None
    if value is None or value < 0:
        raise ConfigurationError(
            f"bad delay {text!r} in policy spec {spec!r}; expected a non-negative "
            "number with an optional unit (us, ms, s), e.g. '10ms'"
        )
    return value


def _format_delay(seconds: float) -> str:
    """Render a delay in the largest unit that round-trips exactly."""
    if seconds >= 1.0 or seconds == 0.0:
        unit, scale = "s", 1.0
    elif seconds >= 1e-3:
        unit, scale = "ms", 1e-3
    else:
        unit, scale = "us", 1e-6
    text = f"{seconds / scale:.12g}"
    if float(text) * scale == seconds:
        return f"{text}{unit}"
    return f"{seconds!r}s"


def _parse_int(text: str, spec: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(f"bad {what} {text!r} in policy spec {spec!r}") from None


def _parse_hedge(spec: str, body: List[str]) -> ReplicationPolicy:
    """Parse the segments after ``hedge:`` into a hedge policy."""
    if not body or not body[0]:
        raise ConfigurationError(
            f"policy spec {spec!r} needs a hedge trigger: a delay ('hedge:10ms') "
            "or a percentile ('hedge:p95')"
        )
    head, extras = body[0], body[1:]
    extra_copies = 1
    cancel_on_win = True
    initial_delay: Optional[float] = None
    window: Optional[int] = None
    for segment in extras:
        if segment == "nocancel":
            cancel_on_win = False
        elif segment.startswith("x"):
            extra_copies = _parse_int(segment[1:], spec, "extra-copies count")
        elif segment.startswith("i"):
            initial_delay = _parse_delay(segment[1:], spec)
        elif segment.startswith("w"):
            window = _parse_int(segment[1:], spec, "window size")
        else:
            raise ConfigurationError(
                f"unknown segment {segment!r} in policy spec {spec!r}; known "
                "segments: x<N> (extra copies), nocancel, i<delay>, w<N>"
            )
    if head.startswith("p"):
        try:
            percentile = float(head[1:])
        except ValueError:
            raise ConfigurationError(
                f"bad percentile {head!r} in policy spec {spec!r}"
            ) from None
        kwargs = {}
        if initial_delay is not None:
            kwargs["initial_delay"] = initial_delay
        if window is not None:
            kwargs["window"] = window
        return HedgeOnPercentile(
            percentile, extra_copies=extra_copies, cancel_on_win=cancel_on_win, **kwargs
        )
    if initial_delay is not None or window is not None:
        raise ConfigurationError(
            f"policy spec {spec!r}: i<delay>/w<N> segments apply only to the "
            "percentile form ('hedge:p95:...')"
        )
    return HedgeAfterDelay(
        _parse_delay(head, spec), extra_copies=extra_copies, cancel_on_win=cancel_on_win
    )


def parse_policy(spec: PolicyLike) -> ReplicationPolicy:
    """Turn a policy spec (or policy, or copy count) into a :class:`ReplicationPolicy`.

    Accepts a :class:`ReplicationPolicy` (returned unchanged), an integer copy
    count (sugar for :class:`KCopies`), or a spec string — see the module
    docstring for the grammar.

    Raises:
        ConfigurationError: On a malformed spec or an unsupported type.
    """
    if isinstance(spec, ReplicationPolicy):
        return spec
    if isinstance(spec, bool):
        raise ConfigurationError(f"cannot interpret {spec!r} as a replication policy")
    if isinstance(spec, int):
        return NoReplication() if spec == 1 else KCopies(spec)
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"expected a ReplicationPolicy, spec string or copy count, got {spec!r}"
        )
    text = spec.strip().lower()
    if text == "none":
        return NoReplication()
    if re.fullmatch(r"k\d+", text):
        copies = int(text[1:])
        return NoReplication() if copies == 1 else KCopies(copies)
    if text.startswith("hedge:"):
        return _parse_hedge(spec, text[len("hedge:"):].split(":"))
    raise ConfigurationError(
        f"unknown policy spec {spec!r}; expected 'none', 'k<N>' (e.g. 'k2'), "
        "'hedge:<delay>' (e.g. 'hedge:10ms') or 'hedge:p<P>' (e.g. 'hedge:p95')"
    )


def policy_to_spec(policy: ReplicationPolicy) -> str:
    """The canonical spec string of ``policy`` (inverse of :func:`parse_policy`).

    Only non-default segments are emitted, so the output is the shortest spec
    that reconstructs the policy.

    Raises:
        ConfigurationError: For policy types the spec language cannot express
            (custom subclasses included — a subclass may change behaviour the
            spec could not reconstruct).
    """
    if type(policy) is HedgeOnPercentile:
        parts = [f"hedge:p{policy.percentile:.12g}"]
        if policy.initial_delay != 0.05:
            parts.append(f"i{_format_delay(policy.initial_delay)}")
        if policy.window != 1000:
            parts.append(f"w{policy.window}")
        if policy.extra_copies != 1:
            parts.append(f"x{policy.extra_copies}")
        if not policy.cancel_on_win:
            parts.append("nocancel")
        return ":".join(parts)
    if type(policy) is HedgeAfterDelay:
        parts = [f"hedge:{_format_delay(policy.delay)}"]
        if policy.extra_copies != 1:
            parts.append(f"x{policy.extra_copies}")
        if not policy.cancel_on_win:
            parts.append("nocancel")
        return ":".join(parts)
    if type(policy) is KCopies:
        return f"k{policy.copies}"
    if type(policy) is NoReplication:
        return "none"
    raise ConfigurationError(
        f"policy {type(policy).__name__} has no spec representation; "
        "pass the policy object directly instead of a spec"
    )


def canonical_policy_spec(spec: PolicyLike) -> str:
    """Normalise a spec so equal policies share one spelling (``'hedge:0.01s'`` → ``'hedge:10ms'``)."""
    return policy_to_spec(parse_policy(spec))


def eager_copies(policy: ReplicationPolicy) -> Optional[int]:
    """``k`` if ``policy`` is exactly the legacy eager ``copies=k`` scheme, else ``None``.

    Simulators use this to route eager policies through their original
    vectorised implementations, which keeps ``policy="k2"`` byte-identical to
    the historical ``copies=2`` code path.  A policy qualifies when its plan
    is static, launches every copy immediately and never cancels.
    """
    if not policy.is_static:
        return None
    plan = policy.plan()
    if plan.is_eager and not plan.cancel_on_win:
        return plan.copies
    return None


def resolve_policy(
    policy: Optional[PolicyLike] = None,
    copies: Optional[int] = None,
    default_copies: int = 2,
) -> ReplicationPolicy:
    """Resolve the ``policy=`` / ``copies=`` pair every substrate accepts.

    Exactly one of ``policy`` and ``copies`` may be given; ``copies=k`` is
    sugar for :class:`KCopies` (``k=1`` for :class:`NoReplication`), and when
    neither is given the substrate's ``default_copies`` applies.

    Raises:
        ConfigurationError: If both are given, or either is invalid.
    """
    if policy is not None and copies is not None:
        raise ConfigurationError(
            "pass either policy= or copies=, not both (copies=k is sugar for "
            "the eager 'k<N>' policy)"
        )
    if policy is not None:
        return parse_policy(policy)
    k = default_copies if copies is None else copies
    if k != int(k):
        raise ConfigurationError(f"copies must be a positive integer, got {copies!r}")
    k = int(k)
    return NoReplication() if k == 1 else KCopies(k)


def resolve_run_policy(
    policy: Optional[PolicyLike],
    copies: Optional[int],
    default_copies: int,
) -> Tuple[Optional[ReplicationPolicy], int]:
    """Resolve a substrate ``run()``'s ``(policy=, copies=)`` pair.

    The shared front door of every simulator's run method.  Returns
    ``(hedged, k)``: ``hedged`` is ``None`` when the run should take the
    substrate's legacy eager path with ``k`` copies — because ``copies=`` was
    used (or defaulted), or because the policy is exactly the eager scheme
    (:func:`eager_copies`), keeping ``policy="k2"`` byte-identical to
    ``copies=2``.  Otherwise ``hedged`` is the parsed policy and ``k`` its
    maximum copy count.

    Raises:
        ConfigurationError: If both ``policy`` and ``copies`` are given, or
            the spec is malformed.
    """
    if policy is not None:
        if copies is not None:
            raise ConfigurationError("pass either policy= or copies=, not both")
        hedged = parse_policy(policy)
        eager = eager_copies(hedged)
        if eager is not None:
            return None, eager
        return hedged, int(hedged.max_copies)
    return None, int(default_copies if copies is None else copies)


def run_policy_spec(hedged: Optional[ReplicationPolicy], k: int) -> Optional[str]:
    """The canonical spec of a :func:`resolve_run_policy` result, for reporting.

    ``None`` only for policy objects the spec language cannot express.
    """
    if hedged is None:
        return "none" if k == 1 else f"k{k}"
    try:
        return policy_to_spec(hedged)
    except ConfigurationError:
        return None


class PolicyDriver:
    """Sequential-arrival harness around a policy for simulator loops.

    Simulators that process requests in arrival order use this to (a) hand
    each request its :class:`RequestPlan` and (b) deliver latency feedback to
    adaptive policies *in completion-time order*, not in the order the
    simulator happens to resolve requests.  Completions are parked in a heap
    and released to :meth:`ReplicationPolicy.record_latency` only once the
    simulation clock (the next request's arrival) has passed them — so a
    policy never sees the future, and results are deterministic for any
    execution order.
    """

    def __init__(self, policy: ReplicationPolicy) -> None:
        """Wrap ``policy`` (shared, not copied — state carries across requests)."""
        self.policy = policy
        self._pending: List[Tuple[float, int, float]] = []
        self._seq = 0

    def plan_for(self, now: float) -> RequestPlan:
        """The plan for a request arriving at ``now`` (releases due feedback first)."""
        while self._pending and self._pending[0][0] <= now:
            _, _, latency = heapq.heappop(self._pending)
            self.policy.record_latency(latency)
        return self.policy.plan()

    def complete(self, completion_time: float, latency: float) -> None:
        """Park one request's observed ``latency``, visible after ``completion_time``."""
        heapq.heappush(self._pending, (float(completion_time), self._seq, float(latency)))
        self._seq += 1

    def flush(self) -> None:
        """Release all parked feedback (end of a run)."""
        while self._pending:
            _, _, latency = heapq.heappop(self._pending)
            self.policy.record_latency(latency)


def simulate_hedged_arrivals(
    policy: ReplicationPolicy,
    arrival_times,
    max_copies: int,
    launch,
):
    """Drive a FIFO substrate through ``policy``, one plan per arriving request.

    The shared core of every simulator's non-eager ("hedged") path: requests
    arrive in order; each backup copy's dispatch is deferred by the policy's
    launch delay and **suppressed** when the request already completed before
    the delay expired.  It exploits the FIFO property every substrate here
    shares — a copy's completion time is known the moment it is dispatched —
    so suppression is decided exactly, with arrivals and pending backup
    launches merged in global time order.  Launched copies are never
    cancelled (that is the event-driven engines' job); latency feedback for
    adaptive policies is released via :class:`PolicyDriver` once a request's
    plan is fully resolved.

    Args:
        policy: The replication policy (shared state across requests).
        arrival_times: 1-D array of request arrival times, non-decreasing.
        max_copies: Cap on copies per request (e.g. how many distinct servers
            were drawn); plans are truncated to this many entries.
        launch: ``launch(request_index, copy_index, at) -> finish_time`` —
            dispatch one copy to the substrate at time ``at`` and return its
            absolute completion time.

    Returns:
        ``(finish_at, copies_launched)`` — per-request earliest absolute
        completion times and dispatched-copy counts.
    """
    num_requests = len(arrival_times)
    driver = PolicyDriver(policy)
    finish_at = np.full(num_requests, np.inf)
    launched = np.zeros(num_requests, dtype=np.int64)
    outstanding = np.zeros(num_requests, dtype=np.int64)
    backups: List[Tuple[float, int, int, int]] = []  # (time, seq, request, copy)
    seq = 0

    def launch_copy(request: int, copy: int, at: float) -> None:
        finish = launch(request, copy, at)
        launched[request] += 1
        if finish < finish_at[request]:
            finish_at[request] = finish

    next_request = 0
    while next_request < num_requests or backups:
        if backups and (
            next_request >= num_requests
            or backups[0][0] <= arrival_times[next_request]
        ):
            at, _, request, copy = heapq.heappop(backups)
            outstanding[request] -= 1
            if finish_at[request] > at:  # still pending: the hedge fires
                launch_copy(request, copy, at)
            if outstanding[request] == 0:
                arrival = arrival_times[request]
                driver.complete(finish_at[request], finish_at[request] - arrival)
            continue
        arrival = arrival_times[next_request]
        plan = driver.plan_for(arrival)
        delays = plan.launch_delays[:max_copies]
        launch_copy(next_request, 0, arrival)
        for copy, delay in enumerate(delays[1:], start=1):
            heapq.heappush(backups, (arrival + delay, seq, next_request, copy))
            seq += 1
            outstanding[next_request] += 1
        if outstanding[next_request] == 0:
            driver.complete(finish_at[next_request], finish_at[next_request] - arrival)
        next_request += 1

    return finish_at, launched
