"""Replication and hedging policies.

A policy answers one question: *for this request, how many copies should be
issued, and after what delays?*  The answer is a list of launch delays in
seconds — ``[0.0]`` means a single un-replicated request, ``[0.0, 0.0]`` means
the paper's eager 2-copy replication, ``[0.0, 0.010]`` means a hedge fired
after 10 ms (Dean & Barroso's "hedged request", discussed in the paper's
related work as a variant that trades a little mean improvement for much less
added load).

Policies are shared between the asyncio executor (:mod:`repro.core.hedging`)
and the simulators, which is what makes ablation experiments (eager vs
deferred hedging) a one-line change.
"""

from __future__ import annotations

import abc
from typing import List

from repro.exceptions import ConfigurationError
from repro.metrics import SlidingWindow


class ReplicationPolicy(abc.ABC):
    """Decides how many copies of a request to launch and when."""

    @abc.abstractmethod
    def launch_delays(self) -> List[float]:
        """Delays (seconds, relative to the request) at which to launch copies.

        The first entry is always 0.0 (the original request).  The length of
        the list is the total number of copies, including the original.
        """

    @property
    def max_copies(self) -> int:
        """Upper bound on the number of copies this policy can launch."""
        return len(self.launch_delays())

    def record_latency(self, latency: float) -> None:
        """Feed an observed request latency back into the policy.

        Adaptive policies (e.g. :class:`HedgeOnPercentile`) use this to set
        their hedge delay; static policies ignore it.
        """


class NoReplication(ReplicationPolicy):
    """The baseline: a single copy, no redundancy."""

    def launch_delays(self) -> List[float]:
        """Always ``[0.0]``."""
        return [0.0]


class KCopies(ReplicationPolicy):
    """Eager replication: launch ``k`` copies immediately (the paper's scheme)."""

    def __init__(self, copies: int = 2) -> None:
        """Create an eager policy with ``copies`` total copies (>= 1)."""
        if copies < 1 or int(copies) != copies:
            raise ConfigurationError(f"copies must be a positive integer, got {copies!r}")
        self.copies = int(copies)

    def launch_delays(self) -> List[float]:
        """``copies`` zeros: every copy is launched immediately."""
        return [0.0] * self.copies


class HedgeAfterDelay(ReplicationPolicy):
    """Deferred hedging: launch a backup copy only if the first is still pending.

    This is the classic "hedged request": the duplicate is issued after a
    fixed delay, so most requests (those that complete quickly) never incur
    the extra load.  Compared with eager :class:`KCopies` it adds far less
    utilisation but recovers less of the mean-latency benefit — the ablation
    benchmark quantifies the difference.
    """

    def __init__(self, delay: float, extra_copies: int = 1) -> None:
        """Create a deferred-hedge policy.

        Args:
            delay: Seconds to wait before launching each backup copy (>= 0).
            extra_copies: Number of backup copies (>= 1).
        """
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay!r}")
        if extra_copies < 1 or int(extra_copies) != extra_copies:
            raise ConfigurationError(
                f"extra_copies must be a positive integer, got {extra_copies!r}"
            )
        self.delay = float(delay)
        self.extra_copies = int(extra_copies)

    def launch_delays(self) -> List[float]:
        """``[0, delay, 2*delay, ...]`` — backups are staggered."""
        return [0.0] + [self.delay * (i + 1) for i in range(self.extra_copies)]


class HedgeOnPercentile(ReplicationPolicy):
    """Adaptive hedging: the backup fires at an observed latency percentile.

    The hedge delay tracks the ``percentile``-th percentile of recently
    observed latencies (e.g. fire the backup once the request has been
    outstanding longer than 95% of requests normally take).  Until enough
    latencies have been observed, the policy falls back to
    ``initial_delay``.
    """

    def __init__(
        self,
        percentile: float = 95.0,
        initial_delay: float = 0.05,
        window: int = 1000,
        extra_copies: int = 1,
    ) -> None:
        """Create an adaptive hedge policy.

        Args:
            percentile: Latency percentile (0-100, exclusive of the ends) at
                which the backup fires.
            initial_delay: Hedge delay used before any latencies are recorded.
            window: Number of most recent latencies to keep.
            extra_copies: Number of backup copies.
        """
        if not 0.0 < percentile < 100.0:
            raise ConfigurationError(f"percentile must be in (0, 100), got {percentile!r}")
        if initial_delay < 0:
            raise ConfigurationError(f"initial_delay must be >= 0, got {initial_delay!r}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window!r}")
        if extra_copies < 1:
            raise ConfigurationError(f"extra_copies must be >= 1, got {extra_copies!r}")
        self.percentile = float(percentile)
        self.initial_delay = float(initial_delay)
        self.window = int(window)
        self.extra_copies = int(extra_copies)
        # Incrementally sorted window: percentile queries on the hot path
        # (one per request issued) are O(1) instead of an O(n log n) re-sort.
        self._window = SlidingWindow(self.window)

    @property
    def _latencies(self) -> List[float]:
        """The retained window in arrival order (kept for introspection)."""
        return self._window.values()

    def record_latency(self, latency: float) -> None:
        """Add an observed latency (seconds) to the sliding window."""
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency!r}")
        self._window.record(float(latency))

    def current_delay(self) -> float:
        """The hedge delay that would be used for the next request.

        The percentile uses linear interpolation between order statistics
        (numpy's convention, shared by every summary in this repository); the
        pre-metrics implementation selected the nearest sample at or above
        the rank, so small windows can yield slightly smaller delays than
        before.
        """
        if len(self._window) < 10:
            return self.initial_delay
        return self._window.percentile(self.percentile)

    def launch_delays(self) -> List[float]:
        """``[0, d, 2d, ...]`` where ``d`` is the current percentile delay."""
        delay = self.current_delay()
        return [0.0] + [delay * (i + 1) for i in range(self.extra_copies)]
