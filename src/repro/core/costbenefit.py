"""Cost-benefit analysis of redundancy (Section 3's 16 ms/KB benchmark).

When resources are elastic (wide-area bandwidth, cloud billing) rather than a
fixed pool, replication is worthwhile when the latency it saves is worth more
than the extra traffic it sends.  The paper adopts the benchmark of Vulimiri
et al.'s companion study: redundancy pays off when it saves at least
**16 milliseconds of latency per kilobyte of extra traffic**.

This module packages that comparison: absolute savings
(:class:`CostBenefitAnalysis`), and the marginal analysis of Figure 17 (is the
*next* copy still worth it?) via :func:`marginal_cost_benefit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import ConfigurationError

#: The paper's break-even point: replication is cost-effective when it saves at
#: least this many milliseconds of latency per KB of added traffic.
DEFAULT_BREAK_EVEN_MS_PER_KB: float = 16.0


@dataclass(frozen=True)
class CostBenefitAnalysis:
    """Latency savings versus added traffic for one replication decision.

    Attributes:
        latency_saved_ms: Latency saved per operation, in milliseconds (mean or
            a tail percentile, depending on what the caller cares about).
        extra_bytes: Extra traffic added per operation, in bytes.
        break_even_ms_per_kb: The threshold the savings are compared against
            (defaults to the paper's 16 ms/KB).
    """

    latency_saved_ms: float
    extra_bytes: float
    break_even_ms_per_kb: float = DEFAULT_BREAK_EVEN_MS_PER_KB

    def __post_init__(self) -> None:
        if self.extra_bytes <= 0:
            raise ConfigurationError(
                f"extra_bytes must be positive, got {self.extra_bytes!r}"
            )
        if self.break_even_ms_per_kb <= 0:
            raise ConfigurationError(
                f"break_even_ms_per_kb must be positive, got {self.break_even_ms_per_kb!r}"
            )

    @property
    def savings_ms_per_kb(self) -> float:
        """Latency saved per kilobyte of extra traffic (the paper's unit)."""
        return self.latency_saved_ms / (self.extra_bytes / 1000.0)

    @property
    def worthwhile(self) -> bool:
        """Whether the savings exceed the break-even threshold."""
        return self.savings_ms_per_kb > self.break_even_ms_per_kb

    @property
    def margin_factor(self) -> float:
        """How many times the break-even threshold the savings represent.

        The paper reports e.g. "more than an order of magnitude larger than
        this threshold"; this property is that factor.
        """
        return self.savings_ms_per_kb / self.break_even_ms_per_kb


def marginal_cost_benefit(
    latencies_ms_by_copies: Sequence[float],
    bytes_per_copy: float,
    break_even_ms_per_kb: float = DEFAULT_BREAK_EVEN_MS_PER_KB,
) -> List[CostBenefitAnalysis]:
    """Marginal analysis: is each *additional* copy worth its extra traffic?

    This is Figure 17's computation: given the achieved latency (mean or a
    percentile) as a function of the number of copies, compute the incremental
    latency saving of going from ``k`` to ``k+1`` copies and compare it with
    the traffic cost of that one extra copy.

    Args:
        latencies_ms_by_copies: ``latencies_ms_by_copies[i]`` is the latency
            achieved with ``i + 1`` copies (so the first entry is the
            unreplicated baseline).  At least two entries.
        bytes_per_copy: Extra bytes added by each additional copy (query +
            response size; the paper's DNS analysis uses ≈500 bytes).
        break_even_ms_per_kb: The break-even threshold.

    Returns:
        One :class:`CostBenefitAnalysis` per increment; entry ``i`` describes
        going from ``i + 1`` to ``i + 2`` copies.  Negative marginal savings
        are preserved (they simply yield ``worthwhile == False``).

    Raises:
        ConfigurationError: If fewer than two latencies are given.
    """
    if len(latencies_ms_by_copies) < 2:
        raise ConfigurationError("need latencies for at least 1 and 2 copies")
    analyses: List[CostBenefitAnalysis] = []
    for i in range(len(latencies_ms_by_copies) - 1):
        saved = float(latencies_ms_by_copies[i]) - float(latencies_ms_by_copies[i + 1])
        analyses.append(
            CostBenefitAnalysis(
                latency_saved_ms=saved,
                extra_bytes=bytes_per_copy,
                break_even_ms_per_kb=break_even_ms_per_kb,
            )
        )
    return analyses
