"""Asyncio execution of redundant requests.

"Initiate an operation multiple times, using as diverse resources as possible,
and use the first result which completes" — this module is that sentence as
code.  Copies are launched according to a :class:`~repro.core.policy.ReplicationPolicy`
(eagerly, or hedged after a delay), the first successful completion wins, and
the losing copies are cancelled.

This is the *live* (asyncio) executor of the shared policy currency; the same
policies drive every simulator substrate and the scenario-sweep ``policy``
axis — see the :mod:`repro.core.policy` module docstring for the full list of
consumers.  One executor-specific caveat: here loser cancellation is
controlled by the ``cancel_losers`` argument (default on, Google-style)
rather than by the policy's ``cancel_on_win`` flag, which the event-driven
simulators honour.

The functions are transport-agnostic: a "backend" is any zero-argument
callable returning an awaitable, so the same client wraps DNS lookups, HTTP
fetches, database reads or anything else.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Generic, List, Optional, Sequence, TypeVar

from repro.core.policy import KCopies, ReplicationPolicy
from repro.core.selection import SelectionStrategy, UniformRandom
from repro.exceptions import ConfigurationError
from repro.metrics import MetricsRegistry, SlidingWindow

T = TypeVar("T")

RequestFactory = Callable[[], Awaitable[T]]


@dataclass
class HedgedResult(Generic[T]):
    """Outcome of a hedged call.

    Attributes:
        value: The value returned by the winning copy.
        winner: Index (into the launched copies) of the copy that won.
        copies_launched: How many backend calls were actually started.  A
            hedge whose task was cancelled while still waiting out its delay —
            even if, by the time the winner was timed, that delay had
            numerically expired — is not counted: only copies that reached
            their backend call are.  With ``cancel_losers=False`` the count is
            taken when the winner completes, so a straggler hedge that fires
            its backend call later is not included.
        elapsed: Wall-clock seconds from the first launch to the winning
            completion.
        errors: Exceptions raised by copies that failed before the winner
            completed (empty when everything succeeded).
        copies_cancelled: How many started copies were cancelled after their
            backend call began (the cost Google's "cancel outstanding
            requests" machinery pays).
    """

    value: T
    winner: int
    copies_launched: int
    elapsed: float
    errors: List[BaseException]
    copies_cancelled: int = 0


async def first_completed(
    awaitables: Sequence[Awaitable[T]],
    cancel_losers: bool = True,
) -> T:
    """Return the result of the first awaitable to complete successfully.

    Failed copies are tolerated as long as at least one succeeds; if every
    copy fails, the exception of the last failure is raised.

    Args:
        awaitables: Non-empty sequence of awaitables to race.
        cancel_losers: Cancel the still-pending copies once a winner is found
            (the redundant-operation analogue of the paper's note that Google
            cancels outstanding partially-completed requests).

    Raises:
        ConfigurationError: If ``awaitables`` is empty.
        BaseException: The last copy's exception if all copies fail.
    """
    if not awaitables:
        raise ConfigurationError("first_completed needs at least one awaitable")
    tasks = [asyncio.ensure_future(a) for a in awaitables]
    pending = set(tasks)
    last_error: Optional[BaseException] = None
    try:
        while pending:
            done, pending = await asyncio.wait(pending, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                if task.cancelled():
                    continue
                error = task.exception()
                if error is None:
                    return task.result()
                last_error = error
        assert last_error is not None
        raise last_error
    finally:
        if cancel_losers:
            for task in tasks:
                if not task.done():
                    task.cancel()
            # Give cancelled tasks a chance to unwind so no "Task exception was
            # never retrieved" warnings leak out of the library.
            await asyncio.gather(*tasks, return_exceptions=True)


async def hedged_call(
    factories: Sequence[RequestFactory[T]],
    policy: Optional[ReplicationPolicy] = None,
    cancel_losers: bool = True,
) -> HedgedResult[T]:
    """Run redundant copies of an operation according to ``policy``.

    Args:
        factories: One zero-argument coroutine factory per *potential* copy;
            ``factories[i]`` is used for the ``i``-th launched copy.  Provide
            as many factories as the policy's ``max_copies`` (extra factories
            are ignored; too few is an error).
        policy: The replication policy; defaults to eager 2-copy replication
            (:class:`~repro.core.policy.KCopies` with ``copies=2``), the
            paper's canonical scheme.
        cancel_losers: Cancel outstanding copies once a winner completes.

    Returns:
        A :class:`HedgedResult` describing the winner.

    Raises:
        ConfigurationError: If there are fewer factories than copies.
        BaseException: If every launched copy fails, the last failure.
    """
    if policy is None:
        policy = KCopies(2)
    delays = policy.launch_delays()
    if len(factories) < len(delays):
        raise ConfigurationError(
            f"policy wants up to {len(delays)} copies but only "
            f"{len(factories)} request factories were provided"
        )

    start = time.perf_counter()
    errors: List[BaseException] = []
    launched: List[asyncio.Task] = []
    started: List[int] = []
    winner_index: Optional[int] = None
    winner_value: Optional[T] = None

    async def launch(index: int, delay: float) -> tuple[int, T]:
        if delay > 0:
            await asyncio.sleep(delay)
        # Only copies that get past their hedge delay reach the backend; the
        # append is what copies_launched counts, so a task cancelled during
        # its sleep is never mistaken for a launched copy.
        started.append(index)
        value = await factories[index]()
        return index, value

    tasks = [asyncio.ensure_future(launch(i, d)) for i, d in enumerate(delays)]
    launched.extend(tasks)
    pending = set(tasks)
    try:
        while pending and winner_index is None:
            done, pending = await asyncio.wait(pending, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                if task.cancelled():
                    continue
                error = task.exception()
                if error is not None:
                    errors.append(error)
                    continue
                winner_index, winner_value = task.result()
                break
        if winner_index is None:
            raise errors[-1]
    finally:
        if cancel_losers:
            for task in launched:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*launched, return_exceptions=True)

    elapsed = time.perf_counter() - start
    started_set = set(started)
    copies_cancelled = sum(
        1 for i, task in enumerate(launched) if task.cancelled() and i in started_set
    )
    policy.record_latency(elapsed)
    return HedgedResult(
        value=winner_value,  # type: ignore[arg-type]
        winner=winner_index,
        copies_launched=len(started_set),
        elapsed=elapsed,
        errors=errors,
        copies_cancelled=copies_cancelled,
    )


class LatencyTracker:
    """A bounded window of observed latencies with percentile queries.

    Used by adaptive hedging and by the advisor to summarise what a backend's
    latency distribution currently looks like.  A thin wrapper over
    :class:`repro.metrics.SlidingWindow`: the sorted view is maintained
    incrementally, so percentile queries are O(1) instead of re-sorting the
    window per call.
    """

    def __init__(self, window: int = 10_000) -> None:
        """Track at most ``window`` recent latencies."""
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window!r}")
        self.window = int(window)
        self._window = SlidingWindow(self.window)

    def record(self, latency: float) -> None:
        """Add one latency observation (seconds, >= 0)."""
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency!r}")
        self._window.record(float(latency))

    def __len__(self) -> int:
        return len(self._window)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the recorded latencies.

        Uses :func:`numpy.percentile`'s linear interpolation between order
        statistics (the same convention as every ``LatencySummary`` in this
        repository), not the nearest-rank selection of the pre-metrics
        implementation — at small window sizes the two can differ by up to
        one inter-sample gap.

        Raises:
            ConfigurationError: If no latencies have been recorded or ``q`` is
                out of range.
        """
        if not len(self._window):
            raise ConfigurationError("no latencies recorded yet")
        return self._window.percentile(q)

    def mean(self) -> float:
        """Mean of the recorded latencies."""
        if not len(self._window):
            raise ConfigurationError("no latencies recorded yet")
        return self._window.mean()


class RedundantClient(Generic[T]):
    """Issue requests redundantly across a set of backends.

    A backend is a callable ``backend(key) -> awaitable``; the client picks
    which backends receive copies (via a
    :class:`~repro.core.selection.SelectionStrategy`), launches the copies
    according to its policy, returns the first completion and records the
    observed latency for adaptive policies.

    Example:
        >>> import asyncio
        >>> async def backend_a(key): return ("a", key)
        >>> async def backend_b(key): return ("b", key)
        >>> client = RedundantClient([backend_a, backend_b])
        >>> asyncio.run(client.request("x")).value[1]
        'x'
    """

    def __init__(
        self,
        backends: Sequence[Callable[..., Awaitable[T]]],
        policy: Optional[ReplicationPolicy] = None,
        selection: Optional[SelectionStrategy] = None,
        seed: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        """Create a client over ``backends``.

        Args:
            backends: Non-empty sequence of backend callables.
            policy: Replication policy (default: eager 2 copies, capped at the
                number of backends).
            selection: Backend selection strategy (default: uniform random
                distinct backends, the Section 2.1 model).
            seed: Seed for the selection strategy's randomness.
            metrics: Registry the client records into (``requests``,
                ``failed_requests``, ``copies_launched``, ``copies_cancelled``,
                ``errors`` counters and a streaming ``latency`` histogram); a
                private registry is created when omitted.
        """
        if not backends:
            raise ConfigurationError("RedundantClient needs at least one backend")
        self.backends = list(backends)
        if policy is None:
            policy = KCopies(min(2, len(self.backends)))
        self.policy = policy
        self.selection = selection or UniformRandom(seed=seed)
        self.metrics = metrics if metrics is not None else MetricsRegistry("redundant_client")
        # Cached: request() touches these per call; keep the hot path at a
        # bare increment instead of a registry lookup each time.
        self._requests = self.metrics.counter("requests")
        self._failed_requests = self.metrics.counter("failed_requests")
        self._copies_launched = self.metrics.counter("copies_launched")
        self._copies_cancelled = self.metrics.counter("copies_cancelled")
        self._errors = self.metrics.counter("errors")
        self._latency = self.metrics.histogram("latency")
        self.tracker = LatencyTracker()

    async def request(self, *args, key: Optional[object] = None, **kwargs) -> HedgedResult[T]:
        """Issue one redundant request.

        Args:
            *args: Positional arguments forwarded to each backend call.
            key: Optional request key.  It is used by key-aware selection
                strategies (e.g. consistent-hash primary/secondary placement)
                and, when provided, is passed to the backend as its first
                positional argument.
            **kwargs: Keyword arguments forwarded to each backend call.

        Returns:
            The :class:`HedgedResult` of the winning copy.
        """
        delays = self.policy.launch_delays()
        copies = min(len(delays), len(self.backends))
        chosen = self.selection.choose(len(self.backends), copies, key=key)
        call_args = args if key is None else (key, *args)
        factories: List[RequestFactory[T]] = [
            (lambda b=self.backends[index]: b(*call_args, **kwargs)) for index in chosen
        ]
        # Cap the policy's plan at the number of available backends, keeping
        # the launch schedule (a 3-copy policy over 2 backends degrades to a
        # 2-copy one rather than erroring).
        effective_policy: ReplicationPolicy = (
            self.policy if copies == len(delays) else _FixedDelays(delays[:copies], self.policy)
        )
        self._requests.increment()
        try:
            result = await hedged_call(factories, policy=effective_policy)
        except BaseException:
            # Fully-failed requests still show up in the registry; without
            # this an operator would read a failing client as idle.
            self._failed_requests.increment()
            raise
        self.tracker.record(result.elapsed)
        self._copies_launched.increment(result.copies_launched)
        self._copies_cancelled.increment(result.copies_cancelled)
        self._errors.increment(len(result.errors))
        self._latency.record(result.elapsed)
        return result


class _FixedDelays(ReplicationPolicy):
    """Internal adapter: a fixed launch schedule that forwards latency feedback."""

    def __init__(self, delays: Sequence[float], parent: ReplicationPolicy) -> None:
        self._delays = list(delays)
        self._parent = parent

    def launch_delays(self) -> List[float]:
        return list(self._delays)

    def record_latency(self, latency: float) -> None:
        self._parent.record_latency(latency)
