"""Asyncio execution of redundant requests.

"Initiate an operation multiple times, using as diverse resources as possible,
and use the first result which completes" — this module is that sentence as
code.  Copies are launched according to a :class:`~repro.core.policy.ReplicationPolicy`
(eagerly, or hedged after a delay), the first successful completion wins, and
the losing copies are cancelled.

The functions are transport-agnostic: a "backend" is any zero-argument
callable returning an awaitable, so the same client wraps DNS lookups, HTTP
fetches, database reads or anything else.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Generic, List, Optional, Sequence, TypeVar

from repro.core.policy import KCopies, ReplicationPolicy
from repro.core.selection import SelectionStrategy, UniformRandom
from repro.exceptions import ConfigurationError

T = TypeVar("T")

RequestFactory = Callable[[], Awaitable[T]]


@dataclass
class HedgedResult(Generic[T]):
    """Outcome of a hedged call.

    Attributes:
        value: The value returned by the winning copy.
        winner: Index (into the launched copies) of the copy that won.
        copies_launched: How many copies were actually started (a hedge whose
            delay never expired is not counted).
        elapsed: Wall-clock seconds from the first launch to the winning
            completion.
        errors: Exceptions raised by copies that failed before the winner
            completed (empty when everything succeeded).
    """

    value: T
    winner: int
    copies_launched: int
    elapsed: float
    errors: List[BaseException]


async def first_completed(
    awaitables: Sequence[Awaitable[T]],
    cancel_losers: bool = True,
) -> T:
    """Return the result of the first awaitable to complete successfully.

    Failed copies are tolerated as long as at least one succeeds; if every
    copy fails, the exception of the last failure is raised.

    Args:
        awaitables: Non-empty sequence of awaitables to race.
        cancel_losers: Cancel the still-pending copies once a winner is found
            (the redundant-operation analogue of the paper's note that Google
            cancels outstanding partially-completed requests).

    Raises:
        ConfigurationError: If ``awaitables`` is empty.
        BaseException: The last copy's exception if all copies fail.
    """
    if not awaitables:
        raise ConfigurationError("first_completed needs at least one awaitable")
    tasks = [asyncio.ensure_future(a) for a in awaitables]
    pending = set(tasks)
    last_error: Optional[BaseException] = None
    try:
        while pending:
            done, pending = await asyncio.wait(pending, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                if task.cancelled():
                    continue
                error = task.exception()
                if error is None:
                    return task.result()
                last_error = error
        assert last_error is not None
        raise last_error
    finally:
        if cancel_losers:
            for task in tasks:
                if not task.done():
                    task.cancel()
            # Give cancelled tasks a chance to unwind so no "Task exception was
            # never retrieved" warnings leak out of the library.
            await asyncio.gather(*tasks, return_exceptions=True)


async def hedged_call(
    factories: Sequence[RequestFactory[T]],
    policy: Optional[ReplicationPolicy] = None,
    cancel_losers: bool = True,
) -> HedgedResult[T]:
    """Run redundant copies of an operation according to ``policy``.

    Args:
        factories: One zero-argument coroutine factory per *potential* copy;
            ``factories[i]`` is used for the ``i``-th launched copy.  Provide
            as many factories as the policy's ``max_copies`` (extra factories
            are ignored; too few is an error).
        policy: The replication policy; defaults to eager 2-copy replication
            (:class:`~repro.core.policy.KCopies` with ``copies=2``), the
            paper's canonical scheme.
        cancel_losers: Cancel outstanding copies once a winner completes.

    Returns:
        A :class:`HedgedResult` describing the winner.

    Raises:
        ConfigurationError: If there are fewer factories than copies.
        BaseException: If every launched copy fails, the last failure.
    """
    if policy is None:
        policy = KCopies(2)
    delays = policy.launch_delays()
    if len(factories) < len(delays):
        raise ConfigurationError(
            f"policy wants up to {len(delays)} copies but only "
            f"{len(factories)} request factories were provided"
        )

    start = time.perf_counter()
    errors: List[BaseException] = []
    launched: List[asyncio.Task] = []
    winner_index: Optional[int] = None
    winner_value: Optional[T] = None

    async def launch(index: int, delay: float) -> tuple[int, T]:
        if delay > 0:
            await asyncio.sleep(delay)
        value = await factories[index]()
        return index, value

    tasks = [asyncio.ensure_future(launch(i, d)) for i, d in enumerate(delays)]
    launched.extend(tasks)
    pending = set(tasks)
    try:
        while pending and winner_index is None:
            done, pending = await asyncio.wait(pending, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                if task.cancelled():
                    continue
                error = task.exception()
                if error is not None:
                    errors.append(error)
                    continue
                winner_index, winner_value = task.result()
                break
        if winner_index is None:
            raise errors[-1]
    finally:
        if cancel_losers:
            for task in launched:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*launched, return_exceptions=True)

    elapsed = time.perf_counter() - start
    copies_launched = sum(1 for i, d in enumerate(delays) if d <= elapsed or i == winner_index)
    policy.record_latency(elapsed)
    return HedgedResult(
        value=winner_value,  # type: ignore[arg-type]
        winner=winner_index,
        copies_launched=copies_launched,
        elapsed=elapsed,
        errors=errors,
    )


class LatencyTracker:
    """A bounded window of observed latencies with percentile queries.

    Used by adaptive hedging and by the advisor to summarise what a backend's
    latency distribution currently looks like.
    """

    def __init__(self, window: int = 10_000) -> None:
        """Track at most ``window`` recent latencies."""
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window!r}")
        self.window = int(window)
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        """Add one latency observation (seconds, >= 0)."""
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency!r}")
        self._samples.append(float(latency))
        if len(self._samples) > self.window:
            del self._samples[: len(self._samples) - self.window]

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the recorded latencies.

        Raises:
            ConfigurationError: If no latencies have been recorded or ``q`` is
                out of range.
        """
        if not self._samples:
            raise ConfigurationError("no latencies recorded yet")
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"q must be in [0, 100], got {q!r}")
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def mean(self) -> float:
        """Mean of the recorded latencies."""
        if not self._samples:
            raise ConfigurationError("no latencies recorded yet")
        return sum(self._samples) / len(self._samples)


class RedundantClient(Generic[T]):
    """Issue requests redundantly across a set of backends.

    A backend is a callable ``backend(key) -> awaitable``; the client picks
    which backends receive copies (via a
    :class:`~repro.core.selection.SelectionStrategy`), launches the copies
    according to its policy, returns the first completion and records the
    observed latency for adaptive policies.

    Example:
        >>> import asyncio
        >>> async def backend_a(key): return ("a", key)
        >>> async def backend_b(key): return ("b", key)
        >>> client = RedundantClient([backend_a, backend_b])
        >>> asyncio.run(client.request("x")).value[1]
        'x'
    """

    def __init__(
        self,
        backends: Sequence[Callable[..., Awaitable[T]]],
        policy: Optional[ReplicationPolicy] = None,
        selection: Optional[SelectionStrategy] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Create a client over ``backends``.

        Args:
            backends: Non-empty sequence of backend callables.
            policy: Replication policy (default: eager 2 copies, capped at the
                number of backends).
            selection: Backend selection strategy (default: uniform random
                distinct backends, the Section 2.1 model).
            seed: Seed for the selection strategy's randomness.
        """
        if not backends:
            raise ConfigurationError("RedundantClient needs at least one backend")
        self.backends = list(backends)
        if policy is None:
            policy = KCopies(min(2, len(self.backends)))
        self.policy = policy
        self.selection = selection or UniformRandom(seed=seed)
        self.tracker = LatencyTracker()

    async def request(self, *args, key: Optional[object] = None, **kwargs) -> HedgedResult[T]:
        """Issue one redundant request.

        Args:
            *args: Positional arguments forwarded to each backend call.
            key: Optional request key.  It is used by key-aware selection
                strategies (e.g. consistent-hash primary/secondary placement)
                and, when provided, is passed to the backend as its first
                positional argument.
            **kwargs: Keyword arguments forwarded to each backend call.

        Returns:
            The :class:`HedgedResult` of the winning copy.
        """
        delays = self.policy.launch_delays()
        copies = min(len(delays), len(self.backends))
        chosen = self.selection.choose(len(self.backends), copies, key=key)
        call_args = args if key is None else (key, *args)
        factories: List[RequestFactory[T]] = [
            (lambda b=self.backends[index]: b(*call_args, **kwargs)) for index in chosen
        ]
        # Cap the policy's plan at the number of available backends, keeping
        # the launch schedule (a 3-copy policy over 2 backends degrades to a
        # 2-copy one rather than erroring).
        effective_policy: ReplicationPolicy = (
            self.policy if copies == len(delays) else _FixedDelays(delays[:copies], self.policy)
        )
        result = await hedged_call(factories, policy=effective_policy)
        self.tracker.record(result.elapsed)
        return result


class _FixedDelays(ReplicationPolicy):
    """Internal adapter: a fixed launch schedule that forwards latency feedback."""

    def __init__(self, delays: Sequence[float], parent: ReplicationPolicy) -> None:
        self._delays = list(delays)
        self._parent = parent

    def launch_delays(self) -> List[float]:
        return list(self._delays)

    def record_latency(self, latency: float) -> None:
        self._parent.record_latency(latency)
