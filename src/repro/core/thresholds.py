"""When does system-wide replication help?  (Section 2.1 packaged as an API.)

The paper's answer, exposed here as constants and functions:

* With exponential service times the threshold load is exactly **1/3**
  (Theorem 1) — :func:`exponential_threshold_load`.
* No distribution has a threshold above **50%** (2x the load would saturate
  the system) — :data:`THRESHOLD_UPPER_BOUND`.
* The conjectured worst case is deterministic service, threshold **≈25.8%**
  (Conjecture 1) — :data:`CONJECTURED_LOWER_BOUND`.
* For anything in between, estimate the threshold by simulation
  (:func:`threshold_load_simulated`) or by the light-tail approximation
  (:func:`threshold_load_approximated`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import PolicyLike
from repro.distributions.base import Distribution
from repro.queueing.mm1 import mm1_threshold_load
from repro.queueing.threshold import (
    DETERMINISTIC_THRESHOLD_ESTIMATE,
    THRESHOLD_UPPER_BOUND,
    threshold_load,
    threshold_load_approximation,
)

#: Conjecture 1's lower bound: the deterministic-service threshold (≈25.82%).
CONJECTURED_LOWER_BOUND: float = DETERMINISTIC_THRESHOLD_ESTIMATE

__all__ = [
    "CONJECTURED_LOWER_BOUND",
    "THRESHOLD_UPPER_BOUND",
    "exponential_threshold_load",
    "threshold_load_simulated",
    "threshold_load_approximated",
    "threshold_band",
]


def exponential_threshold_load(copies: int = 2) -> float:
    """Theorem 1: the exact threshold load for exponential service times.

    Args:
        copies: Replication factor ``k`` (>= 2); the threshold is
            ``1 / (k + 1)``, i.e. 1/3 for the paper's ``k = 2``.
    """
    return mm1_threshold_load(copies)


def threshold_load_simulated(
    service: Distribution,
    copies: Optional[int] = None,
    client_overhead: float = 0.0,
    num_servers: int = 10,
    num_requests: int = 40_000,
    seed: int = 0,
    tolerance: float = 0.01,
    policy: Optional[PolicyLike] = None,
) -> float:
    """Estimate the threshold load for an arbitrary service distribution.

    Thin, documented wrapper over :func:`repro.queueing.threshold.threshold_load`
    so that library users reaching for "when should I replicate?" don't need to
    know the queueing package layout.

    Args:
        service: Service-time distribution of the backend.
        copies: Eager replication factor (default 2, the paper's scheme);
            mutually exclusive with ``policy``.
        client_overhead: Fixed client-side cost per replicated request, in the
            same unit as the service times.
        num_servers: Number of servers in the simulated system.
        num_requests: Requests per simulation run (larger = smoother estimate).
        seed: Seed for reproducibility.
        tolerance: Bisection width at which the search stops.
        policy: A :class:`~repro.core.policy.ReplicationPolicy` or spec
            string (``"k2"``, ``"hedge:10ms"``, ``"hedge:p95"``) whose
            threshold is sought; hedging policies typically keep a positive
            benefit to far higher loads than eager replication because their
            backups launch only for slow requests.

    Returns:
        The estimated threshold load in ``[0, 1/copies)`` (eager) or
        ``[0, 1)`` (hedging).
    """
    return threshold_load(
        service,
        copies=copies,
        num_servers=num_servers,
        num_requests=num_requests,
        client_overhead=client_overhead,
        seed=seed,
        tolerance=tolerance,
        policy=policy,
    )


def threshold_load_approximated(
    service: Distribution,
    copies: int = 2,
    client_overhead: float = 0.0,
) -> float:
    """Threshold load under the two-moment (light-tail) approximation.

    Faster than simulation and adequate for light-tailed service times; for
    heavy tails use :func:`threshold_load_simulated`.
    """
    return threshold_load_approximation(
        service, copies=copies, client_overhead=client_overhead
    )


def threshold_band(copies: int = 2) -> tuple[float, float]:
    """The paper's overall answer: the threshold lies in roughly (26%, 50%).

    Returns:
        ``(lower, upper)`` where ``lower`` is the conjectured deterministic
        worst case and ``upper`` is the capacity bound ``1/copies`` capped at
        0.5 for the canonical 2-copy case.
    """
    upper = min(THRESHOLD_UPPER_BOUND, 1.0 / copies)
    return CONJECTURED_LOWER_BOUND, upper
