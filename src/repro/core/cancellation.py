"""Event-driven hedged dispatch with cancel-on-win across FIFO servers.

:func:`simulate_hedged_arrivals` (the substrates' default hedged engine)
exploits the FIFO property that a copy's completion time is known the moment
it is dispatched.  Cancellation breaks that property *retroactively*: pulling
a queued copy out of a server shifts the start of everything queued behind
it.  This module provides the general engine for that case — a global event
loop over per-server cancellable queues:

* events are processed in ``(time, kind, seq)`` order with a fixed kind
  priority (disk completion < win < backup launch < arrival), so runs are
  deterministic for a given seed;
* a copy *in service* always runs to completion, matching
  ``sim.resources.Server.cancel`` and the paper's observation that
  cancellation saves queueing, not work already under way;
* when the first copy of a request completes ("win"), its still-**queued**
  sibling copies are removed from their servers' queues (if the policy says
  cancel-on-win), giving the capacity back to later arrivals;
* backups are suppressed exactly as in the default engine: a backup whose
  request has already completed never launches;
* adaptive-policy feedback goes through :class:`PolicyDriver`, released once
  a request's plan is fully resolved — the same contract the default engine
  honours, so ``hedge:p95`` works identically under both.

Substrates plug in via two callbacks: ``server_of(request, copy)`` names the
FIFO station a copy queues at, and ``begin(request, copy, at)`` performs the
dispatch-time work (cache access, service-time draw — in event order, like
the default engine) and returns either ``("done", finish_time)`` for work
that bypasses the queue (a cache hit served from memory) or
``("service", service_s, tail_s)`` for a queued job whose completion is
``entry_into_service + service_s + tail_s`` (``tail_s`` being queue-free
post-processing such as the memory copy after a disk read).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.policy import PolicyDriver, ReplicationPolicy

__all__ = ["simulate_cancelling_arrivals"]

#: Event kind priorities at equal timestamps.  Background (migration) jobs
#: slot between wins and backup launches so that, at equal timestamps, they
#: join their station before any foreground dispatch — matching the "flush
#: due migration work, then serve" order of the non-cancelling engines.
_POP, _WIN, _BG, _BACKUP, _ARRIVAL = 0, 1, 2, 3, 4

#: Queue-entry states.
_QUEUED, _IN_SERVICE, _CANCELLED = 0, 1, 2

BeginResult = Union[Tuple[str, float], Tuple[str, float, float]]


class _Server:
    """One FIFO station: the in-service job plus a cancellable queue."""

    __slots__ = ("busy", "queue")

    def __init__(self) -> None:
        self.busy = False
        self.queue: deque = deque()


def simulate_cancelling_arrivals(
    policy: ReplicationPolicy,
    arrival_times,
    max_copies: int,
    server_of: Callable[[int, int], int],
    begin: Callable[[int, int, float], BeginResult],
    on_copy_resolved: Optional[Callable[[int, int, str, float, float], None]] = None,
    background_jobs: Optional[List[Tuple[float, int, int]]] = None,
    begin_background: Optional[Callable[[int, float], BeginResult]] = None,
):
    """Drive FIFO servers through ``policy`` with cancel-on-win honoured.

    Args:
        policy: The replication policy (shared state across requests).
        arrival_times: 1-D array of request arrival times, non-decreasing.
        max_copies: Cap on copies per request; plans are truncated to it.
        server_of: ``server_of(request, copy) -> station id`` for the queue
            the copy joins.
        begin: Dispatch-time callback; see the module docstring.
        on_copy_resolved: Optional per-copy accounting hook, called the
            moment a copy's fate is sealed (in deterministic event order):
            ``on_copy_resolved(request, copy, outcome, work_s, finish_s)``
            with ``outcome`` one of ``"finished"`` (the copy enters service —
            FIFO completion is known then; ``work_s`` is its station-busy
            seconds, ``finish_s`` its absolute completion including any
            tail), ``"done"`` (queue-bypassing work; ``work_s`` is 0.0) or
            ``"cancelled"`` (withdrawn while queued; ``work_s`` is 0.0 and
            ``finish_s`` the cancellation time).  Copies whose launch was
            suppressed never reach the hook.
        background_jobs: Optional ``(time, station, job)`` triples, ascending
            in time: non-request work (e.g. churn migration reads) injected
            into station FIFOs.  Background jobs compete for service exactly
            like copies but are never cancelled, complete no request, and
            appear in none of the returned accounting arrays.  Omitting them
            leaves the engine byte-identical to earlier releases.
        begin_background: Dispatch-time callback for background jobs,
            ``begin_background(job, at) -> BeginResult`` with the same
            contract as ``begin``.  Required when ``background_jobs`` is
            non-empty.

    Returns:
        ``(finish_at, copies_launched, copies_cancelled)`` per-request
        arrays: earliest absolute completion, dispatched copies, and copies
        cancelled while still queued.
    """
    num_requests = len(arrival_times)
    driver = PolicyDriver(policy)
    finish_at = np.full(num_requests, np.inf)
    launched = np.zeros(num_requests, dtype=np.int64)
    cancelled = np.zeros(num_requests, dtype=np.int64)
    outstanding = np.zeros(num_requests, dtype=np.int64)
    won = np.zeros(num_requests, dtype=bool)
    fed_back = np.zeros(num_requests, dtype=bool)
    queued_entries: Dict[int, List[list]] = {}
    servers: Dict[int, _Server] = {}
    heap: List[tuple] = []
    seq = 0

    def push(at: float, kind: int, payload: tuple) -> None:
        nonlocal seq
        heapq.heappush(heap, (at, kind, seq, payload))
        seq += 1

    def feedback(request: int) -> None:
        # Release adaptive feedback once the plan is fully resolved: the
        # request completed and no backup decision is still pending —
        # mirroring the default engine's contract.
        if fed_back[request] or outstanding[request] != 0:
            return
        if not np.isfinite(finish_at[request]):
            return
        fed_back[request] = True
        driver.complete(
            float(finish_at[request]),
            float(finish_at[request] - arrival_times[request]),
        )

    def complete(request: int, at: float) -> None:
        if at < finish_at[request]:
            finish_at[request] = at
            push(at, _WIN, (request,))

    def enter_service(station: _Server, entry: list, at: float) -> None:
        request, copy, service, tail = entry[0], entry[1], entry[2], entry[3]
        entry[4] = _IN_SERVICE
        station.busy = True
        finish = at + service
        if request >= 0:
            if on_copy_resolved is not None:
                on_copy_resolved(request, copy, "finished", service, finish + tail)
            complete(request, finish + tail)
        push(finish, _POP, (id(station), station))

    def dispatch(request: int, copy: int, at: float) -> None:
        launched[request] += 1
        result = begin(request, copy, at)
        if result[0] == "done":
            if on_copy_resolved is not None:
                on_copy_resolved(request, copy, "done", 0.0, result[1])
            complete(request, result[1])
            return
        _kind, service, tail = result
        station = servers.setdefault(server_of(request, copy), _Server())
        entry = [request, copy, service, tail, _QUEUED]
        if station.busy:
            station.queue.append(entry)
            queued_entries.setdefault(request, []).append(entry)
        else:
            enter_service(station, entry, at)

    for request in range(num_requests):
        push(float(arrival_times[request]), _ARRIVAL, (request,))
    if background_jobs:
        if begin_background is None:
            raise ValueError("background_jobs requires begin_background")
        for when, station_id, job in background_jobs:
            push(float(when), _BG, (station_id, job))

    while heap:
        at, kind, _seq, payload = heapq.heappop(heap)
        if kind == _ARRIVAL:
            (request,) = payload
            plan = driver.plan_for(at)
            delays = plan.launch_delays[:max_copies]
            dispatch(request, 0, at)
            for copy, delay in enumerate(delays[1:], start=1):
                push(at + delay, _BACKUP, (request, copy))
                outstanding[request] += 1
            feedback(request)
        elif kind == _BG:
            station_id, job = payload
            result = begin_background(job, at)
            if result[0] != "done":
                _kind, service, tail = result
                station = servers.setdefault(station_id, _Server())
                entry = [-1, job, service, tail, _QUEUED]
                if station.busy:
                    station.queue.append(entry)
                else:
                    enter_service(station, entry, at)
        elif kind == _BACKUP:
            request, copy = payload
            outstanding[request] -= 1
            if finish_at[request] > at:  # still pending: the hedge fires
                dispatch(request, copy, at)
            feedback(request)
        elif kind == _WIN:
            (request,) = payload
            if won[request] or finish_at[request] != at:
                continue  # a faster copy already claimed the win
            won[request] = True
            if policy.cancel_on_win:
                for entry in queued_entries.pop(request, ()):
                    if entry[4] == _QUEUED:
                        entry[4] = _CANCELLED
                        cancelled[request] += 1
                        if on_copy_resolved is not None:
                            on_copy_resolved(request, entry[1], "cancelled", 0.0, at)
            feedback(request)
        else:  # _POP: a station finished its in-service job
            _sid, station = payload
            station.busy = False
            queue = station.queue
            while queue:
                entry = queue.popleft()
                if entry[4] == _QUEUED:
                    enter_service(station, entry, at)
                    break

    return finish_at, launched, cancelled
