"""The "should I replicate?" advisor.

This module condenses the paper's guidance into a single decision helper:

1. Estimate (or accept) the service's threshold load for the chosen
   replication factor; the paper shows it always lies between ≈26% and 50%
   when client-side overhead is negligible, and shrinks as overhead grows.
2. Replication improves mean latency iff the current load is below that
   threshold; it almost always improves the tail well beyond it, so the advice
   distinguishes the two.
3. If the caller supplies a traffic cost, the 16 ms/KB cost-effectiveness
   benchmark of Section 3 is applied too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.costbenefit import DEFAULT_BREAK_EVEN_MS_PER_KB, CostBenefitAnalysis
from repro.core.policy import PolicyLike, eager_copies, parse_policy, policy_to_spec
from repro.core.thresholds import threshold_load_simulated
from repro.distributions.base import Distribution
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ReplicationAdvice:
    """The advisor's output.

    Attributes:
        replicate_for_mean: Whether replication is expected to reduce *mean*
            latency at the given load.
        replicate_for_tail: Whether replication is expected to reduce tail
            latency (true in a wider range of conditions; it only fails when
            client overhead rivals the whole latency budget).
        threshold_load: The estimated threshold load used for the decision.
        current_load: The load the decision was evaluated at.
        overhead_fraction: Client-side overhead as a fraction of mean service
            time.
        cost_effective: Result of the ms/KB benchmark (``None`` when no
            traffic cost was supplied).
        reasons: Human-readable explanation of the decision.
    """

    replicate_for_mean: bool
    replicate_for_tail: bool
    threshold_load: float
    current_load: float
    overhead_fraction: float
    cost_effective: Optional[bool]
    reasons: List[str] = field(default_factory=list)


def advise_replication(
    service: Distribution,
    load: float,
    copies: int = 2,
    client_overhead: float = 0.0,
    extra_bytes_per_request: Optional[float] = None,
    expected_latency_saving_ms: Optional[float] = None,
    threshold: Optional[float] = None,
    num_requests: int = 30_000,
    seed: int = 0,
    policy: Optional[PolicyLike] = None,
) -> ReplicationAdvice:
    """Advise whether to replicate requests to a service.

    Args:
        service: Service-time distribution of the backend (measured or
            assumed).
        load: Current per-server utilisation in ``[0, 1)``.
        copies: Proposed eager replication factor (ignored when ``policy`` is
            given).
        client_overhead: Client-side cost per replicated request, same unit as
            the service times.
        extra_bytes_per_request: Extra traffic per request if replicated
            (enables the cost-effectiveness check).
        expected_latency_saving_ms: Expected latency saving in milliseconds
            (required if ``extra_bytes_per_request`` is given).
        threshold: Optionally supply a precomputed threshold load and skip the
            simulation (useful in tests and when the caller already ran the
            threshold search).
        num_requests: Simulation size for the threshold estimate.
        seed: Seed for the threshold simulation.
        policy: Evaluate a specific :class:`~repro.core.policy.ReplicationPolicy`
            (or spec string such as ``"hedge:p95"``) instead of eager
            ``copies``-way replication; the threshold simulation then measures
            that policy's benefit, and the saturation guards use the policy's
            worst-case utilisation only when it launches copies eagerly.

    Returns:
        A :class:`ReplicationAdvice`.

    Raises:
        ConfigurationError: On an invalid load, or a traffic cost without an
            expected saving.
    """
    if not 0.0 <= load < 1.0:
        raise ConfigurationError(f"load must be in [0, 1), got {load!r}")
    if (extra_bytes_per_request is None) != (expected_latency_saving_ms is None):
        raise ConfigurationError(
            "provide both extra_bytes_per_request and expected_latency_saving_ms, or neither"
        )
    resolved = None
    threshold_policy: Optional[PolicyLike] = None
    if policy is not None:
        resolved = parse_policy(policy)
        copies = int(resolved.max_copies)
        # Hand the threshold search a *spec* whenever the policy has one, so
        # each bisection probe re-parses it and starts from fresh adaptive
        # state (a shared HedgeOnPercentile object would carry its latency
        # window across probed loads and contaminate the estimate).
        try:
            threshold_policy = policy_to_spec(resolved)
        except ConfigurationError:
            threshold_policy = resolved

    mean_service = service.mean()
    overhead_fraction = client_overhead / mean_service if mean_service > 0 else 0.0
    reasons: List[str] = []
    if resolved is not None:
        spec = (
            threshold_policy
            if isinstance(threshold_policy, str)
            else type(resolved).__name__
        )
        reasons.append(f"evaluating replication policy {spec!r}")

    # Hedging launches backups only for slow requests, so only an eager
    # policy's worst-case utilisation can be rejected up front.
    saturating_copies = copies if resolved is None or eager_copies(resolved) else 1
    if threshold is None:
        if saturating_copies * load >= 0.98:
            threshold = 0.0
            reasons.append(
                f"replicated utilisation {saturating_copies * load:.2f} would "
                "saturate the system"
            )
        else:
            threshold = threshold_load_simulated(
                service,
                copies=None if resolved is not None else copies,
                client_overhead=client_overhead,
                num_requests=num_requests,
                seed=seed,
                policy=threshold_policy,
            )
            reasons.append(
                f"threshold load estimated by simulation: {threshold:.1%} "
                f"(paper's band is 25-50% when overhead is negligible)"
            )
    else:
        reasons.append(f"threshold load supplied by caller: {threshold:.1%}")

    replicate_for_mean = load < threshold
    if replicate_for_mean:
        reasons.append(
            f"current load {load:.1%} is below the threshold, so replication should "
            "reduce mean latency"
        )
    else:
        reasons.append(
            f"current load {load:.1%} is at or above the threshold, so replication is "
            "expected to increase mean latency"
        )

    # Tail latency benefits persist as long as the per-copy overhead does not
    # dominate the latency budget; the paper's memcached case (overhead ~9% of
    # a ~0.2 ms service time at 10%+ load) is the canonical failure.
    replicate_for_tail = overhead_fraction < 1.0 and saturating_copies * load < 0.9
    if replicate_for_tail:
        reasons.append("tail latency should improve: overhead is below the mean service time")
    else:
        reasons.append(
            "tail latency is unlikely to improve: client overhead or load is too high"
        )

    cost_effective: Optional[bool] = None
    if extra_bytes_per_request is not None and expected_latency_saving_ms is not None:
        analysis = CostBenefitAnalysis(
            latency_saved_ms=expected_latency_saving_ms,
            extra_bytes=extra_bytes_per_request,
            break_even_ms_per_kb=DEFAULT_BREAK_EVEN_MS_PER_KB,
        )
        cost_effective = analysis.worthwhile
        reasons.append(
            f"cost-effectiveness: {analysis.savings_ms_per_kb:.1f} ms/KB vs the "
            f"{DEFAULT_BREAK_EVEN_MS_PER_KB:.0f} ms/KB break-even "
            f"({'worthwhile' if cost_effective else 'not worthwhile'})"
        )

    return ReplicationAdvice(
        replicate_for_mean=replicate_for_mean,
        replicate_for_tail=replicate_for_tail,
        threshold_load=float(threshold),
        current_load=float(load),
        overhead_fraction=float(overhead_fraction),
        cost_effective=cost_effective,
        reasons=reasons,
    )
