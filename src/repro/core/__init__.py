"""The core redundancy library.

This is the paper's contribution packaged as something a service developer can
use directly:

* :mod:`repro.core.policy` — replication/hedging policies (how many copies,
  launched when).
* :mod:`repro.core.hedging` — asyncio execution of those policies against real
  awaitables ("initiate an operation multiple times ... use the first result
  which completes"), with loser cancellation.
* :mod:`repro.core.selection` — which backends the copies go to.
* :mod:`repro.core.thresholds` — when system-wide replication helps (the
  threshold-load results of Section 2.1).
* :mod:`repro.core.costbenefit` — whether the latency saved is worth the bytes
  added (the Section 3 benchmark of 16 ms per KB).
* :mod:`repro.core.advisor` — a decision helper combining all of the above.
"""

from repro.core.policy import (
    HedgeAfterDelay,
    HedgeOnPercentile,
    KCopies,
    NoReplication,
    PolicyDriver,
    ReplicationPolicy,
    RequestPlan,
    canonical_policy_spec,
    parse_policy,
    policy_to_spec,
    resolve_policy,
)
from repro.core.hedging import (
    HedgedResult,
    LatencyTracker,
    RedundantClient,
    first_completed,
    hedged_call,
)
from repro.core.selection import (
    PowerOfTwoChoices,
    PrimarySecondary,
    RankedBest,
    SelectionStrategy,
    UniformRandom,
)
from repro.core.thresholds import (
    CONJECTURED_LOWER_BOUND,
    THRESHOLD_UPPER_BOUND,
    exponential_threshold_load,
    threshold_load_simulated,
)
from repro.core.costbenefit import (
    DEFAULT_BREAK_EVEN_MS_PER_KB,
    CostBenefitAnalysis,
    marginal_cost_benefit,
)
from repro.core.advisor import ReplicationAdvice, advise_replication

__all__ = [
    "ReplicationPolicy",
    "NoReplication",
    "KCopies",
    "HedgeAfterDelay",
    "HedgeOnPercentile",
    "RequestPlan",
    "PolicyDriver",
    "parse_policy",
    "policy_to_spec",
    "canonical_policy_spec",
    "resolve_policy",
    "first_completed",
    "hedged_call",
    "HedgedResult",
    "LatencyTracker",
    "RedundantClient",
    "SelectionStrategy",
    "UniformRandom",
    "RankedBest",
    "PrimarySecondary",
    "PowerOfTwoChoices",
    "exponential_threshold_load",
    "threshold_load_simulated",
    "CONJECTURED_LOWER_BOUND",
    "THRESHOLD_UPPER_BOUND",
    "CostBenefitAnalysis",
    "DEFAULT_BREAK_EVEN_MS_PER_KB",
    "marginal_cost_benefit",
    "ReplicationAdvice",
    "advise_replication",
]
