#!/usr/bin/env python3
"""Wide-area DNS replication study (the Figures 15-17 pipeline).

Replays the paper's two-stage protocol on the synthetic vantage-point model:
rank the 10 resolvers by mean response time from each vantage point, then
query the best k in parallel and keep the first answer.  Prints the tail
("fraction later than threshold") improvements, the percentage reduction in
mean/median/95th/99th percentile versus the best single server, and the
marginal cost-effectiveness of each extra server against the paper's
16 ms/KB break-even benchmark.

Run:
    python examples/dns_replication.py
"""

from repro.analysis import ResultTable
from repro.core import DEFAULT_BREAK_EVEN_MS_PER_KB
from repro.wan import DnsExperiment, DnsExperimentConfig


def main() -> None:
    config = DnsExperimentConfig(stage2_queries_per_config=1_500, seed=3)
    experiment = DnsExperiment(config)
    results = experiment.run()

    print(f"DNS replication across {config.num_vantage_points} vantage points, "
          f"{config.num_servers} public resolvers\n")

    tail_table = ResultTable(
        ["servers queried", "frac > 500 ms", "frac > 1.5 s"],
        title="Tail of the response-time distribution (Figure 15)",
    )
    for copies in (1, 2, 5, 10):
        tail_table.add_row(**{
            "servers queried": copies,
            "frac > 500 ms": f"{results.fraction_later_than(0.5, copies):.4f}",
            "frac > 1.5 s": f"{results.fraction_later_than(1.5, copies):.5f}",
        })
    print(tail_table.to_text())
    print(f"\n  > 500 ms improvement with 10 servers: "
          f"{results.tail_improvement(0.5, 10):.1f}x (paper: 6.5x)")
    print(f"  > 1.5 s improvement with 10 servers: "
          f"{results.tail_improvement(1.5, 10):.1f}x (paper: 50x)\n")

    reduction_table = ResultTable(
        ["copies", "mean %", "median %", "95th %", "99th %"],
        title="Reduction vs best single server (Figure 16)",
    )
    for copies in range(1, config.num_servers + 1):
        reduction_table.add_row(**{
            "copies": copies,
            "mean %": round(results.reduction_percent["mean"][copies], 1),
            "median %": round(results.reduction_percent["median"][copies], 1),
            "95th %": round(results.reduction_percent["p95"][copies], 1),
            "99th %": round(results.reduction_percent["p99"][copies], 1),
        })
    print(reduction_table.to_text())

    marginal_table = ResultTable(
        ["extra server", "marginal mean (ms/KB)", "marginal p99 (ms/KB)", "worth it (mean)?"],
        title="\nMarginal value of each extra server (Figure 17, break-even "
              f"{DEFAULT_BREAK_EVEN_MS_PER_KB:.0f} ms/KB)",
    )
    mean_marginal = results.marginal_analysis("mean")
    p99_marginal = results.marginal_analysis("p99")
    for index, (mean_item, p99_item) in enumerate(zip(mean_marginal, p99_marginal), start=2):
        marginal_table.add_row(**{
            "extra server": f"{index - 1} -> {index}",
            "marginal mean (ms/KB)": round(mean_item.savings_ms_per_kb, 1),
            "marginal p99 (ms/KB)": round(p99_item.savings_ms_per_kb, 1),
            "worth it (mean)?": "yes" if mean_item.worthwhile else "no",
        })
    print(marginal_table.to_text())


if __name__ == "__main__":
    main()
