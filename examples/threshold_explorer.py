#!/usr/bin/env python3
"""Explore the threshold load across service-time distributions (Figures 1-4).

For each service-time distribution this script estimates the *threshold load*
— the highest utilisation at which replicating every request still reduces
mean latency — and shows how client-side overhead erodes it.  It reproduces,
at small scale, the Section 2.1 findings:

* exponential service: threshold = 1/3 (Theorem 1);
* deterministic service: threshold ≈ 26% (the conjectured worst case);
* heavier tails: threshold closer to 50%;
* client overhead comparable to the mean service time: threshold collapses.

Run:
    python examples/threshold_explorer.py
"""

from repro.analysis import ResultTable
from repro.core import exponential_threshold_load
from repro.distributions import Deterministic, Exponential, Pareto, TwoPoint, Weibull
from repro.queueing import ReplicatedQueueingModel, threshold_load

SIM = dict(num_requests=25_000, tolerance=0.02, seed=1)


def main() -> None:
    distributions = {
        "deterministic": Deterministic(1.0),
        "exponential": Exponential(1.0),
        "weibull (shape 0.5)": Weibull(shape=0.5).unit_mean(),
        "pareto (alpha 2.1)": Pareto(alpha=2.1, mean=1.0),
        "two-point (p=0.9)": TwoPoint(0.9),
    }

    table = ResultTable(
        ["service time", "threshold load", "threshold w/ 20% overhead"],
        title="Threshold load by service-time distribution (2 copies)",
    )
    for name, dist in distributions.items():
        clean = threshold_load(dist, **SIM)
        with_overhead = threshold_load(dist, client_overhead=0.2 * dist.mean(), **SIM)
        table.add_row(**{
            "service time": name,
            "threshold load": round(clean, 3),
            "threshold w/ 20% overhead": round(with_overhead, 3),
        })
    print(table.to_text())
    print(f"\nTheorem 1 (exact, exponential service): {exponential_threshold_load():.3f}")

    # Show the actual latency curves for one distribution (Figure 1 shape).
    service = Pareto(alpha=2.1, mean=1.0)
    curve = ResultTable(
        ["load", "1 copy mean", "2 copies mean", "1 copy p99.9", "2 copies p99.9"],
        title="\nPareto(2.1) service: response time vs load",
    )
    for load in (0.1, 0.2, 0.3, 0.4):
        baseline = ReplicatedQueueingModel(service, copies=1, seed=2).run_fast(load, 25_000)
        replicated = ReplicatedQueueingModel(service, copies=2, seed=2).run_fast(load, 25_000)
        curve.add_row(**{
            "load": load,
            "1 copy mean": round(baseline.mean, 3),
            "2 copies mean": round(replicated.mean, 3),
            "1 copy p99.9": round(baseline.summary.p999, 2),
            "2 copies p99.9": round(replicated.summary.p999, 2),
        })
    print(curve.to_text())


if __name__ == "__main__":
    main()
