#!/usr/bin/env python3
"""Explore the threshold load across service-time distributions (Figures 1-4).

Since PR 2 this script is built on :mod:`repro.experiments`: the paired
replication-vs-baseline sweep runs as a declarative scenario on the parallel
:class:`~repro.experiments.SweepRunner`, showing the benefit sign per
(distribution, load) grid point; the precise threshold values are then
computed independently by the bisection search of
:func:`repro.queueing.threshold_load`.  It reproduces, at small scale, the
Section 2.1 findings:

* exponential service: threshold = 1/3 (Theorem 1);
* deterministic service: threshold ≈ 26% (the conjectured worst case);
* heavier tails: threshold closer to 50%;
* client overhead comparable to the mean service time: threshold collapses.

Run:
    python examples/threshold_explorer.py [--workers N]
"""

import argparse

from repro.analysis import ResultTable
from repro.core import exponential_threshold_load
from repro.distributions import Deterministic, Exponential, Pareto, TwoPoint, Weibull
from repro.experiments import ParameterGrid, Scenario, SweepRunner
from repro.queueing import threshold_load

DISTRIBUTIONS = ["deterministic", "exponential", "weibull", "pareto", "two_point"]
LOADS = [0.1, 0.2, 0.3, 0.4]
SIM = dict(num_requests=25_000, tolerance=0.02, seed=1)


def benefit_scenario(client_overhead: float = 0.0) -> Scenario:
    """The paired benefit sweep: (distribution x load), 2 copies, shared seed."""
    suffix = f"-overhead{client_overhead:g}" if client_overhead else ""
    return Scenario(
        name=f"threshold-explorer{suffix}",
        entry_point="queueing_paired",
        description="Replication benefit across distributions and loads.",
        base_params={
            "copies": 2,
            "num_requests": 25_000,
            "client_overhead": client_overhead,
            "shape": 0.5,       # weibull
            "alpha": 2.1,       # pareto
            "p": 0.9,           # two_point
        },
        grid=ParameterGrid({"distribution": DISTRIBUTIONS, "load": LOADS}),
        seed=1,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4, help="sweep worker processes")
    args = parser.parse_args()
    runner = SweepRunner(workers=args.workers)

    # Where does the paired benefit change sign?  One parallel sweep answers
    # for every (distribution, load) cell at once.
    sweep = runner.run(benefit_scenario())
    benefit_table = ResultTable(
        ["service time"] + [f"benefit @ {load:.0%}" for load in LOADS],
        title="Paired replication benefit (mean_1copy - mean_2copies, 2 copies)",
    )
    for name in DISTRIBUTIONS:
        row = {"service time": name}
        for point in sweep.select(distribution=name):
            row[f"benefit @ {point.params['load']:.0%}"] = round(point.value("benefit"), 3)
        benefit_table.add_row(**row)
    print(benefit_table.to_text())

    # Precise thresholds via bisection, with and without client overhead.
    distributions = {
        "deterministic": Deterministic(1.0),
        "exponential": Exponential(1.0),
        "weibull (shape 0.5)": Weibull(shape=0.5).unit_mean(),
        "pareto (alpha 2.1)": Pareto(alpha=2.1, mean=1.0),
        "two-point (p=0.9)": TwoPoint(0.9),
    }
    table = ResultTable(
        ["service time", "threshold load", "threshold w/ 20% overhead"],
        title="Threshold load by service-time distribution (2 copies)",
    )
    for name, dist in distributions.items():
        clean = threshold_load(dist, **SIM)
        with_overhead = threshold_load(dist, client_overhead=0.2 * dist.mean(), **SIM)
        table.add_row(**{
            "service time": name,
            "threshold load": round(clean, 3),
            "threshold w/ 20% overhead": round(with_overhead, 3),
        })
    print()
    print(table.to_text())
    print(f"\nTheorem 1 (exact, exponential service): {exponential_threshold_load():.3f}")

    # The latency curves for one distribution (Figure 1 shape), again as a
    # sweep: the paired adapter reports both arms of each load point.
    curve_sweep = runner.run(
        Scenario(
            name="threshold-explorer-pareto-curve",
            entry_point="queueing_paired",
            description="Pareto(2.1) response time vs load, both arms.",
            base_params={"distribution": "pareto", "alpha": 2.1, "num_requests": 25_000},
            grid=ParameterGrid({"load": LOADS}),
            seed=2,
        )
    )
    curve = curve_sweep.to_table(
        ["load", "mean_baseline", "mean_replicated", "p999_baseline", "p999_replicated"],
        title="Pareto(2.1) service: response time vs load",
    )
    print()
    print(curve.to_text(float_format=".3f"))


if __name__ == "__main__":
    main()
