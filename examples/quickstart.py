#!/usr/bin/env python3
"""Quickstart: hedged requests against flaky backends with ``repro.core``.

The paper's recipe in one script: issue every operation redundantly against
diverse backends, take the first response, cancel the rest.  Here the
"backends" are coroutines whose latency is usually ~5 ms but occasionally
~100 ms (the kind of tail the paper's DNS and storage experiments observe);
hedging flattens that tail.

Run:
    python examples/quickstart.py
"""

import asyncio

import numpy as np

from repro.analysis import summarize
from repro.core import HedgeAfterDelay, KCopies, NoReplication, RedundantClient


def make_backend(name: str, rng: np.random.Generator):
    """A backend whose latency has a long tail (rare 100 ms hiccups)."""

    async def backend(key):
        latency = rng.exponential(0.005)
        if rng.random() < 0.03:  # occasional slow outlier (cache miss, GC pause, ...)
            latency += 0.1
        await asyncio.sleep(latency)
        return f"{name}:{key}"

    return backend


async def measure(policy, label: str, num_requests: int = 150) -> None:
    """Issue requests under one policy and print its latency summary."""
    rng = np.random.default_rng(42)
    backends = [make_backend(f"replica-{i}", rng) for i in range(3)]
    client = RedundantClient(backends, policy=policy, seed=7)

    latencies = []
    for i in range(num_requests):
        result = await client.request(key=f"object-{i}")
        latencies.append(result.elapsed)

    summary = summarize(latencies)
    print(
        f"{label:<28} mean {summary.mean * 1000:6.1f} ms   "
        f"p95 {summary.p95 * 1000:6.1f} ms   p99 {summary.p99 * 1000:6.1f} ms"
    )


async def main() -> None:
    print("Hedged requests quickstart (150 requests per policy)\n")
    await measure(NoReplication(), "single request (baseline)")
    await measure(KCopies(2), "2 eager copies (paper)")
    await measure(HedgeAfterDelay(delay=0.010), "hedge after 10 ms")
    print(
        "\nEager replication buys the best tail at 2x the load; the deferred"
        "\nhedge recovers most of the tail improvement while adding far fewer"
        "\nextra requests - exactly the trade-off Section 2 of the paper maps out."
    )


if __name__ == "__main__":
    asyncio.run(main())
