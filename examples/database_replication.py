#!/usr/bin/env python3
"""Disk-backed database replication study (the Figure 5 pipeline, scaled down).

A cluster of storage servers (LRU page cache in front of a FIFO disk,
consistent-hash placement with the replica on the successor server) serves
uniformly random reads from open-loop Poisson clients.  The script compares
sending each read to one replica versus both replicas across a range of
loads, and prints the same quantities the paper plots: mean and
99.9th-percentile response time, and the response-time CDF at 20% load.

Run:
    python examples/database_replication.py
"""

import numpy as np

from repro.analysis import EmpiricalCDF, ResultTable
from repro.cluster import DatabaseClusterConfig, DatabaseClusterExperiment

LOADS = (0.1, 0.2, 0.3, 0.4)
REQUESTS = 20_000


def main() -> None:
    config = DatabaseClusterConfig.base(num_files=40_000)
    experiment = DatabaseClusterExperiment(config)

    print("Disk-backed database, base configuration "
          f"({config.num_servers} servers, {config.mean_file_bytes / 1000:.0f} KB files, "
          f"cache:data ratio {config.cache_to_data_ratio})\n")

    table = ResultTable(
        ["load", "mean 1 copy (ms)", "mean 2 copies (ms)",
         "p99.9 1 copy (ms)", "p99.9 2 copies (ms)"],
        title="Response time vs load (Figure 5 shape)",
    )
    cdf_data = {}
    for load in LOADS:
        baseline = experiment.run(load, copies=1, num_requests=REQUESTS)
        replicated = experiment.run(load, copies=2, num_requests=REQUESTS)
        table.add_row(**{
            "load": load,
            "mean 1 copy (ms)": round(baseline.mean * 1000, 2),
            "mean 2 copies (ms)": round(replicated.mean * 1000, 2),
            "p99.9 1 copy (ms)": round(baseline.p999 * 1000, 1),
            "p99.9 2 copies (ms)": round(replicated.p999 * 1000, 1),
        })
        if load == 0.2:
            cdf_data = {"1 copy": baseline.response_times, "2 copies": replicated.response_times}
    print(table.to_text())

    print("\nCDF at 20% load (fraction of requests later than threshold):")
    thresholds_ms = (10, 20, 50, 100, 200)
    cdf_table = ResultTable(["threshold (ms)", "1 copy", "2 copies"])
    for threshold in thresholds_ms:
        row = {"threshold (ms)": threshold}
        for name, samples in cdf_data.items():
            row[name] = round(EmpiricalCDF(samples).ccdf(threshold / 1000.0), 4)
        cdf_table.add_row(**row)
    print(cdf_table.to_text())

    threshold = experiment.threshold_load(loads=np.arange(0.05, 0.5, 0.05), num_requests=12_000)
    print(f"\nEstimated threshold load of this cluster: ~{threshold:.0%} "
          "(the paper measured ~30% for its base configuration)")


if __name__ == "__main__":
    main()
