#!/usr/bin/env python3
"""In-network replication in a fat-tree datacenter (the Figure 14 pipeline).

Switches replicate the first 8 packets of every flow along an alternate ECMP
path at strictly lower priority; the receiver keeps whichever copy arrives
first.  The script runs the same workload with and without replication and
reports short-flow (<10 KB) completion times, timeout counts, and the effect
on elephant flows.

The default uses a k=4 fat-tree (16 hosts) so the example finishes in under a
minute; pass ``--paper-scale`` for the paper's 54-host k=6 fabric.

Run:
    python examples/datacenter_network.py [--paper-scale]
"""

import argparse

import numpy as np

from repro.analysis import ResultTable
from repro.network import FatTreeExperiment, FatTreeExperimentConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's k=6 (54-host) fat-tree; slower")
    parser.add_argument("--load", type=float, default=0.4, help="offered load (default 0.4)")
    parser.add_argument("--flows", type=int, default=None, help="number of flows to simulate")
    args = parser.parse_args()

    k = 6 if args.paper_scale else 4
    num_flows = args.flows if args.flows is not None else (2_000 if args.paper_scale else 800)
    config = FatTreeExperimentConfig(
        k=k, link_rate_gbps=5.0, per_hop_delay_us=2.0, load=args.load,
        num_flows=num_flows, seed=11,
    )
    experiment = FatTreeExperiment(config)
    print(f"Fat-tree k={k} ({experiment.topology.num_hosts} hosts), "
          f"load {args.load:.0%}, {num_flows} flows, replicate first "
          f"{config.replication.first_packets} packets at low priority...\n")

    results = experiment.compare()
    baseline, replicated = results["baseline"], results["replicated"]

    table = ResultTable(
        ["metric", "no replication", "replication", "improvement"],
        title="Short flows (< 10 KB)",
    )
    base_fcts, repl_fcts = baseline.short_flow_fcts(), replicated.short_flow_fcts()
    for metric, func in (("median FCT (ms)", np.median), ("mean FCT (ms)", np.mean),
                         ("99th pct FCT (ms)", lambda x: np.percentile(x, 99))):
        base_value, repl_value = float(func(base_fcts)), float(func(repl_fcts))
        table.add_row(**{
            "metric": metric,
            "no replication": round(base_value * 1000, 3),
            "replication": round(repl_value * 1000, 3),
            "improvement": f"{100 * (base_value - repl_value) / base_value:.1f}%",
        })
    base_timeouts = sum(r.timeouts for r in baseline.records)
    repl_timeouts = sum(r.timeouts for r in replicated.records)
    table.add_row(**{
        "metric": "TCP timeouts (all flows)",
        "no replication": base_timeouts,
        "replication": repl_timeouts,
        "improvement": f"{base_timeouts - repl_timeouts} avoided",
    })
    print(table.to_text())

    base_elephants, repl_elephants = baseline.elephant_fcts(), replicated.elephant_fcts()
    if len(base_elephants) and len(repl_elephants):
        print(f"\nElephant flows (>= 1 MB): mean FCT {np.mean(base_elephants) * 1000:.1f} ms -> "
              f"{np.mean(repl_elephants) * 1000:.1f} ms "
              "(the paper reports a statistically insignificant change)")
    print(f"\nDropped packets: {baseline.dropped_packets} without replication, "
          f"{replicated.dropped_packets} originals + {replicated.dropped_replicas} replicas with it "
          "(replicas are dropped first and never displace originals).")


if __name__ == "__main__":
    main()
