#!/usr/bin/env python3
"""Hedging-ablation tour of the policy-first replication API.

One currency — :class:`repro.core.policy.ReplicationPolicy`, written as spec
strings like ``"k2"`` or ``"hedge:p95"`` — describes replication everywhere:
the scenario sweeps, every substrate simulator, and the threshold search.
This example shows all three on the Section 2.1 queueing model:

1. sweep the registry's policy-ablation scenario and print the grid;
2. ask each policy how many copies it actually launched (the load cost);
3. ask the threshold search up to what load each policy keeps helping.

Run:
    python examples/policy_ablation.py
"""

from repro.analysis import ResultTable
from repro.core.thresholds import threshold_load_simulated
from repro.distributions.standard import Exponential
from repro.experiments import SweepRunner, get_scenario
from repro.queueing import ReplicatedQueueingModel

POLICIES = ["none", "k2", "hedge:500ms", "hedge:p95"]
REQUESTS = 8_000


def sweep_ablation() -> None:
    """The registry scenario: one `policy` axis instead of a copies axis."""
    scenario = get_scenario("standard-queueing-policy-ablation")
    result = SweepRunner(workers=2).run(scenario, overrides={"num_requests": REQUESTS})
    table = ResultTable(
        ["load", "policy", "mean", "p99"], title=scenario.description
    )
    for point in result.ok_points():
        # Eager specs were normalised to `copies` before seeding; reconstruct
        # the spec for display.
        policy = point.params.get("policy")
        if policy is None:
            copies = int(point.params["copies"])
            policy = "none" if copies == 1 else f"k{copies}"
        table.add_row(**{
            "load": point.params["load"],
            "policy": policy,
            "mean": round(point.value("mean"), 4),
            "p99": round(point.value("p99"), 3),
        })
    print(table.to_text())


def copies_cost() -> None:
    """What each policy costs: copies actually launched per request."""
    table = ResultTable(
        ["policy", "mean", "copies/request"],
        title=f"Load 0.3, {REQUESTS} requests: latency vs copies launched",
    )
    for spec in POLICIES:
        run = ReplicatedQueueingModel(Exponential(1.0), policy=spec, seed=1).run_fast(
            0.3, num_requests=REQUESTS
        )
        table.add_row(**{
            "policy": spec,
            "mean": round(run.mean, 4),
            "copies/request": round(run.copies_launched / REQUESTS, 3),
        })
    print(table.to_text())


def thresholds() -> None:
    """Up to what load does each replicating policy keep helping the mean?"""
    table = ResultTable(["policy", "threshold load"], title="Threshold per policy")
    for spec in ("k2", "hedge:500ms"):
        threshold = threshold_load_simulated(
            Exponential(1.0), policy=spec, num_requests=6_000, tolerance=0.02
        )
        table.add_row(**{"policy": spec, "threshold load": f"{threshold:.1%}"})
    print(table.to_text())


def main() -> None:
    sweep_ablation()
    print()
    copies_cost()
    print()
    thresholds()


if __name__ == "__main__":
    main()
