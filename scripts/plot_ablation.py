#!/usr/bin/env python3
"""Latency-vs-load frontier plots/tables for the hedging-ablation sweeps.

The six ablation scenarios (``standard-queueing-policy-ablation``,
``standard-db-hedging``, ``standard-memcached-hedging``,
``standard-fattree-policy``, ``standard-handshake-hedging``,
``paper-dns-hedged``) all sweep a ``policy`` axis — ``none`` / eager ``k2`` /
fixed or adaptive hedges — over a load-like axis.  This script turns their
sweep artifacts into the **frontier view**: for each load, which policy
achieves the lowest latency, and by how much.

Usage (from the repository root)::

    PYTHONPATH=src python -m repro.experiments run standard-db-hedging \\
        --workers 4 --out db-hedging.json
    PYTHONPATH=src python scripts/plot_ablation.py db-hedging.json \\
        [more artifacts ...] [--metric mean] [--metric2 p99] [--png frontier.png]

Output is text-first (a per-artifact table with the frontier policy starred,
plus one ``frontier@`` summary line per load) so it needs nothing beyond the
repository's own dependencies; ``--png`` renders the same series with
matplotlib *if it is installed* and fails with a clear message otherwise.
Artifacts may be whole-file ``.json``, streamed ``.jsonl``, or the
byte-identical output of ``python -m repro.experiments merge`` — all load the
same way.  See the "Hedging ablations" section of ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.analysis.tables import ResultTable  # noqa: E402
from repro.core.policy import HedgeAfterDelay, parse_policy  # noqa: E402
from repro.exceptions import ReproError  # noqa: E402
from repro.experiments.cli import _axis_value  # noqa: E402
from repro.experiments.results import PointResult, SweepResult, load_sweep_artifact  # noqa: E402

#: Axes (in preference order) that serve as the x-axis of the frontier.
X_AXES = ("load", "rtt", "copies")


def hedge_delay_of(spec: str) -> Optional[float]:
    """The delay (seconds) of a fixed-delay hedge spec, else None.

    Only exact :class:`HedgeAfterDelay` policies qualify (``hedge:250ms``,
    ``hedge:50ms:x2``); percentile hedges adapt their delay and eager/none
    policies have none, so neither belongs to a delay-grid family.
    """
    try:
        policy = parse_policy(spec)
    except ReproError:
        return None
    if type(policy) is HedgeAfterDelay:
        return policy.delay
    return None


def hedge_family(spec: str) -> Optional[str]:
    """The delay-grid family of a fixed-delay hedge spec (delay wildcarded).

    ``hedge:250ms`` and ``hedge:1s`` share family ``hedge:*``;
    ``hedge:50ms:x2`` belongs to ``hedge:*:x2``.  Returns None for specs
    outside any delay grid.
    """
    if hedge_delay_of(spec) is None:
        return None
    segments = spec.split(":")
    segments[1] = "*"
    return ":".join(segments)


def pick_x_axis(result: SweepResult, requested: Optional[str]) -> Optional[str]:
    """The load-like axis of a sweep: ``--x`` if given, else the first of
    ``load`` / ``rtt`` / ``copies`` present among the grid axes, else None
    (a single-column sweep such as ``paper-dns-hedged``)."""
    if requested:
        if requested not in result.axes:
            raise SystemExit(
                f"--x {requested!r} is not an axis of {result.scenario!r} "
                f"(axes: {list(result.axes)})"
            )
        return requested
    for name in X_AXES:
        if name in result.axes and name != "policy":
            return name
    return None


def policy_of(point: PointResult) -> str:
    """The point's policy spec, reconstructing ``copies``/``replication`` sugar."""
    value = _axis_value(point, "policy")
    return str(value) if value is not None else "none"


def metric_of(point: PointResult, name: str) -> Optional[float]:
    """The point's ``name`` value when present and numeric, else None."""
    try:
        value = point.value(name)
    except ReproError:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def frontier_rows(
    result: SweepResult, x_axis: Optional[str], metric: str
) -> List[Tuple[Any, List[PointResult], Optional[PointResult]]]:
    """Group ok points by x value: ``(x, points, frontier_point)``."""
    grouped: Dict[Any, List[PointResult]] = {}
    order: List[Any] = []
    for point in result.ok_points():
        x = point.params.get(x_axis) if x_axis else "-"
        if x not in grouped:
            grouped[x] = []
            order.append(x)
        grouped[x].append(point)
    rows = []
    for x in order:
        numeric = [
            (value, p) for p in grouped[x]
            if (value := metric_of(p, metric)) is not None
        ]
        best = min(numeric, key=lambda pair: pair[0])[1] if numeric else None
        rows.append((x, grouped[x], best))
    return rows


def report(
    result: SweepResult,
    x_axis: Optional[str],
    metrics: List[str],
    group_hedges: bool = False,
) -> None:
    """Print the full ablation table (frontier starred) plus summary lines."""
    primary = metrics[0]
    x_label = x_axis or "sweep"
    table = ResultTable(
        [x_label, "policy"] + metrics + ["frontier"],
        title=f"{result.scenario}: {primary} frontier vs {x_label} "
              f"({len(result.ok_points())} ok points)",
    )
    rows = frontier_rows(result, x_axis, primary)
    for x, points, best in rows:
        for point in points:
            row: Dict[str, Any] = {
                x_label: x,
                "policy": policy_of(point),
                "frontier": "*" if point is best else "",
            }
            for name in metrics:
                row[name] = metric_of(point, name)
            table.add_row(**row)
    print(table.to_text())
    for x, points, best in rows:
        if best is None:
            continue
        best_value = metric_of(best, primary)
        baseline = next(
            (metric_of(p, primary) for p in points if policy_of(p) == "none"), None
        )
        delta = (
            f" ({100.0 * (best_value - baseline) / baseline:+.1f}% vs none)"
            if baseline and policy_of(best) != "none"
            else ""
        )
        print(
            f"  frontier@{x_label}={x}: {policy_of(best)} "
            f"({primary}={best_value:.4g}{delta})"
        )
    if group_hedges:
        for x, points, _best in rows:
            families: Dict[str, List[Tuple[float, float, str]]] = {}
            for point in points:
                spec = policy_of(point)
                family = hedge_family(spec)
                value = metric_of(point, primary)
                if family is None or value is None:
                    continue
                families.setdefault(family, []).append(
                    (hedge_delay_of(spec), value, spec)
                )
            for family in sorted(families):
                entries = sorted(families[family])
                if len(entries) < 2:
                    continue  # one delay is a point, not a grid
                _delay, best_value, best_spec = min(
                    entries, key=lambda entry: entry[1]
                )
                swept = ", ".join(spec.split(":")[1] for _d, _v, spec in entries)
                print(
                    f"  hedge-grid@{x_label}={x}: {family} best={best_spec} "
                    f"({primary}={best_value:.4g}; delays swept: {swept})"
                )
    print()


#: The scalar columns every churn adapter exports (repro.cluster.churn
#: spike_metrics), in table order.
SPIKE_COLUMNS = (
    "p99_before", "p99_spike", "p99_after", "spike_ratio", "spike_duration_s"
)


def pick_spike_x(result: SweepResult, requested: Optional[str]) -> Optional[str]:
    """The x axis of a spike view: ``--x`` if given, else the first swept
    axis that is neither ``policy`` nor ``churn`` (e.g. ``migration_rate``
    for the elasticity scenarios)."""
    if requested:
        return pick_x_axis(result, requested)
    for name in result.axes:
        if name not in ("policy", "churn"):
            return name
    return None


def spike_report(result: SweepResult, x_axis: Optional[str]) -> None:
    """Print the before/during/after p99 decomposition of a churn sweep.

    One row per point: steady-state p99 before the first membership event,
    the worst per-bin p99 during the rebalance/failover window, the settled
    p99 afterwards, and the spike's height (ratio over *before*) and
    duration.  The policy with the lowest absolute spike per x is starred —
    the "redundancy masks the spike" frontier.
    """
    x_label = x_axis or "sweep"
    table = ResultTable(
        [x_label, "policy"] + list(SPIKE_COLUMNS) + ["masked"],
        title=f"{result.scenario}: churn spike view vs {x_label} "
              f"({len(result.ok_points())} ok points)",
    )
    rows = frontier_rows(result, x_axis, "p99_spike")
    for x, points, best in rows:
        for point in points:
            row: Dict[str, Any] = {
                x_label: x,
                "policy": policy_of(point),
                "masked": "*" if point is best else "",
            }
            for name in SPIKE_COLUMNS:
                row[name] = metric_of(point, name)
            table.add_row(**row)
    print(table.to_text())
    for x, points, best in rows:
        if best is None:
            continue
        baseline = next(
            (metric_of(p, "p99_spike") for p in points if policy_of(p) == "none"),
            None,
        )
        best_spike = metric_of(best, "p99_spike")
        delta = (
            f" ({100.0 * (best_spike - baseline) / baseline:+.1f}% vs none)"
            if baseline and policy_of(best) != "none"
            else ""
        )
        print(
            f"  spike@{x_label}={x}: {policy_of(best)} "
            f"(p99_spike={best_spike:.4g}{delta}, "
            f"ratio={metric_of(best, 'spike_ratio'):.3g}, "
            f"duration={metric_of(best, 'spike_duration_s'):.3g}s)"
        )
    print()


def pareto_points(
    result: SweepResult, x_metric: str, y_metric: str
) -> List[Tuple[float, float, str, bool]]:
    """``(x, y, label, efficient)`` per ok point of a cost-vs-latency view.

    A point is Pareto-efficient when no other point is at least as good on
    both metrics and strictly better on one (both minimised) — e.g. job
    completion time (``y``) vs wasted-work fraction (``x``) for the pipeline
    scenarios.
    """
    gathered: List[Tuple[float, float, str]] = []
    for point in result.ok_points():
        x = metric_of(point, x_metric)
        y = metric_of(point, y_metric)
        if x is None or y is None:
            continue
        extras = {
            key: value for key, value in sorted(point.params.items())
            if key in result.axes and key != "policy"
        }
        label = policy_of(point)
        if extras:
            label += " [" + ", ".join(f"{k}={v}" for k, v in extras.items()) + "]"
        gathered.append((x, y, label))
    out = []
    for x, y, label in gathered:
        dominated = any(
            (ox <= x and oy <= y) and (ox < x or oy < y)
            for ox, oy, _ in gathered
        )
        out.append((x, y, label, not dominated))
    return out


def pareto_report(result: SweepResult, x_metric: str, y_metric: str) -> None:
    """Print the cost-vs-latency table with the Pareto-efficient set starred."""
    points = sorted(pareto_points(result, x_metric, y_metric))
    table = ResultTable(
        [x_metric, y_metric, "point", "pareto"],
        title=f"{result.scenario}: {y_metric} vs {x_metric} Pareto view "
              f"({sum(1 for p in points if p[3])} efficient of {len(points)})",
    )
    for x, y, label, efficient in points:
        table.add_row(**{
            x_metric: x,
            y_metric: y,
            "point": label,
            "pareto": "*" if efficient else "",
        })
    print(table.to_text())
    for x, y, label, efficient in points:
        if efficient:
            print(f"  pareto: {label} ({x_metric}={x:.4g}, {y_metric}={y:.4g})")
    print()


def render_png(
    loaded: List[Tuple[str, SweepResult]],
    x_arg: Optional[str],
    metric: str,
    path: str,
    group_hedges: bool = False,
    pareto: Optional[str] = None,
) -> None:
    """Render one panel per artifact with matplotlib.

    The default view is the metric-vs-load line chart (one line per policy;
    ``group_hedges`` collapses each fixed-delay hedge family into its
    per-x best).  With ``pareto`` set, panels become cost-vs-latency
    scatters with the efficient set connected.
    """
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit(
            "--png needs matplotlib, which is not installed in this "
            "environment; the text frontier tables above carry the same data"
        )
    fig, axes_list = plt.subplots(
        1, len(loaded), figsize=(5.5 * len(loaded), 4.0), squeeze=False
    )
    for axis, (_path, result) in zip(axes_list[0], loaded):
        if pareto:
            points = pareto_points(result, pareto, metric)
            axis.scatter([x for x, _y, _l, _e in points],
                         [y for _x, y, _l, _e in points], s=14)
            front = sorted((x, y) for x, y, _l, efficient in points if efficient)
            if front:
                axis.plot([x for x, _ in front], [y for _, y in front],
                          marker="*", color="tab:red", label="pareto front")
            for x, y, label, efficient in points:
                if efficient:
                    axis.annotate(label, (x, y), fontsize=6,
                                  textcoords="offset points", xytext=(3, 3))
            axis.set_xlabel(pareto)
            axis.set_ylabel(metric)
            axis.set_title(result.scenario, fontsize=9)
            axis.legend(fontsize=7)
            continue
        x_axis = pick_x_axis(result, x_arg)
        series: Dict[str, List[Tuple[Any, float]]] = {}
        for point in result.ok_points():
            value = metric_of(point, metric)
            if value is None:
                continue
            x = point.params.get(x_axis) if x_axis else 0
            spec = policy_of(point)
            family = hedge_family(spec) if group_hedges else None
            series.setdefault(family or spec, []).append((x, value))
        for policy, points in series.items():
            if "*" in policy:
                # One frontier line per delay-grid family: its per-x best.
                best: Dict[Any, float] = {}
                for x, value in points:
                    if x not in best or value < best[x]:
                        best[x] = value
                points = sorted(best.items())
            else:
                points.sort()
            axis.plot([x for x, _ in points], [v for _, v in points],
                      marker="o", label=policy)
        axis.set_title(result.scenario, fontsize=9)
        axis.set_xlabel(x_axis or "")
        axis.set_ylabel(metric)
        axis.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Latency-vs-load frontier tables (and optional PNG) for "
            "policy-ablation sweep artifacts; see EXPERIMENTS.md."
        ),
    )
    parser.add_argument(
        "artifacts", nargs="+",
        help="sweep artifacts (.json / .jsonl / merged) of policy-axis scenarios",
    )
    parser.add_argument(
        "--metric", default="mean",
        help="primary metric defining the frontier (default: mean)",
    )
    parser.add_argument(
        "--metric2", default="p99",
        help="secondary metric column shown alongside (default: p99)",
    )
    parser.add_argument(
        "--x", default=None,
        help="x axis (default: the first of load/rtt/copies in the grid)",
    )
    parser.add_argument("--png", default=None, metavar="PATH",
                        help="also render a PNG (requires matplotlib)")
    parser.add_argument(
        "--group-hedges", action="store_true",
        help=(
            "collapse fixed-delay hedge families (hedge:100ms, hedge:250ms, "
            "...) into one frontier line: the best delay per x"
        ),
    )
    parser.add_argument(
        "--pareto", default=None, metavar="METRIC",
        help=(
            "trade-off view: plot --metric against this cost metric (e.g. "
            "wasted_work_fraction or cost_normalized) and star the "
            "non-dominated points instead of the per-x frontier tables"
        ),
    )
    parser.add_argument(
        "--spike", action="store_true",
        help=(
            "churn view: before/during/after p99 decomposition of "
            "membership-event sweeps (standard-db-rebalance, "
            "standard-memcached-failover), lowest spike starred"
        ),
    )
    args = parser.parse_args(argv)

    loaded = []
    for path in args.artifacts:
        try:
            loaded.append((path, load_sweep_artifact(path)))
        except (ReproError, OSError, ValueError) as exc:
            raise SystemExit(f"cannot load {path!r}: {exc}")
    metrics = [args.metric]
    if args.metric2 and args.metric2 != args.metric:
        metrics.append(args.metric2)
    for _path, result in loaded:
        if args.spike:
            spike_report(result, pick_spike_x(result, args.x))
        elif args.pareto:
            pareto_report(result, args.pareto, args.metric)
        else:
            report(result, pick_x_axis(result, args.x), metrics,
                   group_hedges=args.group_hedges)
    if args.png:
        render_png(loaded, args.x, args.metric, args.png,
                   group_hedges=args.group_hedges, pareto=args.pareto)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
